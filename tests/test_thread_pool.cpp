// Unit tests for the thread pool and trial runner (parallel/*).
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "parallel/trial_runner.hpp"

namespace rlb::parallel {
namespace {

TEST(ThreadPool, ExecutesSubmittedTask) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 42; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto future =
      pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    // Pool destroyed immediately; all 50 queued tasks must still run.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  parallel_for(pool, 1000, [&](std::size_t i) { ++touched[i]; });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoOp) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, SmallerThanThreadCount) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  parallel_for(pool, 3, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 3);
}

// Regression: parallel_for used to rethrow at the FIRST failed future,
// unwinding while later blocks were still queued or running — those blocks
// call through the by-reference `body`, which dangles once the caller's
// frame is gone.  The fix awaits every block before rethrowing, so no body
// invocation may ever be observed after parallel_for returns.
TEST(ParallelFor, ExceptionWaitsForAllBlocks) {
  ThreadPool pool(4);
  std::atomic<bool> returned{false};
  std::atomic<int> bodies_after_return{0};
  bool threw = false;
  try {
    // 64 indices over 4 threads → 16 blocks; block 0 throws on its first
    // index while most blocks are still queued behind the 4 workers.
    parallel_for(pool, 64, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("boom");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      if (returned.load()) ++bodies_after_return;
    });
  } catch (const std::runtime_error&) {
    threw = true;
  }
  returned.store(true);
  // Give any straggler blocks (the old bug) time to run and be counted.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(threw);
  EXPECT_EQ(bodies_after_return.load(), 0);
}

TEST(ParallelFor, FirstExceptionWinsAndStateIsConsistent) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for(pool, 8,
                            [&](std::size_t) {
                              ++ran;
                              throw std::logic_error("every body throws");
                            }),
               std::logic_error);
  // Every block ran to its throw; none was abandoned mid-queue.
  EXPECT_EQ(ran.load(), 8);
}

// Regression: submit() during shutdown used to enqueue a task that the
// exiting workers would never run, so the returned future never resolved
// and the caller deadlocked in get().  It must throw instead.
TEST(ThreadPool, SubmitDuringShutdownThrows) {
  std::atomic<bool> threw{false};
  std::atomic<bool> ran_inner{false};
  {
    ThreadPool pool(1);
    pool.submit([&pool, &threw, &ran_inner] {
      // Let the main thread enter ~ThreadPool and set stopping_.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      try {
        auto f = pool.submit([&ran_inner] { ran_inner.store(true); });
        // If submit succeeded the future must still resolve (else the old
        // deadlock); don't wait on it — just record the non-throw.
        (void)f;
      } catch (const std::runtime_error&) {
        threw.store(true);
      }
    });
    // Destructor begins immediately: sets stopping_, then drains.
  }
  EXPECT_TRUE(threw.load());
  EXPECT_FALSE(ran_inner.load());
}

TEST(TrialRunner, ResultsInIndexOrderAndDeterministic) {
  ThreadPool pool(4);
  const std::function<std::uint64_t(std::uint64_t, std::size_t)> trial =
      [](std::uint64_t seed, std::size_t index) {
        return seed ^ static_cast<std::uint64_t>(index);
      };
  const auto a = run_trials<std::uint64_t>(pool, 64, 7, trial);
  const auto b = run_trials<std::uint64_t>(pool, 64, 7, trial);
  ASSERT_EQ(a.size(), 64u);
  EXPECT_EQ(a, b);  // identical regardless of scheduling
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], stats::derive_seed(7, i) ^ i);
  }
}

TEST(TrialRunner, DistinctSeedsPerTrial) {
  ThreadPool pool(2);
  const std::function<std::uint64_t(std::uint64_t, std::size_t)> trial =
      [](std::uint64_t seed, std::size_t) { return seed; };
  const auto seeds = run_trials<std::uint64_t>(pool, 32, 1, trial);
  std::set<std::uint64_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 32u);
}

TEST(DefaultPool, IsSingleton) {
  EXPECT_EQ(&default_pool(), &default_pool());
}

}  // namespace
}  // namespace rlb::parallel
