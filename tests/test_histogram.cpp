// Unit tests for CountingHistogram (stats/histogram.hpp).
#include "stats/histogram.hpp"

#include <gtest/gtest.h>

namespace rlb::stats {
namespace {

TEST(CountingHistogram, EmptyState) {
  CountingHistogram h(10);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.max_observed(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(CountingHistogram, CountsExactValues) {
  CountingHistogram h(10);
  h.add(3);
  h.add(3);
  h.add(7);
  EXPECT_EQ(h.count_at(3), 2u);
  EXPECT_EQ(h.count_at(7), 1u);
  EXPECT_EQ(h.count_at(5), 0u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(CountingHistogram, WeightedAdd) {
  CountingHistogram h(10);
  h.add(2, 5);
  EXPECT_EQ(h.count_at(2), 5u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.mean(), 2.0);
}

TEST(CountingHistogram, OverflowBucket) {
  CountingHistogram h(4);
  h.add(100);
  EXPECT_EQ(h.overflow_count(), 1u);
  EXPECT_EQ(h.total(), 1u);
  // Overflow attributed as bucket_limit + 1.
  EXPECT_EQ(h.max_observed(), 5u);
}

TEST(CountingHistogram, MeanIncludesWeights) {
  CountingHistogram h(16);
  h.add(0, 3);
  h.add(4, 1);
  EXPECT_DOUBLE_EQ(h.mean(), 1.0);
}

TEST(CountingHistogram, CountGreaterThan) {
  CountingHistogram h(16);
  for (std::uint64_t v = 0; v <= 10; ++v) h.add(v);
  EXPECT_EQ(h.count_greater_than(5), 5u);
  EXPECT_EQ(h.count_greater_than(10), 0u);
  h.add(100);  // overflow counts as greater than anything tracked
  EXPECT_EQ(h.count_greater_than(10), 1u);
}

TEST(CountingHistogram, Quantiles) {
  CountingHistogram h(16);
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v % 10);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_LE(h.quantile(0.5), 5u);
  EXPECT_GE(h.quantile(1.0), 9u);
}

// Regression: for q small enough that q·total + 0.5 rounds to rank 0, the
// scan used to stop at bucket 0 even when no sample was ever recorded
// there.  quantile(0) must be the minimum observed value.
TEST(CountingHistogram, LowQuantileIsMinimumObserved) {
  CountingHistogram h(16);
  h.add(5);
  h.add(7);
  EXPECT_EQ(h.quantile(0.0), 5u);
  EXPECT_EQ(h.quantile(0.001), 5u);
  EXPECT_EQ(h.quantile(1.0), 7u);
}

TEST(CountingHistogram, LowQuantileWithOnlyOverflowSamples) {
  CountingHistogram h(4);
  h.add(100);  // lands in the overflow bucket
  EXPECT_EQ(h.quantile(0.0), 5u);  // one past the tracking limit
}

TEST(CountingHistogram, MergeCombines) {
  CountingHistogram a(8), b(16);
  a.add(1, 2);
  a.add(20);  // overflow of a
  b.add(12, 3);
  a.merge(b);
  EXPECT_EQ(a.total(), 6u);
  EXPECT_EQ(a.count_at(1), 2u);
  EXPECT_EQ(a.count_at(12), 3u);  // resized to b's limit
  EXPECT_EQ(a.overflow_count(), 1u);
}

TEST(CountingHistogram, MaxObservedTracksLargest) {
  CountingHistogram h(64);
  h.add(5);
  h.add(17);
  h.add(3);
  EXPECT_EQ(h.max_observed(), 17u);
}

TEST(CountingHistogram, ZeroCountAddIsNoOp) {
  CountingHistogram h(8);
  h.add(3, 0);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.max_observed(), 0u);
}

}  // namespace
}  // namespace rlb::stats
