// Compile-and-use test for the umbrella header (src/rlb.hpp): the single
// include must be self-sufficient for the quickstart flow.
#include "rlb.hpp"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaHeader, QuickstartFlowCompilesAndRuns) {
  rlb::policies::PolicyConfig config;
  config.servers = 64;
  config.processing_rate = 4;
  config.seed = 1;
  auto balancer = rlb::policies::make_policy("greedy", config);

  rlb::workloads::RepeatedSetWorkload adversary(64, 1ULL << 20, 1);
  rlb::core::SimConfig sim;
  sim.steps = 25;
  sim.check_safety = true;
  const rlb::core::SimResult result =
      rlb::core::simulate(*balancer, adversary, sim);
  EXPECT_EQ(result.metrics.rejected(), 0u);
  EXPECT_EQ(result.steps_run, 25u);
}

TEST(UmbrellaHeader, SubstratesReachable) {
  rlb::stats::Rng rng(3);
  EXPECT_EQ(rlb::ballsbins::one_choice(4, 10, rng).size(), 4u);
  rlb::cuckoo::CuckooTable table(32, 2, 3);
  EXPECT_TRUE(table.insert(7));
  const rlb::core::Placement placement(16, 2, 3);
  EXPECT_EQ(
      rlb::core::analyze_placement_graph(placement, 8).chunks, 8u);
}

}  // namespace
