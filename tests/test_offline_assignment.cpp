// Unit + property tests for the Lemma 4.2 offline assignment
// (cuckoo/offline_assignment.hpp).
#include "cuckoo/offline_assignment.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/placement.hpp"
#include "stats/rng.hpp"

namespace rlb::cuckoo {
namespace {

using ChoicePairs = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

ChoicePairs random_instance(std::size_t items, std::size_t servers,
                            std::uint64_t seed) {
  stats::Rng rng(seed);
  ChoicePairs choices;
  choices.reserve(items);
  for (std::size_t i = 0; i < items; ++i) {
    auto a = static_cast<std::uint32_t>(rng.next_below(servers));
    auto b = static_cast<std::uint32_t>(rng.next_below(servers));
    while (b == a) b = static_cast<std::uint32_t>(rng.next_below(servers));
    choices.emplace_back(a, b);
  }
  return choices;
}

TEST(OfflineAssignment, RejectsZeroServers) {
  EXPECT_THROW(assign_offline({}, 0), std::invalid_argument);
}

TEST(OfflineAssignment, EmptyInstanceSucceeds) {
  const OfflineAssignment result = assign_offline({}, 16);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.assignment.empty());
  EXPECT_EQ(result.stash_used, 0u);
}

TEST(OfflineAssignment, AssignsEveryItemToOneOfItsChoices) {
  const auto choices = random_instance(100, 128, 1);
  const OfflineAssignment result = assign_offline(choices, 128);
  ASSERT_EQ(result.assignment.size(), 100u);
  for (std::size_t i = 0; i < choices.size(); ++i) {
    const std::uint32_t assigned = result.assignment[i];
    EXPECT_TRUE(assigned == choices[i].first || assigned == choices[i].second)
        << "item " << i;
  }
}

TEST(OfflineAssignment, PerServerCountsMatchAssignment) {
  const auto choices = random_instance(200, 256, 2);
  const OfflineAssignment result = assign_offline(choices, 256);
  std::vector<std::uint32_t> recount(256, 0);
  for (const std::uint32_t s : result.assignment) ++recount[s];
  EXPECT_EQ(recount, result.per_server);
}

TEST(OfflineAssignment, FullLoadKeepsConstantPerServer) {
  // The Lemma 4.2 headline: m items into m servers, max O(1) per server —
  // concretely <= 3 + stash when the three-group split succeeds.
  constexpr std::size_t kServers = 512;
  const auto choices = random_instance(kServers, kServers, 3);
  const OfflineAssignment result = assign_offline(choices, kServers);
  EXPECT_TRUE(result.success);
  std::uint32_t max_count = 0;
  for (const std::uint32_t c : result.per_server) {
    max_count = std::max(max_count, c);
  }
  EXPECT_LE(max_count, 3u + result.stash_used);
  EXPECT_LE(max_count, 7u);  // 3 groups + default stash 4
}

TEST(OfflineAssignment, UsesThreeGroupsInModelRegime) {
  const auto choices = random_instance(90, 100, 4);
  EXPECT_EQ(assign_offline(choices, 100).groups, 3u);
}

TEST(OfflineAssignment, MoreGroupsWhenOverloaded) {
  // n > m items (outside the model, but the API stays safe): group count
  // grows so each group still fits the feasible cuckoo density.
  const auto choices = random_instance(300, 100, 5);
  const OfflineAssignment result = assign_offline(choices, 100);
  EXPECT_GT(result.groups, 3u);
  for (std::size_t i = 0; i < choices.size(); ++i) {
    const std::uint32_t assigned = result.assignment[i];
    EXPECT_TRUE(assigned == choices[i].first || assigned == choices[i].second);
  }
}

TEST(OfflineAssignment, AdversarialCollisionsFailGracefully) {
  // Many items sharing the same two servers: only 2 per group are
  // placeable; the rest overflow the stash → success == false, but the
  // assignment must still map every item to one of its choices.
  ChoicePairs choices(64, {3, 7});
  const OfflineAssignment result =
      assign_offline(choices, 16, /*stash_capacity_per_group=*/2);
  EXPECT_FALSE(result.success);
  for (const std::uint32_t s : result.assignment) {
    EXPECT_TRUE(s == 3u || s == 7u);
  }
}

class OfflineAssignmentProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OfflineAssignmentProperty, ValidAndBalancedOnRandomFullLoads) {
  const std::uint64_t seed = GetParam();
  constexpr std::size_t kServers = 256;
  const auto choices = random_instance(kServers, kServers, seed);
  const OfflineAssignment result = assign_offline(choices, kServers);

  // Validity.
  for (std::size_t i = 0; i < choices.size(); ++i) {
    const std::uint32_t s = result.assignment[i];
    ASSERT_TRUE(s == choices[i].first || s == choices[i].second);
  }
  // Balance: per-server load stays a small constant whenever the
  // construction succeeded (it should, at these sizes).
  EXPECT_TRUE(result.success);
  std::uint32_t max_count = 0;
  for (const std::uint32_t c : result.per_server) {
    max_count = std::max(max_count, c);
  }
  EXPECT_LE(max_count, 7u);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, OfflineAssignmentProperty,
                         ::testing::Range<std::uint64_t>(10, 30));

TEST(OfflineAssignment, WorksWithPlacementChoices) {
  // End-to-end with the real Placement (d = 2), the way delayed cuckoo
  // routing uses it.
  constexpr std::size_t kServers = 128;
  const core::Placement placement(kServers, 2, 77);
  ChoicePairs choices;
  for (core::ChunkId x = 0; x < kServers; ++x) {
    const core::ChoiceList list = placement.choices(x);
    choices.emplace_back(list[0], list[1]);
  }
  const OfflineAssignment result = assign_offline(choices, kServers);
  EXPECT_TRUE(result.success);
  std::uint32_t max_count = 0;
  for (const std::uint32_t c : result.per_server) {
    max_count = std::max(max_count, c);
  }
  EXPECT_LE(max_count, 7u);
}

}  // namespace
}  // namespace rlb::cuckoo
