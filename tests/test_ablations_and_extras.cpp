// Tests for the delayed-cuckoo ablation switches, the bursty workload, and
// the Wilson interval helper.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/simulator.hpp"
#include "policies/delayed_cuckoo.hpp"
#include "stats/summary.hpp"
#include "workloads/bursty.hpp"
#include "workloads/repeated_set.hpp"

namespace rlb {
namespace {

// ----------------------------------------------------- cuckoo ablations
policies::DelayedCuckooConfig cuckoo_config() {
  policies::DelayedCuckooConfig config;
  config.servers = 256;
  config.processing_rate = 8;
  config.seed = 23;
  return config;
}

TEST(CuckooAblation, NoCuckooRoutingSendsNothingToPQueues) {
  auto config = cuckoo_config();
  config.use_cuckoo_routing = false;
  policies::DelayedCuckooBalancer balancer(config);
  core::Metrics metrics;
  std::vector<core::ChunkId> batch;
  for (core::ChunkId x = 0; x < 256; ++x) batch.push_back(x);
  balancer.step(0, batch, metrics);
  balancer.step(1, batch, metrics);  // reappearances — but ablated
  for (const std::uint32_t v : balancer.p_arrivals_this_step()) {
    EXPECT_EQ(v, 0u);
  }
  EXPECT_EQ(balancer.assignment_failures(), 0u);
}

TEST(CuckooAblation, NoCarryOverDropsLeftoversAtBoundary) {
  auto config = cuckoo_config();
  config.processing_rate = 4;  // slow drain so leftovers exist
  config.phase_length = 2;
  config.queue_capacity = 8;
  config.carry_over_queues = false;
  policies::DelayedCuckooBalancer balancer(config);
  core::Metrics metrics;
  std::vector<core::ChunkId> batch;
  for (core::ChunkId x = 0; x < 256; ++x) batch.push_back(x);
  for (core::Time t = 0; t < 8; ++t) balancer.step(t, batch, metrics);
  // With drain 1/queue/step and arrival ~1/server/step there MUST be
  // leftovers at the 2-step boundaries, all converted to drops.
  EXPECT_GT(metrics.dropped_from_queue(), 0u);

  // Contrast: the paper's carry-over machinery drops nothing here.
  auto faithful_config = cuckoo_config();
  faithful_config.processing_rate = 4;
  faithful_config.phase_length = 2;
  faithful_config.queue_capacity = 2;
  policies::DelayedCuckooBalancer faithful(faithful_config);
  core::Metrics faithful_metrics;
  workloads::RepeatedSetWorkload workload(256, 1u << 18, 29);
  std::vector<core::ChunkId> wbatch;
  for (core::Time t = 0; t < 8; ++t) {
    workload.fill_step(t, wbatch);
    faithful.step(t, wbatch, faithful_metrics);
  }
  EXPECT_EQ(faithful_metrics.dropped_from_queue(), 0u);
}

TEST(CuckooAblation, BothVariantsCleanAtDesignPoint) {
  // At the algorithm's design point (per-queue drain 2/step, derived q)
  // both the full algorithm and the Q-only ablation keep every request on
  // the pure repeated workload — the cuckoo machinery's *provable* win is
  // the q = Θ(log log m) worst-case guarantee, which the Q-only variant
  // (essentially greedy) cannot promise.  The E13 ablation bench reports
  // the measured trade-offs, including the regimes where the variants
  // diverge; this test pins the design-point behaviour.
  for (const bool use_cuckoo : {true, false}) {
    auto config = cuckoo_config();
    config.use_cuckoo_routing = use_cuckoo;
    policies::DelayedCuckooBalancer balancer(config);
    workloads::RepeatedSetWorkload workload(256, 1u << 18, 31);
    core::SimConfig sim;
    sim.steps = 100;
    const auto result = core::simulate(balancer, workload, sim);
    EXPECT_EQ(result.metrics.rejected(), 0u)
        << "use_cuckoo_routing=" << use_cuckoo;
  }
}

TEST(CuckooAblation, PRouteBoundsBurstsDeterministically) {
  // The structural difference the ablation removes: with cuckoo routing,
  // per-server P arrivals per step are capped by Lemma 4.2's O(1); the
  // Q-only variant's per-server arrival concentration is whatever the
  // two-choice process yields, with no deterministic cap.
  auto config = cuckoo_config();
  policies::DelayedCuckooBalancer balancer(config);
  core::Metrics metrics;
  std::vector<core::ChunkId> batch;
  for (core::ChunkId x = 0; x < 256; ++x) batch.push_back(x);
  for (core::Time t = 0; t < 30; ++t) {
    balancer.step(t, batch, metrics);
    for (const std::uint32_t v : balancer.p_arrivals_this_step()) {
      ASSERT_LE(v, 7u) << "step " << t;  // 3 groups + stash 4
    }
  }
}

// ------------------------------------------------------------ bursty load
TEST(Bursty, ValidatesArguments) {
  EXPECT_THROW(workloads::BurstyWorkload(0, 2, 2, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(workloads::BurstyWorkload(8, 0, 2, 4, 1),
               std::invalid_argument);
  EXPECT_THROW(workloads::BurstyWorkload(8, 2, 2, 9, 1),
               std::invalid_argument);
}

TEST(Bursty, AlternatesBurstAndIdle) {
  workloads::BurstyWorkload workload(64, 3, 2, 8, 7);
  std::vector<core::ChunkId> batch;
  for (core::Time t = 0; t < 10; ++t) {
    workload.fill_step(t, batch);
    const auto cycle = static_cast<std::size_t>(t) % 5;
    if (cycle < 3) {
      EXPECT_EQ(batch.size(), 64u) << "step " << t;
      EXPECT_TRUE(workload.in_burst(t));
    } else {
      EXPECT_EQ(batch.size(), 8u) << "step " << t;
      EXPECT_FALSE(workload.in_burst(t));
    }
  }
}

TEST(Bursty, DistinctWithinStepAndFromFixedSet) {
  workloads::BurstyWorkload workload(32, 2, 2, 4, 9);
  std::vector<core::ChunkId> first, later;
  workload.fill_step(0, first);
  std::unordered_set<core::ChunkId> set(first.begin(), first.end());
  EXPECT_EQ(set.size(), 32u);
  workload.fill_step(3, later);  // idle step
  for (const core::ChunkId x : later) EXPECT_EQ(set.count(x), 1u);
}

// --------------------------------------------------------- Wilson interval
TEST(WilsonInterval, ZeroTrials) {
  const auto interval = stats::wilson_interval(0, 0);
  EXPECT_EQ(interval.center, 0.0);
  EXPECT_EQ(interval.low, 0.0);
  EXPECT_EQ(interval.high, 0.0);
}

TEST(WilsonInterval, ZeroSuccessesHasPositiveUpperBound) {
  const auto interval = stats::wilson_interval(0, 100);
  EXPECT_EQ(interval.low, 0.0);
  EXPECT_GT(interval.high, 0.0);
  EXPECT_LT(interval.high, 0.05);  // rule of three-ish
}

TEST(WilsonInterval, ContainsTrueProportion) {
  const auto interval = stats::wilson_interval(30, 100);
  EXPECT_GT(interval.low, 0.2);
  EXPECT_LT(interval.high, 0.41);
  EXPECT_NEAR(interval.center, 0.3, 0.02);
}

TEST(WilsonInterval, SymmetricEdges) {
  const auto all = stats::wilson_interval(100, 100);
  EXPECT_NEAR(all.high, 1.0, 1e-9);
  EXPECT_GT(all.low, 0.95);
}

TEST(WilsonInterval, WidthShrinksWithTrials) {
  const auto small = stats::wilson_interval(5, 10);
  const auto large = stats::wilson_interval(500, 1000);
  EXPECT_LT(large.high - large.low, small.high - small.low);
}

}  // namespace
}  // namespace rlb
