// Unit tests for the RNG stack (stats/rng.hpp).
#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace rlb::stats {
namespace {

TEST(SplitMix64, KnownSequenceFromZeroSeed) {
  // Reference values of splitmix64(seed = 0) from the public-domain
  // reference implementation.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, DistinctSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(DeriveSeed, IsDeterministic) {
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
}

TEST(DeriveSeed, StreamsDiffer) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seen.insert(derive_seed(42, stream));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Xoshiro, SameSeedSameSequence) {
  Xoshiro256StarStar a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDifferentSequences) {
  Xoshiro256StarStar a(123), b(124);
  int agreements = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++agreements;
  }
  EXPECT_EQ(agreements, 0);
}

TEST(Xoshiro, NextBelowStaysInRange) {
  Xoshiro256StarStar rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro, NextBelowOneAlwaysZero) {
  Xoshiro256StarStar rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro, NextBelowIsRoughlyUniform) {
  Xoshiro256StarStar rng(11);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, 5 * std::sqrt(expected))
        << "bucket " << b;
  }
}

TEST(Xoshiro, DoubleInUnitInterval) {
  Xoshiro256StarStar rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, BernoulliEdgeCases) {
  Xoshiro256StarStar rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
  }
}

TEST(Xoshiro, BernoulliMatchesProbability) {
  Xoshiro256StarStar rng(19);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.next_bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Xoshiro, JumpDecorrelatesStreams) {
  Xoshiro256StarStar base(23);
  Xoshiro256StarStar jumped = base.split(1);
  int agreements = 0;
  for (int i = 0; i < 1000; ++i) {
    if (base.next() == jumped.next()) ++agreements;
  }
  EXPECT_EQ(agreements, 0);
}

TEST(Xoshiro, SplitIsDeterministic) {
  Xoshiro256StarStar a(29), b(29);
  Xoshiro256StarStar ca = a.split(2), cb = b.split(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next(), cb.next());
}

}  // namespace
}  // namespace rlb::stats
