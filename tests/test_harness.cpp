// Unit tests for the experiment harness (harness/*).
#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.hpp"
#include "harness/output.hpp"
#include "policies/greedy.hpp"
#include "workloads/fresh_uniform.hpp"
#include "workloads/repeated_set.hpp"

namespace rlb::harness {
namespace {

class OutputFormatGuard {
 public:
  OutputFormatGuard() : saved_(table_format()) {}
  ~OutputFormatGuard() { set_table_format(saved_); }

 private:
  TableFormat saved_;
};

TEST(HarnessOutput, DefaultIsText) {
  OutputFormatGuard guard;
  set_table_format(TableFormat::kText);
  report::Table table({"abc"});
  table.row().cell("v");
  std::ostringstream oss;
  emit(table, oss);
  // Text mode underlines each header with '-' to its width.
  EXPECT_NE(oss.str().find("---"), std::string::npos);
}

TEST(HarnessOutput, CsvAndMarkdownModes) {
  OutputFormatGuard guard;
  report::Table table({"x", "y"});
  table.row().cell(1).cell(2);

  set_table_format(TableFormat::kCsv);
  std::ostringstream csv;
  emit(table, csv);
  EXPECT_EQ(csv.str().substr(0, 4), "x,y\n");

  set_table_format(TableFormat::kMarkdown);
  std::ostringstream md;
  emit(table, md);
  EXPECT_NE(md.str().find("| --- |"), std::string::npos);
}

TEST(HarnessOutput, InitParsesFormatFlag) {
  OutputFormatGuard guard;
  set_table_format(TableFormat::kText);
  const char* argv[] = {"prog", "--format", "csv"};
  init_output(3, const_cast<char**>(argv));
  EXPECT_EQ(table_format(), TableFormat::kCsv);
}

TEST(HarnessOutput, InitIgnoresUnknownFormat) {
  OutputFormatGuard guard;
  set_table_format(TableFormat::kMarkdown);
  const char* argv[] = {"prog", "--format", "yaml"};
  init_output(3, const_cast<char**>(argv));
  EXPECT_EQ(table_format(), TableFormat::kMarkdown);  // unchanged
}

TEST(HarnessTrials, AggregatesAcrossSeeds) {
  const BalancerFactory make_balancer = [](std::uint64_t seed) {
    policies::SingleQueueConfig config;
    config.servers = 64;
    config.replication = 2;
    config.processing_rate = 2;
    config.queue_capacity = 8;
    config.seed = seed;
    return std::make_unique<policies::GreedyBalancer>(config);
  };
  const WorkloadFactory make_workload = [](std::uint64_t seed) {
    return std::make_unique<workloads::RepeatedSetWorkload>(
        64, 1u << 16, stats::derive_seed(seed, 1));
  };
  core::SimConfig sim;
  sim.steps = 20;
  sim.check_safety = true;
  const TrialAggregate agg =
      run_trials(6, 77, make_balancer, make_workload, sim);
  EXPECT_EQ(agg.trials, 6u);
  EXPECT_EQ(agg.total_submitted, 6u * 64 * 20);
  EXPECT_EQ(agg.rejection_rate.count(), 6u);
  EXPECT_EQ(agg.total_safety_checks, 6u * 20);
  EXPECT_EQ(agg.pooled_rejection_rate(),
            static_cast<double>(agg.total_rejected) /
                static_cast<double>(agg.total_submitted));
}

TEST(HarnessTrials, DeterministicAggregation) {
  const BalancerFactory make_balancer = [](std::uint64_t seed) {
    policies::SingleQueueConfig config;
    config.servers = 32;
    config.seed = seed;
    config.processing_rate = 2;
    config.queue_capacity = 8;
    return std::make_unique<policies::GreedyBalancer>(config);
  };
  const WorkloadFactory make_workload = [](std::uint64_t seed) {
    return std::make_unique<workloads::RepeatedSetWorkload>(
        32, 1u << 16, stats::derive_seed(seed, 2));
  };
  core::SimConfig sim;
  sim.steps = 15;
  const TrialAggregate a =
      run_trials(8, 123, make_balancer, make_workload, sim);
  const TrialAggregate b =
      run_trials(8, 123, make_balancer, make_workload, sim);
  EXPECT_EQ(a.total_submitted, b.total_submitted);
  EXPECT_EQ(a.total_rejected, b.total_rejected);
  EXPECT_DOUBLE_EQ(a.average_latency.mean(), b.average_latency.mean());
  EXPECT_DOUBLE_EQ(a.max_backlog.max(), b.max_backlog.max());
}

TEST(HarnessTrials, EmptyAggregateIsZero) {
  const BalancerFactory make_balancer = [](std::uint64_t seed) {
    policies::SingleQueueConfig config;
    config.servers = 8;
    config.seed = seed;
    return std::make_unique<policies::GreedyBalancer>(config);
  };
  const WorkloadFactory make_workload = [](std::uint64_t) {
    return std::make_unique<workloads::FreshUniformWorkload>(8);
  };
  core::SimConfig sim;
  sim.steps = 5;
  const TrialAggregate agg =
      run_trials(0, 1, make_balancer, make_workload, sim);
  EXPECT_EQ(agg.trials, 0u);
  EXPECT_EQ(agg.pooled_rejection_rate(), 0.0);
}

}  // namespace
}  // namespace rlb::harness
