// Unit tests for batched greedy (policies/batched_greedy.hpp) and the
// per-step series recorder (core/timeseries.hpp).
#include <gtest/gtest.h>

#include <sstream>

#include "core/simulator.hpp"
#include "core/timeseries.hpp"
#include "parallel/thread_pool.hpp"
#include "policies/batched_greedy.hpp"
#include "policies/factory.hpp"
#include "policies/greedy.hpp"
#include "workloads/fresh_uniform.hpp"
#include "workloads/repeated_set.hpp"

namespace rlb {
namespace {

policies::BatchedGreedyConfig batched_config() {
  policies::BatchedGreedyConfig config;
  config.servers = 256;
  config.replication = 2;
  config.processing_rate = 2;
  config.queue_capacity = 16;
  config.seed = 61;
  return config;
}

TEST(BatchedGreedy, RejectsZeroRate) {
  auto config = batched_config();
  config.processing_rate = 0;
  EXPECT_THROW(policies::BatchedGreedyBalancer{config},
               std::invalid_argument);
}

TEST(BatchedGreedy, SnapshotSemanticsSendWholeBatchToOneServer) {
  // m = 2, d = 2, one sub-step (g = 1): all requests in a step see the same
  // (equal) snapshot, so all pick the same first-minimum server — the
  // defining difference from sequential greedy, which alternates.
  policies::BatchedGreedyConfig config;
  config.servers = 2;
  config.replication = 2;
  config.processing_rate = 1;
  config.queue_capacity = 100;
  config.seed = 63;
  policies::BatchedGreedyBalancer balancer(config);
  // Pick 4 chunks whose FIRST placement choice is the same server, so the
  // equal-backlog snapshot tie-break (first minimum) sends all of them
  // there.  (Sequential greedy would alternate after the first arrival.)
  std::vector<core::ChunkId> batch;
  const core::ServerId target = balancer.placement().choices(0)[0];
  for (core::ChunkId x = 0; batch.size() < 4; ++x) {
    if (balancer.placement().choices(x)[0] == target) batch.push_back(x);
  }
  core::Metrics metrics;
  balancer.step(0, batch, metrics);
  // After the step: 4 arrivals on `target`, each server consumed <= 1.
  const core::ServerId other = 1 - target;
  EXPECT_EQ(balancer.backlog(target), 3u);  // 4 queued, 1 consumed
  EXPECT_EQ(balancer.backlog(other), 0u);   // snapshot never updated
}

TEST(BatchedGreedy, ParallelAndSerialDecisionsBitIdentical) {
  parallel::ThreadPool pool(4);
  auto run = [&](parallel::ThreadPool* p) {
    auto config = batched_config();
    config.pool = p;
    policies::BatchedGreedyBalancer balancer(config);
    workloads::RepeatedSetWorkload workload(512, 1u << 20, 65);
    core::SimConfig sim;
    sim.steps = 40;
    return core::simulate(balancer, workload, sim);
  };
  const core::SimResult serial = run(nullptr);
  const core::SimResult parallel_run = run(&pool);
  EXPECT_EQ(serial.metrics.completed(), parallel_run.metrics.completed());
  EXPECT_EQ(serial.metrics.rejected(), parallel_run.metrics.rejected());
  EXPECT_EQ(serial.max_backlog, parallel_run.max_backlog);
  EXPECT_DOUBLE_EQ(serial.metrics.average_latency(),
                   parallel_run.metrics.average_latency());
}

TEST(BatchedGreedy, QualityCloseToSequentialGreedy) {
  // Batched decisions lose a little quality (the batch collides with
  // itself) but must stay in the same class as sequential greedy — small
  // constant backlogs, zero rejections at theorem parameters.
  workloads::RepeatedSetWorkload workload_a(1024, 1u << 20, 67);
  workloads::RepeatedSetWorkload workload_b(1024, 1u << 20, 67);
  core::SimConfig sim;
  sim.steps = 100;

  auto batched = batched_config();
  batched.servers = 1024;
  batched.queue_capacity = 11;
  policies::BatchedGreedyBalancer batched_balancer(batched);
  const auto batched_result = core::simulate(batched_balancer, workload_a, sim);

  policies::SingleQueueConfig sequential;
  sequential.servers = 1024;
  sequential.replication = 2;
  sequential.processing_rate = 2;
  sequential.queue_capacity = 11;
  sequential.seed = 61;
  policies::GreedyBalancer sequential_balancer(sequential);
  const auto sequential_result =
      core::simulate(sequential_balancer, workload_b, sim);

  EXPECT_EQ(batched_result.metrics.rejected(), 0u);
  EXPECT_EQ(sequential_result.metrics.rejected(), 0u);
  EXPECT_LE(batched_result.max_backlog, sequential_result.max_backlog + 4);
}

TEST(BatchedGreedy, ConservationInvariant) {
  policies::BatchedGreedyBalancer balancer(batched_config());
  workloads::RepeatedSetWorkload workload(256, 1u << 18, 69);
  core::Metrics metrics;
  std::vector<core::ChunkId> batch;
  for (core::Time t = 0; t < 30; ++t) {
    workload.fill_step(t, batch);
    balancer.step(t, batch, metrics);
    ASSERT_EQ(metrics.submitted(),
              metrics.completed() + metrics.rejected() +
                  balancer.total_backlog());
  }
}

TEST(BatchedGreedy, FactoryConstructsIt) {
  policies::PolicyConfig config;
  config.servers = 64;
  config.seed = 71;
  auto policy = policies::make_policy("batched-greedy", config);
  EXPECT_EQ(policy->name(), "batched-greedy");
}

// ----------------------------------------------------------- timeseries
TEST(SeriesRecorder, SimulatorFillsOneSamplePerStep) {
  policies::SingleQueueConfig config;
  config.servers = 32;
  config.replication = 2;
  config.processing_rate = 2;
  config.queue_capacity = 8;
  config.seed = 73;
  policies::GreedyBalancer balancer(config);
  workloads::FreshUniformWorkload workload(32);
  core::SeriesRecorder recorder;
  core::SimConfig sim;
  sim.steps = 25;
  sim.recorder = &recorder;
  (void)core::simulate(balancer, workload, sim);
  ASSERT_EQ(recorder.size(), 25u);
  EXPECT_EQ(recorder.samples().front().step, 0);
  EXPECT_EQ(recorder.samples().back().step, 24);
  // Cumulative counters are monotone.
  for (std::size_t i = 1; i < recorder.size(); ++i) {
    EXPECT_GE(recorder.samples()[i].submitted,
              recorder.samples()[i - 1].submitted);
    EXPECT_GE(recorder.samples()[i].completed,
              recorder.samples()[i - 1].completed);
  }
  EXPECT_EQ(recorder.samples().back().submitted, 32u * 25);
}

TEST(SeriesRecorder, WindowedRejectionRate) {
  core::SeriesRecorder recorder;
  // Construct by hand: 10 requests per step, step 1 rejects 5.
  core::StepSample s0;
  s0.step = 0;
  s0.submitted = 10;
  s0.rejected = 0;
  recorder.add(s0);
  core::StepSample s1;
  s1.step = 1;
  s1.submitted = 20;
  s1.rejected = 5;
  s1.step_rejected = 5;
  recorder.add(s1);
  EXPECT_DOUBLE_EQ(recorder.windowed_rejection_rate(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(recorder.windowed_rejection_rate(1, 2), 0.25);
  EXPECT_DOUBLE_EQ(recorder.windowed_rejection_rate(0, 5), 0.0);
  EXPECT_EQ(recorder.windowed_rejection_rate(9, 1), 0.0);  // out of range
}

TEST(SeriesRecorder, WindowLargerThanSeriesTruncatesAtStart) {
  core::SeriesRecorder recorder;
  core::StepSample s0;
  s0.step = 0;
  s0.submitted = 10;
  s0.rejected = 2;
  recorder.add(s0);
  core::StepSample s1;
  s1.step = 1;
  s1.submitted = 20;
  s1.rejected = 6;
  recorder.add(s1);
  // A window of 100 over a 2-sample series is the whole series: 6/20.
  EXPECT_DOUBLE_EQ(recorder.windowed_rejection_rate(1, 100), 0.3);
  EXPECT_DOUBLE_EQ(recorder.windowed_rejection_rate(0, 100), 0.2);
}

TEST(SeriesRecorder, ZeroSubmissionsGiveZeroRate) {
  core::SeriesRecorder recorder;
  // Two idle steps: nothing submitted, nothing rejected.
  core::StepSample s0;
  s0.step = 0;
  recorder.add(s0);
  core::StepSample s1;
  s1.step = 1;
  recorder.add(s1);
  EXPECT_DOUBLE_EQ(recorder.windowed_rejection_rate(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(recorder.windowed_rejection_rate(1, 2), 0.0);
  // An idle window inside an otherwise busy series is also 0, not NaN.
  core::StepSample s2;
  s2.step = 2;
  s2.submitted = 5;
  s2.rejected = 5;
  recorder.add(s2);
  EXPECT_DOUBLE_EQ(recorder.windowed_rejection_rate(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(recorder.windowed_rejection_rate(2, 1), 1.0);
}

TEST(SeriesRecorder, WindowOfOneIsolatesSingleSteps) {
  core::SeriesRecorder recorder;
  // Per-step rejections 0, 3, 1 out of 10 submissions each.
  const std::uint64_t step_rejected[] = {0, 3, 1};
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  for (int i = 0; i < 3; ++i) {
    submitted += 10;
    rejected += step_rejected[i];
    core::StepSample s;
    s.step = i;
    s.submitted = submitted;
    s.rejected = rejected;
    s.step_rejected = step_rejected[i];
    recorder.add(s);
  }
  EXPECT_DOUBLE_EQ(recorder.windowed_rejection_rate(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(recorder.windowed_rejection_rate(1, 1), 0.3);
  EXPECT_DOUBLE_EQ(recorder.windowed_rejection_rate(2, 1), 0.1);
  // window == 0 is defined as 0, not a division by zero.
  EXPECT_DOUBLE_EQ(recorder.windowed_rejection_rate(2, 0), 0.0);
}

TEST(SeriesRecorder, CsvFormat) {
  core::SeriesRecorder recorder;
  core::StepSample s;
  s.step = 3;
  s.submitted = 7;
  s.rejected = 1;
  s.completed = 5;
  s.total_backlog = 1;
  s.max_backlog = 1;
  s.step_rejected = 1;
  recorder.add(s);
  std::ostringstream oss;
  recorder.to_csv(oss);
  EXPECT_NE(oss.str().find("step,submitted,rejected"), std::string::npos);
  EXPECT_NE(oss.str().find("3,7,1,5,1,1,1"), std::string::npos);
}

}  // namespace
}  // namespace rlb
