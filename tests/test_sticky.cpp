// Unit tests for sticky (cached-replica) routing (policies/memory.hpp).
#include "policies/memory.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/factory.hpp"
#include "workloads/repeated_set.hpp"

namespace rlb::policies {
namespace {

SingleQueueConfig base_config() {
  SingleQueueConfig config;
  config.servers = 256;
  config.replication = 2;
  config.processing_rate = 2;
  config.queue_capacity = 11;
  config.seed = 83;
  return config;
}

TEST(Sticky, RejectsZeroTrigger) {
  EXPECT_THROW(StickyBalancer(base_config(), 0), std::invalid_argument);
}

TEST(Sticky, FirstAccessReassesses) {
  StickyBalancer balancer(base_config(), 4);
  core::Metrics metrics;
  const std::vector<core::ChunkId> batch = {1, 2, 3};
  balancer.step(0, batch, metrics);
  EXPECT_EQ(balancer.requests_routed(), 3u);
  EXPECT_EQ(balancer.reassessments(), 3u);  // nothing cached yet
}

TEST(Sticky, SubsequentAccessesHitTheCache) {
  StickyBalancer balancer(base_config(), 4);
  core::Metrics metrics;
  const std::vector<core::ChunkId> batch = {1, 2, 3};
  for (core::Time t = 0; t < 10; ++t) balancer.step(t, batch, metrics);
  // Light load: backlogs stay below the trigger, so only the first step
  // reassesses.
  EXPECT_EQ(balancer.requests_routed(), 30u);
  EXPECT_EQ(balancer.reassessments(), 3u);
}

TEST(Sticky, ReassessesWhenCachedServerBacklogs) {
  // Trigger 1: any nonzero backlog on the cached server forces a re-probe.
  SingleQueueConfig config = base_config();
  config.servers = 2;
  config.processing_rate = 1;
  config.queue_capacity = 100;
  StickyBalancer balancer(config, 1);
  core::Metrics metrics;
  // 4 requests per step into 2 servers at drain 1 each: backlog builds, so
  // reassessments must keep firing after the first step.
  const std::vector<core::ChunkId> batch = {1, 2, 3, 4};
  for (core::Time t = 0; t < 5; ++t) balancer.step(t, batch, metrics);
  EXPECT_GT(balancer.reassessments(), 4u);
}

TEST(Sticky, CleanOnRepeatedSetAtTheoremScale) {
  StickyBalancer balancer(base_config(), 2);
  workloads::RepeatedSetWorkload workload(256, 1u << 20, 85);
  core::SimConfig sim;
  sim.steps = 200;
  const core::SimResult result = core::simulate(balancer, workload, sim);
  EXPECT_EQ(result.metrics.rejected(), 0u);
  EXPECT_LT(result.metrics.average_latency(), 1.0);
  // The whole point: amortized probes ~1/request once caches warm up.
  const double reassess_fraction =
      static_cast<double>(balancer.reassessments()) /
      static_cast<double>(balancer.requests_routed());
  EXPECT_LT(reassess_fraction, 0.25);
}

TEST(Sticky, ConservationInvariant) {
  StickyBalancer balancer(base_config(), 2);
  workloads::RepeatedSetWorkload workload(256, 1u << 18, 87);
  core::Metrics metrics;
  std::vector<core::ChunkId> batch;
  for (core::Time t = 0; t < 30; ++t) {
    workload.fill_step(t, batch);
    balancer.step(t, batch, metrics);
    ASSERT_EQ(metrics.submitted(),
              metrics.completed() + metrics.rejected() +
                  balancer.total_backlog());
  }
}

TEST(Sticky, FactoryUsesThresholdKnobAsTrigger) {
  PolicyConfig config;
  config.servers = 64;
  config.threshold = 3;
  config.seed = 89;
  auto policy = make_policy("sticky", config);
  EXPECT_EQ(policy->name(), "sticky");
}

}  // namespace
}  // namespace rlb::policies
