// Unit + validation tests for the supermarket model (supermarket/*).
//
// The headline test validates the event-driven engine against closed-form
// queueing theory: for d = 1 the tail must match M/M/1 (λ^i) and the mean
// sojourn 1/(1−λ); for d = 2 the tail must match Mitzenmacher's
// double-exponential λ^(2^i − 1).
#include "supermarket/event_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rlb::supermarket {
namespace {

TEST(ClassicalTail, KnownValues) {
  EXPECT_DOUBLE_EQ(classical_tail(0.9, 1, 0), 1.0);
  EXPECT_DOUBLE_EQ(classical_tail(0.9, 1, 2), 0.81);
  // d = 2: exponent (2^i - 1): i=1 → 1, i=2 → 3, i=3 → 7.
  EXPECT_DOUBLE_EQ(classical_tail(0.5, 2, 1), 0.5);
  EXPECT_DOUBLE_EQ(classical_tail(0.5, 2, 2), 0.125);
  EXPECT_NEAR(classical_tail(0.5, 2, 3), std::pow(0.5, 7), 1e-12);
  // d = 3: exponent (3^i - 1)/2: i=2 → 4.
  EXPECT_NEAR(classical_tail(0.5, 3, 2), std::pow(0.5, 4), 1e-12);
}

TEST(Supermarket, ValidatesArguments) {
  SupermarketConfig config;
  config.servers = 0;
  EXPECT_THROW(simulate_supermarket(config), std::invalid_argument);
  config = SupermarketConfig{};
  config.choices = 0;
  EXPECT_THROW(simulate_supermarket(config), std::invalid_argument);
  config = SupermarketConfig{};
  config.lambda = 1.0;
  EXPECT_THROW(simulate_supermarket(config), std::invalid_argument);
  config = SupermarketConfig{};
  config.mode = ChoiceMode::kFixedIdentity;
  config.population = 0;
  EXPECT_THROW(simulate_supermarket(config), std::invalid_argument);
}

TEST(Supermarket, ArrivalRateApproximatelyLambdaM) {
  SupermarketConfig config;
  config.servers = 100;
  config.lambda = 0.5;
  config.horizon = 500.0;
  config.seed = 3;
  const SupermarketResult result = simulate_supermarket(config);
  const double expected = 0.5 * 100 * 500.0;
  EXPECT_NEAR(static_cast<double>(result.arrivals), expected,
              5 * std::sqrt(expected));
  // Stable system: completions track arrivals up to in-flight work.
  EXPECT_GT(result.completions, result.arrivals * 9 / 10);
}

TEST(Supermarket, MM1SojournMatchesTheory) {
  // d = 1 is m independent M/M/1 queues: E[sojourn] = 1/(1 − λ).
  SupermarketConfig config;
  config.servers = 200;
  config.lambda = 0.6;
  config.choices = 1;
  config.horizon = 1500.0;
  config.warmup = 200.0;
  config.seed = 5;
  const SupermarketResult result = simulate_supermarket(config);
  EXPECT_NEAR(result.sojourn.mean(), 1.0 / (1.0 - 0.6), 0.15);
}

TEST(Supermarket, MM1TailMatchesLambdaToTheI) {
  SupermarketConfig config;
  config.servers = 200;
  config.lambda = 0.7;
  config.choices = 1;
  config.horizon = 1500.0;
  config.warmup = 200.0;
  config.seed = 7;
  const SupermarketResult result = simulate_supermarket(config);
  for (unsigned i = 1; i <= 4; ++i) {
    ASSERT_LT(i, result.tail_fraction.size());
    EXPECT_NEAR(result.tail_fraction[i], classical_tail(0.7, 1, i),
                0.05 * classical_tail(0.7, 1, i) + 0.01)
        << "tail level " << i;
  }
}

TEST(Supermarket, TwoChoiceTailMatchesMitzenmacher) {
  SupermarketConfig config;
  config.servers = 400;
  config.lambda = 0.9;
  config.choices = 2;
  config.horizon = 1500.0;
  config.warmup = 200.0;
  config.seed = 9;
  const SupermarketResult result = simulate_supermarket(config);
  // i = 1: 0.9; i = 2: 0.9^3 = 0.729; i = 3: 0.9^7 ≈ 0.478.
  for (unsigned i = 1; i <= 3; ++i) {
    ASSERT_LT(i, result.tail_fraction.size());
    const double expected = classical_tail(0.9, 2, i);
    EXPECT_NEAR(result.tail_fraction[i], expected, 0.1 * expected + 0.01)
        << "tail level " << i;
  }
  // The doubly-exponential decay: i = 5 tail (0.9^31 ≈ 0.038) must already
  // be far below the single-choice λ^5 ≈ 0.59.
  ASSERT_LT(5u, result.tail_fraction.size());
  EXPECT_LT(result.tail_fraction[5], 0.09);
}

TEST(Supermarket, TwoChoicesBeatOneChoiceOnSojourn) {
  SupermarketConfig config;
  config.servers = 200;
  config.lambda = 0.9;
  config.horizon = 800.0;
  config.warmup = 100.0;
  config.seed = 11;
  config.choices = 1;
  const SupermarketResult one = simulate_supermarket(config);
  config.choices = 2;
  const SupermarketResult two = simulate_supermarket(config);
  EXPECT_LT(two.sojourn.mean(), one.sojourn.mean() * 0.6);
}

TEST(Supermarket, FixedIdentityRunsAndDegradesWithTinyPopulation) {
  // With a small identity population, the fixed hashes concentrate load on
  // the unlucky servers arrival after arrival — the queue tail must be at
  // least as heavy as the fresh-choice model's.
  SupermarketConfig config;
  config.servers = 100;
  config.lambda = 0.8;
  config.choices = 2;
  config.horizon = 800.0;
  config.warmup = 100.0;
  config.seed = 13;

  config.mode = ChoiceMode::kFresh;
  const SupermarketResult fresh = simulate_supermarket(config);
  config.mode = ChoiceMode::kFixedIdentity;
  config.population = 120;  // barely above m: strong reappearance
  const SupermarketResult fixed = simulate_supermarket(config);

  ASSERT_GT(fresh.tail_fraction.size(), 3u);
  ASSERT_GT(fixed.tail_fraction.size(), 3u);
  EXPECT_GE(fixed.tail_fraction[3] + 0.02, fresh.tail_fraction[3]);
  EXPECT_GT(fixed.sojourn.mean(), fresh.sojourn.mean() * 0.9);
}

TEST(Supermarket, BoundedQueuesRejectAndUnboundedNever) {
  SupermarketConfig config;
  config.servers = 100;
  config.lambda = 0.9;
  config.choices = 2;
  config.horizon = 600.0;
  config.warmup = 100.0;
  config.seed = 21;

  config.queue_bound = 0;
  const SupermarketResult unbounded = simulate_supermarket(config);
  EXPECT_EQ(unbounded.rejections, 0u);

  config.queue_bound = 2;
  const SupermarketResult tight = simulate_supermarket(config);
  EXPECT_GT(tight.rejections, 0u);
  // Tail at i = 1 is ~0.9, so a q = 2 bound must reject a visible share.
  EXPECT_GT(tight.rejection_rate(), 0.01);
}

TEST(Supermarket, RejectionFallsWithQueueBound) {
  // The Theorem 5.1 trade-off, continuous-time edition: rejection decays
  // steeply (doubly exponentially for d = 2) as q grows.
  SupermarketConfig config;
  config.servers = 200;
  config.lambda = 0.9;
  config.choices = 2;
  config.horizon = 800.0;
  config.warmup = 100.0;
  config.seed = 23;
  double previous = 1.0;
  for (const std::size_t bound : {1u, 2u, 4u, 8u}) {
    config.queue_bound = bound;
    const SupermarketResult result = simulate_supermarket(config);
    EXPECT_LT(result.rejection_rate(), previous);
    previous = result.rejection_rate();
  }
  EXPECT_LT(previous, 1e-3);  // q = 8 at d = 2: tail ~ 0.9^255
}

TEST(Supermarket, DeterministicGivenSeed) {
  SupermarketConfig config;
  config.servers = 50;
  config.lambda = 0.7;
  config.horizon = 200.0;
  config.seed = 15;
  const SupermarketResult a = simulate_supermarket(config);
  const SupermarketResult b = simulate_supermarket(config);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_DOUBLE_EQ(a.sojourn.mean(), b.sojourn.mean());
}

}  // namespace
}  // namespace rlb::supermarket
