// UpstreamConn enqueue/flush regression tests: a burst of forwards
// queued with enqueue_request() must all reach the backend after one
// flush(), and enqueue on a down connection must refuse immediately.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>

#include "net/server.hpp"
#include "net/upstream.hpp"
#include "net/wire.hpp"

namespace rlb::net {
namespace {

using namespace std::chrono_literals;

TEST(Upstream, EnqueueThenFlushDeliversWholeBurst) {
  ServerConfig config;
  NetServer server(config,
                   [&server](std::uint64_t token, const RequestMsg& request) {
                     ResponseMsg msg;
                     msg.request_id = request.request_id;
                     msg.status = Status::kOk;
                     server.send_response(token, msg);
                   });
  server.start();

  std::mutex mu;
  std::condition_variable cv;
  std::set<std::uint64_t> answered;
  std::atomic<bool> up{false};
  UpstreamConn conn(
      UpstreamConfig{"127.0.0.1", server.port()},
      [&](const ResponseMsg& msg) {
        {
          std::lock_guard<std::mutex> lock(mu);
          answered.insert(msg.request_id);
        }
        cv.notify_one();
      },
      [&](bool connected) { up.store(connected); });
  conn.start();
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!up.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(up.load());

  constexpr std::uint64_t kBurst = 500;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(conn.enqueue_request(i, i * 7));
  }
  ASSERT_TRUE(conn.flush());
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, 10s,
                            [&] { return answered.size() == kBurst; }));
  }
  conn.stop();
  server.stop();
}

TEST(Upstream, EnqueueRefusesWhenDown) {
  // Point at a port nobody listens on: enqueue must fail fast (the
  // caller's failover path relies on an immediate refusal, not a block).
  UpstreamConn conn(UpstreamConfig{"127.0.0.1", 1},
                    [](const ResponseMsg&) {}, nullptr);
  conn.start();
  EXPECT_FALSE(conn.enqueue_request(1, 1));
  EXPECT_FALSE(conn.flush());
  conn.stop();
}

}  // namespace
}  // namespace rlb::net
