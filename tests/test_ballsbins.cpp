// Unit tests for classical balls-into-bins strategies
// (ballsbins/strategies.hpp).
#include "ballsbins/strategies.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace rlb::ballsbins {
namespace {

std::uint64_t total(const std::vector<std::uint32_t>& loads) {
  return std::accumulate(loads.begin(), loads.end(), std::uint64_t{0});
}

TEST(Strategies, RejectInvalidArguments) {
  stats::Rng rng(1);
  EXPECT_THROW(one_choice(0, 5, rng), std::invalid_argument);
  EXPECT_THROW(d_choice_greedy(0, 5, 2, rng), std::invalid_argument);
  EXPECT_THROW(d_choice_greedy(4, 5, 0, rng), std::invalid_argument);
  EXPECT_THROW(always_go_left(4, 5, 0, rng), std::invalid_argument);
  EXPECT_THROW(always_go_left(4, 5, 5, rng), std::invalid_argument);
}

TEST(Strategies, ConserveBallCount) {
  stats::Rng rng(2);
  EXPECT_EQ(total(one_choice(16, 100, rng)), 100u);
  EXPECT_EQ(total(d_choice_greedy(16, 100, 2, rng)), 100u);
  EXPECT_EQ(total(always_go_left(16, 100, 2, rng)), 100u);
}

TEST(Strategies, ZeroBallsAllEmpty) {
  stats::Rng rng(3);
  EXPECT_EQ(max_load(one_choice(8, 0, rng)), 0u);
  EXPECT_EQ(max_load(d_choice_greedy(8, 0, 3, rng)), 0u);
}

TEST(Strategies, OneChoiceVsTwoChoiceSeparation) {
  // The power-of-two-choices phenomenon: at m balls into m bins, one-choice
  // max load ~ ln m / ln ln m (≈ 7-9 at m = 4096) while two-choice stays at
  // ~ log2 log2 m + O(1) (≈ 4-5).  Averaged over trials the separation is
  // decisive.
  constexpr std::size_t kBins = 4096;
  double one_total = 0.0, two_total = 0.0;
  constexpr int kTrials = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    stats::Rng rng(100 + trial);
    one_total += max_load(one_choice(kBins, kBins, rng));
    two_total += max_load(d_choice_greedy(kBins, kBins, 2, rng));
  }
  EXPECT_GT(one_total / kTrials, two_total / kTrials + 1.5);
  EXPECT_LE(two_total / kTrials, 6.0);
}

TEST(Strategies, HigherDNeverWorseOnAverage) {
  constexpr std::size_t kBins = 2048;
  double d2 = 0.0, d4 = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    stats::Rng rng(200 + trial);
    d2 += max_load(d_choice_greedy(kBins, kBins, 2, rng));
    d4 += max_load(d_choice_greedy(kBins, kBins, 4, rng));
  }
  EXPECT_LE(d4, d2 + 1e-9);
}

TEST(Strategies, AlwaysGoLeftAtLeastAsGoodAsGreedyOnAverage) {
  // Vöcking: LEFT[d] strictly improves the constant; we only assert it is
  // not worse on average over trials.
  constexpr std::size_t kBins = 2048;
  double greedy = 0.0, left = 0.0;
  for (int trial = 0; trial < 15; ++trial) {
    stats::Rng rng(300 + trial);
    greedy += max_load(d_choice_greedy(kBins, kBins, 2, rng));
    left += max_load(always_go_left(kBins, kBins, 2, rng));
  }
  EXPECT_LE(left, greedy + 0.5 * 15);
}

TEST(Strategies, AlwaysGoLeftHandlesNonDivisibleBins) {
  stats::Rng rng(5);
  const auto loads = always_go_left(10, 50, 3, rng);  // 10 % 3 != 0
  EXPECT_EQ(loads.size(), 10u);
  EXPECT_EQ(total(loads), 50u);
}

TEST(MaxLoadAndGap, Basics) {
  EXPECT_EQ(max_load({}), 0u);
  EXPECT_EQ(max_load({3, 1, 4, 1, 5}), 5u);
  EXPECT_EQ(load_gap({}), 0.0);
  // loads 2,2,2,6 → avg 3, max 6, gap 3.
  EXPECT_DOUBLE_EQ(load_gap({2, 2, 2, 6}), 3.0);
}

TEST(Strategies, HeavyLoadTwoChoiceGapStaysSmall) {
  // Berenbrink et al. [9]: with k = 16m balls the two-choice gap is still
  // O(log log m), nowhere near the one-choice Θ(sqrt(k log m / m)) drift.
  constexpr std::size_t kBins = 1024;
  stats::Rng rng(7);
  const auto two = d_choice_greedy(kBins, 16 * kBins, 2, rng);
  EXPECT_LE(load_gap(two), 6.0);
  const auto one = one_choice(kBins, 16 * kBins, rng);
  EXPECT_GT(load_gap(one), load_gap(two));
}

}  // namespace
}  // namespace rlb::ballsbins
