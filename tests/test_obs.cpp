// The observability layer (src/obs/): tracing, probes, timers, and their
// integration with the simulator and the parallel trial runner.
//
// Every test restores the process-global obs state (enabled flag, sink,
// detail level) on teardown — other test files run in the same process and
// assume instrumentation is off.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "harness/experiment.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"
#include "policies/delayed_cuckoo.hpp"
#include "policies/greedy.hpp"
#include "workloads/repeated_set.hpp"

namespace {

using namespace rlb;

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_sink(nullptr);
    obs::set_enabled(false);
    obs::set_detail(false);
    obs::ProbeRegistry::instance().reset();
  }
  void TearDown() override {
    obs::set_sink(nullptr);
    obs::set_enabled(false);
    obs::set_detail(false);
    obs::ProbeRegistry::instance().reset();
  }
};

// ----------------------------------------------------------------- trace

TEST_F(ObsTest, EmitRecordsInOrderWithMonotonicTimestamps) {
  obs::RingTraceCollector collector;
  obs::set_sink(&collector);
  obs::set_enabled(true);

  obs::emit(obs::EventKind::kSubmit, "t.submit", 1, 10);
  obs::emit(obs::EventKind::kRoute, "t.route", 2, 20);
  obs::emit(obs::EventKind::kServe, "t.serve", 3, 30);

  const auto events = collector.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, obs::EventKind::kSubmit);
  EXPECT_EQ(events[1].kind, obs::EventKind::kRoute);
  EXPECT_EQ(events[2].kind, obs::EventKind::kServe);
  EXPECT_STREQ(events[0].name, "t.submit");
  EXPECT_EQ(events[0].a0, 1u);
  EXPECT_EQ(events[0].a1, 10u);
  // Same thread: timestamps never go backwards.
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_LE(events[1].ts_ns, events[2].ts_ns);
  EXPECT_EQ(collector.dropped(), 0u);
}

TEST_F(ObsTest, EmitIsNoOpWhenDisabledOrSinkless) {
  obs::RingTraceCollector collector;
  obs::set_sink(&collector);
  // Raw emit() is gated only on the sink; the RLB_TRACE_EVENT macro (and
  // the latched policy sites) add the enabled() check.
  obs::set_enabled(false);
  RLB_TRACE_EVENT(obs::EventKind::kSubmit, "t.off", 1);
  EXPECT_EQ(collector.size(), 0u);

  obs::set_enabled(true);
  obs::set_sink(nullptr);
  RLB_TRACE_EVENT(obs::EventKind::kSubmit, "t.nosink", 1);
  obs::set_sink(&collector);
  EXPECT_EQ(collector.size(), 0u);
}

TEST_F(ObsTest, RingOverwritesOldestAndCountsDropped) {
  obs::RingTraceCollector collector(/*capacity=*/4);
  obs::set_sink(&collector);
  obs::set_enabled(true);

  for (std::uint64_t i = 0; i < 10; ++i) {
    obs::emit(obs::EventKind::kCounter, "t.ring", i);
  }
  EXPECT_EQ(collector.size(), 4u);
  EXPECT_EQ(collector.dropped(), 6u);
  const auto events = collector.events();
  ASSERT_EQ(events.size(), 4u);
  // The survivors are the newest four, oldest-first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].a0, 6u + i);
  }

  collector.clear();
  EXPECT_EQ(collector.size(), 0u);
  EXPECT_EQ(collector.dropped(), 0u);
}

TEST_F(ObsTest, EventKindStringsRoundTrip) {
  for (int k = 0; k <= static_cast<int>(obs::EventKind::kCounter); ++k) {
    const auto kind = static_cast<obs::EventKind>(k);
    obs::EventKind parsed;
    ASSERT_TRUE(obs::kind_from_string(obs::to_string(kind), parsed))
        << obs::to_string(kind);
    EXPECT_EQ(parsed, kind);
  }
  obs::EventKind out;
  EXPECT_FALSE(obs::kind_from_string("not-a-kind", out));
}

TEST_F(ObsTest, JsonlExportParsesBackIdentically) {
  obs::RingTraceCollector collector;
  obs::set_sink(&collector);
  obs::set_enabled(true);

  obs::emit(obs::EventKind::kKickChain, "cuckoo.kick", 7, 3);
  obs::emit(obs::EventKind::kPhaseBegin, "cuckoo.phase", 1, 2);
  obs::emit_scope("sim.step", /*start_ns=*/100, /*dur_ns=*/250, /*a0=*/5);

  const auto original = collector.events();
  std::stringstream stream;
  obs::write_jsonl(original, stream);

  const auto parsed = obs::parse_jsonl(stream);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i].kind, original[i].kind) << i;
    EXPECT_STREQ(parsed[i].name, original[i].name) << i;
    EXPECT_EQ(parsed[i].ts_ns, original[i].ts_ns) << i;
    EXPECT_EQ(parsed[i].dur_ns, original[i].dur_ns) << i;
    EXPECT_EQ(parsed[i].a0, original[i].a0) << i;
    EXPECT_EQ(parsed[i].a1, original[i].a1) << i;
    EXPECT_EQ(parsed[i].tid, original[i].tid) << i;
  }
}

TEST_F(ObsTest, ParseJsonlSkipsGarbageLines) {
  std::stringstream stream;
  stream << "not json at all\n"
         << "{\"kind\":\"no-such-kind\",\"name\":\"x\",\"ts_ns\":1}\n"
         << "{\"kind\":\"route\",\"name\":\"ok\",\"ts_ns\":42,\"dur_ns\":0,"
            "\"a0\":1,\"a1\":2,\"tid\":0}\n"
         << "\n";
  const auto events = obs::parse_jsonl(stream);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, obs::EventKind::kRoute);
  EXPECT_STREQ(events[0].name, "ok");
  EXPECT_EQ(events[0].ts_ns, 42u);
}

TEST_F(ObsTest, ChromeTraceExportShapesEventsByKind) {
  obs::RingTraceCollector collector;
  obs::set_sink(&collector);
  obs::set_enabled(true);

  obs::emit(obs::EventKind::kReject, "sq.reject", 1, 2);
  obs::emit(obs::EventKind::kPArrival, "pqueue.arrivals_per_phase", 3, 9);
  obs::emit_scope("simulate", 0, 5000, 0);

  std::stringstream stream;
  obs::write_chrome_trace(collector.events(), stream);
  const std::string json = stream.str();

  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Instant, counter, and complete phases all present.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // The counter event carries its sampled value (a1 = 9).
  EXPECT_NE(json.find("\"value\":9"), std::string::npos);
  // The scope's 5000 ns become 5 us.
  EXPECT_NE(json.find("\"dur\":5"), std::string::npos);
}

TEST_F(ObsTest, TraceFileWritesFormatsByExtension) {
  const std::string dir = ::testing::TempDir();
  const std::string jsonl_path = dir + "/rlb_obs_test.jsonl";
  obs::set_trace_file(jsonl_path);
  obs::emit(obs::EventKind::kStashHit, "cuckoo.stash", 11, 1);
  ASSERT_TRUE(obs::flush_trace());

  std::ifstream in(jsonl_path);
  ASSERT_TRUE(in.good());
  const auto events = obs::parse_jsonl(in);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, obs::EventKind::kStashHit);
  EXPECT_EQ(events[0].a0, 11u);
  std::remove(jsonl_path.c_str());
}

// ----------------------------------------------------------------- probes

// Everything from here on exercises actual recording, which
// RLB_OBS_ENABLED=OFF compiles away; the #else branch checks exactly that.
#if !defined(RLB_OBS_DISABLED)

TEST_F(ObsTest, CounterGaugeHistogramSemantics) {
  obs::set_enabled(true);
  obs::Counter counter("test.counter");
  obs::Gauge gauge("test.gauge");
  obs::Histogram hist("test.hist");

  counter.add();
  counter.add(4);
  gauge.set(2.5);
  gauge.set(-1.0);
  for (const double v : {0.0, 1.0, 2.0, 3.0, 100.0}) hist.observe(v);

  obs::ProbeSnapshot snap;
  ASSERT_TRUE(obs::ProbeRegistry::instance().find("test.counter", snap));
  EXPECT_EQ(snap.kind, obs::ProbeKind::kCounter);
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.value(), 5.0);

  ASSERT_TRUE(obs::ProbeRegistry::instance().find("test.gauge", snap));
  EXPECT_EQ(snap.kind, obs::ProbeKind::kGauge);
  EXPECT_DOUBLE_EQ(snap.min, -1.0);
  EXPECT_DOUBLE_EQ(snap.max, 2.5);

  ASSERT_TRUE(obs::ProbeRegistry::instance().find("test.hist", snap));
  EXPECT_EQ(snap.kind, obs::ProbeKind::kHistogram);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.mean(), 106.0 / 5.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  // Log2 buckets: the p50 estimate is the upper bound of the median's
  // bucket; with values {0,1,2,3,100} the median 2 lives in [2,4).
  EXPECT_GE(snap.quantile(0.5), 2.0);
  EXPECT_LE(snap.quantile(0.5), 4.0);
  EXPECT_GE(snap.quantile(0.99), 100.0);
}

TEST_F(ObsTest, RecordingIsGatedOnEnabled) {
  obs::Counter counter("test.gated");
  counter.add();  // obs disabled: must not record
  obs::ProbeSnapshot snap;
  ASSERT_TRUE(obs::ProbeRegistry::instance().find("test.gated", snap));
  EXPECT_EQ(snap.count, 0u);

  obs::set_enabled(true);
  counter.add();
  ASSERT_TRUE(obs::ProbeRegistry::instance().find("test.gated", snap));
  EXPECT_EQ(snap.count, 1u);
}

TEST_F(ObsTest, ReRegisteringANameReturnsTheSameProbe) {
  obs::set_enabled(true);
  obs::Counter first("test.same_name");
  obs::Counter second("test.same_name");
  first.add(2);
  second.add(3);
  obs::ProbeSnapshot snap;
  ASSERT_TRUE(obs::ProbeRegistry::instance().find("test.same_name", snap));
  EXPECT_DOUBLE_EQ(snap.value(), 5.0);
}

TEST_F(ObsTest, ProbesMergeAcrossPoolThreads) {
  obs::set_enabled(true);
  obs::Counter counter("test.pool_counter");
  obs::Histogram hist("test.pool_hist");

  // Four workers, each recording from its own thread-local shard.
  parallel::ThreadPool pool(4);
  constexpr std::size_t kTasks = 64;
  parallel::parallel_for(pool, kTasks, [&](std::size_t i) {
    counter.add();
    hist.observe(static_cast<double>(i));
  });

  // snapshot() merges live shards; workers are still parked in the pool.
  obs::ProbeSnapshot snap;
  ASSERT_TRUE(obs::ProbeRegistry::instance().find("test.pool_counter", snap));
  EXPECT_EQ(snap.count, kTasks);
  EXPECT_DOUBLE_EQ(snap.value(), static_cast<double>(kTasks));

  ASSERT_TRUE(obs::ProbeRegistry::instance().find("test.pool_hist", snap));
  EXPECT_EQ(snap.count, kTasks);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, static_cast<double>(kTasks - 1));
}

TEST_F(ObsTest, ShardsOfExitedThreadsSurviveInSnapshot) {
  obs::set_enabled(true);
  obs::Counter counter("test.exited_thread");
  {
    std::thread worker([&] { counter.add(7); });
    worker.join();
  }
  // The worker's shard was retired at thread exit; its total must remain.
  obs::ProbeSnapshot snap;
  ASSERT_TRUE(obs::ProbeRegistry::instance().find("test.exited_thread", snap));
  EXPECT_DOUBLE_EQ(snap.value(), 7.0);
}

TEST_F(ObsTest, ToTableSkipsSilentProbesAndOrdersColumns) {
  obs::set_enabled(true);
  obs::Counter active("test.table_active");
  obs::Counter silent("test.table_silent");
  (void)silent;
  active.add(3);

  const report::Table table = obs::ProbeRegistry::instance().to_table();
  std::stringstream stream;
  table.print_csv(stream);
  const std::string csv = stream.str();
  EXPECT_NE(csv.find("test.table_active"), std::string::npos);
  EXPECT_EQ(csv.find("test.table_silent"), std::string::npos);
  EXPECT_EQ(csv.find("probe,kind,count,value"), 0u);
}

// ----------------------------------------------------------------- timer

TEST_F(ObsTest, ObsTimerMeasuresEvenWhenObsIsDisabled) {
  obs::ObsTimer timer("test.timer");
  const double running = timer.elapsed_seconds();
  EXPECT_GE(running, 0.0);
  const double total = timer.stop();
  EXPECT_GE(total, running);
  // stop() is idempotent: the second call returns the same duration.
  EXPECT_DOUBLE_EQ(timer.stop(), total);
}

TEST_F(ObsTest, ObsTimerEmitsScopeAndHistogramWhenEnabled) {
  obs::RingTraceCollector collector;
  obs::set_sink(&collector);
  obs::set_enabled(true);
  obs::Histogram hist("test.timer_hist");
  {
    obs::ObsTimer timer("test.scope", &hist, /*a0=*/42);
  }
  const auto events = collector.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, obs::EventKind::kScope);
  EXPECT_STREQ(events[0].name, "test.scope");
  EXPECT_EQ(events[0].a0, 42u);

  obs::ProbeSnapshot snap;
  ASSERT_TRUE(obs::ProbeRegistry::instance().find("test.timer_hist", snap));
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(snap.sum), events[0].dur_ns);
}

// ------------------------------------------------------------ integration

TEST_F(ObsTest, SimulationEmitsStructuralEventsButNoFirehoseByDefault) {
  obs::RingTraceCollector collector;
  obs::set_sink(&collector);
  obs::set_enabled(true);

  auto config = policies::GreedyBalancer::theorem_config(64, 2, 4, 91);
  policies::GreedyBalancer balancer(config);
  workloads::RepeatedSetWorkload workload(64, 1ULL << 20, 91);
  core::SimConfig sim;
  sim.steps = 10;
  (void)core::simulate(balancer, workload, sim);

  bool saw_scope = false;
  for (const auto& event : collector.events()) {
    if (event.kind == obs::EventKind::kScope) saw_scope = true;
    // Per-request lifecycle events require the detail level.
    EXPECT_NE(event.kind, obs::EventKind::kSubmit);
    EXPECT_NE(event.kind, obs::EventKind::kEnqueue);
    EXPECT_NE(event.kind, obs::EventKind::kServe);
  }
  EXPECT_TRUE(saw_scope);

  // With detail on, the firehose appears.
  collector.clear();
  obs::set_detail(true);
  (void)core::simulate(balancer, workload, sim);
  bool saw_submit = false;
  for (const auto& event : collector.events()) {
    if (event.kind == obs::EventKind::kSubmit) saw_submit = true;
  }
  EXPECT_TRUE(saw_submit);
}

TEST_F(ObsTest, DelayedCuckooTracesPhaseBoundariesAndKickChains) {
  obs::RingTraceCollector collector;
  obs::set_sink(&collector);
  obs::set_enabled(true);

  policies::DelayedCuckooConfig config;
  config.servers = 64;
  config.seed = 92;
  policies::DelayedCuckooBalancer balancer(config);
  workloads::RepeatedSetWorkload workload(64, 1ULL << 20, 92);
  core::SimConfig sim;
  sim.steps = static_cast<std::size_t>(4 * balancer.phase_length());
  (void)core::simulate(balancer, workload, sim);

  std::size_t phase_events = 0;
  std::size_t kick_events = 0;
  for (const auto& event : collector.events()) {
    if (event.kind == obs::EventKind::kPhaseBegin) ++phase_events;
    if (event.kind == obs::EventKind::kKickChain) ++kick_events;
  }
  EXPECT_GE(phase_events, 3u);
  EXPECT_GT(kick_events, 0u);
}

// The ISSUE acceptance check: pqueue.arrivals_per_phase (the Lemma 4.5
// quantity) is recorded inside parallel trials and merged across the trial
// pool's per-thread shards.
TEST_F(ObsTest, ArrivalsPerPhaseProbeMergesAcrossParallelTrials) {
  obs::set_enabled(true);

  static constexpr std::size_t kServers = 64;
  static constexpr std::size_t kTrials = 4;
  const harness::BalancerFactory make_balancer = [](std::uint64_t seed) {
    policies::DelayedCuckooConfig config;
    config.servers = kServers;
    config.seed = seed;
    return std::make_unique<policies::DelayedCuckooBalancer>(config);
  };
  const harness::WorkloadFactory make_workload = [](std::uint64_t seed) {
    return std::make_unique<workloads::RepeatedSetWorkload>(
        kServers, 1ULL << 20, stats::derive_seed(seed, 1));
  };
  policies::DelayedCuckooConfig probe_config;
  probe_config.servers = kServers;
  const std::size_t phase_length =
      policies::DelayedCuckooBalancer(probe_config).phase_length();
  core::SimConfig sim;
  sim.steps = 4 * phase_length;

  const harness::TrialAggregate agg = harness::run_trials(
      kTrials, /*master_seed=*/93, make_balancer, make_workload, sim);
  EXPECT_EQ(agg.trials, kTrials);

  obs::ProbeSnapshot snap;
  ASSERT_TRUE(obs::ProbeRegistry::instance().find("pqueue.arrivals_per_phase",
                                                  snap));
  EXPECT_EQ(snap.kind, obs::ProbeKind::kHistogram);
  // Every trial crosses >= 3 phase boundaries, each recording one value per
  // P_j queue — all of it must survive the per-thread shard merge.
  EXPECT_GE(snap.count, kTrials * 3 * kServers);
  // Lemma 4.5's bound is O(log log m) per queue per phase; the recorded
  // maximum should at least be sane (nonnegative, far below a full phase's
  // worth of the whole arrival stream).
  EXPECT_GE(snap.max, 0.0);
  EXPECT_LT(snap.max, static_cast<double>(kServers * phase_length));

  // The trial runner's own probes merged too.
  ASSERT_TRUE(obs::ProbeRegistry::instance().find("trial.runs", snap));
  EXPECT_EQ(snap.count, kTrials);
}

#else  // RLB_OBS_DISABLED

TEST_F(ObsTest, InstrumentationIsCompiledOut) {
  obs::set_enabled(true);
  EXPECT_FALSE(obs::enabled());
  EXPECT_FALSE(obs::detail_enabled());

  obs::Counter counter("test.compiled_out");
  counter.add(5);
  obs::ProbeSnapshot snap;
  ASSERT_TRUE(obs::ProbeRegistry::instance().find("test.compiled_out", snap));
  EXPECT_EQ(snap.count, 0u);

  // Timing still works — benches rely on elapsed_seconds()/stop().
  obs::ObsTimer timer("test.compiled_out_timer");
  EXPECT_GE(timer.stop(), 0.0);
}

#endif  // RLB_OBS_DISABLED

}  // namespace
