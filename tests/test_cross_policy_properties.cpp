// Parameterized property tests that every (policy × workload × seed)
// combination must satisfy — the model's conservation laws and the
// balancer contract, checked uniformly across the whole design space.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "core/simulator.hpp"
#include "policies/factory.hpp"
#include "workloads/fresh_uniform.hpp"
#include "workloads/mixed.hpp"
#include "workloads/phased_churn.hpp"
#include "workloads/repeated_set.hpp"
#include "workloads/zipf_workload.hpp"

namespace rlb {
namespace {

constexpr std::size_t kServers = 128;
constexpr std::size_t kSteps = 40;

std::unique_ptr<core::Workload> make_workload(const std::string& name,
                                              std::uint64_t seed) {
  if (name == "repeated") {
    return std::make_unique<workloads::RepeatedSetWorkload>(
        kServers, 1ULL << 30, seed);
  }
  if (name == "fresh") {
    return std::make_unique<workloads::FreshUniformWorkload>(kServers);
  }
  if (name == "zipf") {
    return std::make_unique<workloads::ZipfWorkload>(kServers, 4 * kServers,
                                                     0.99, seed);
  }
  if (name == "churn") {
    return std::make_unique<workloads::PhasedChurnWorkload>(kServers, 0.3, 3,
                                                            seed);
  }
  return std::make_unique<workloads::MixedWorkload>(kServers, 0.5, seed);
}

using Combo = std::tuple<std::string, std::string, std::uint64_t>;

class CrossPolicyProperty : public ::testing::TestWithParam<Combo> {
 protected:
  std::unique_ptr<core::LoadBalancer> make_balancer(std::uint64_t seed) {
    policies::PolicyConfig config;
    config.servers = kServers;
    config.replication = 2;
    // g = 16 keeps every policy inside its constructible regime (delayed
    // cuckoo needs (g/4)*phase_length >= q with q = 8 and derived phase 3).
    config.processing_rate = 16;
    config.queue_capacity = 8;
    config.seed = seed;
    return policies::make_policy(std::get<0>(GetParam()), config);
  }
};

TEST_P(CrossPolicyProperty, ConservationHoldsAfterEveryStep) {
  const auto& [policy_name, workload_name, seed] = GetParam();
  auto balancer = make_balancer(seed);
  auto workload = make_workload(workload_name, seed);
  core::Metrics metrics;
  std::vector<core::ChunkId> batch;
  for (core::Time t = 0; t < static_cast<core::Time>(kSteps); ++t) {
    workload->fill_step(t, batch);
    balancer->step(t, batch, metrics);
    ASSERT_EQ(metrics.submitted(),
              metrics.completed() + metrics.rejected() +
                  balancer->total_backlog())
        << policy_name << "/" << workload_name << " step " << t;
  }
}

TEST_P(CrossPolicyProperty, BacklogsNeverExceedConfiguredCapacity) {
  const auto& [policy_name, workload_name, seed] = GetParam();
  auto balancer = make_balancer(seed);
  auto workload = make_workload(workload_name, seed);
  core::Metrics metrics;
  std::vector<core::ChunkId> batch;
  std::vector<std::uint32_t> backlogs;
  // delayed-cuckoo holds 4 queues of q; single-queue policies hold one.
  const std::uint32_t limit = policy_name == "delayed-cuckoo" ? 4 * 8 : 8;
  for (core::Time t = 0; t < static_cast<core::Time>(kSteps); ++t) {
    workload->fill_step(t, batch);
    balancer->step(t, batch, metrics);
    balancer->backlogs(backlogs);
    for (const std::uint32_t b : backlogs) {
      ASSERT_LE(b, limit) << policy_name << "/" << workload_name;
    }
  }
}

TEST_P(CrossPolicyProperty, DeterministicReplay) {
  const auto& [policy_name, workload_name, seed] = GetParam();
  auto run = [&] {
    auto balancer = make_balancer(seed);
    auto workload = make_workload(workload_name, seed);
    core::SimConfig sim;
    sim.steps = kSteps;
    return core::simulate(*balancer, *workload, sim);
  };
  const core::SimResult a = run();
  const core::SimResult b = run();
  EXPECT_EQ(a.metrics.submitted(), b.metrics.submitted());
  EXPECT_EQ(a.metrics.completed(), b.metrics.completed());
  EXPECT_EQ(a.metrics.rejected(), b.metrics.rejected());
  EXPECT_EQ(a.max_backlog, b.max_backlog);
}

TEST_P(CrossPolicyProperty, FlushEmptiesEverythingAndCounts) {
  const auto& [policy_name, workload_name, seed] = GetParam();
  auto balancer = make_balancer(seed);
  auto workload = make_workload(workload_name, seed);
  core::Metrics metrics;
  std::vector<core::ChunkId> batch;
  for (core::Time t = 0; t < 10; ++t) {
    workload->fill_step(t, batch);
    balancer->step(t, batch, metrics);
  }
  const std::uint64_t queued = balancer->total_backlog();
  const std::uint64_t dropped_before = metrics.dropped_from_queue();
  balancer->flush(metrics);
  EXPECT_EQ(balancer->total_backlog(), 0u);
  EXPECT_EQ(metrics.dropped_from_queue() - dropped_before, queued);
}

TEST_P(CrossPolicyProperty, LatencyBoundedByQueueSojourn) {
  // A request can wait at most (queue capacity) consumption opportunities;
  // with per-queue drain >= 1/step that is <= total-capacity steps.  Checks
  // the latency accounting cannot run away.
  const auto& [policy_name, workload_name, seed] = GetParam();
  auto balancer = make_balancer(seed);
  auto workload = make_workload(workload_name, seed);
  core::SimConfig sim;
  sim.steps = kSteps;
  const core::SimResult r = core::simulate(*balancer, *workload, sim);
  const std::uint64_t limit = policy_name == "delayed-cuckoo" ? 4 * 8 : 8;
  EXPECT_LE(r.metrics.max_latency(), limit + 1)
      << policy_name << "/" << workload_name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, CrossPolicyProperty,
    ::testing::Combine(::testing::Values("greedy", "greedy-d1", "greedy-left",
                                         "delayed-cuckoo", "random-of-d",
                                         "per-step-greedy", "round-robin",
                                         "threshold"),
                       ::testing::Values("repeated", "fresh", "zipf"),
                       ::testing::Values<std::uint64_t>(7, 1234)),
    [](const ::testing::TestParamInfo<Combo>& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::get<1>(info.param) + "_s" +
                         std::to_string(std::get<2>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace rlb
