// Unit + property tests for the capacitated two-choice allocator
// (cuckoo/capacitated.hpp).
#include "cuckoo/capacitated.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>

#include "stats/rng.hpp"

namespace rlb::cuckoo {
namespace {

TEST(CapacitatedAllocator, RejectsBadArguments) {
  EXPECT_THROW(CapacitatedAllocator(0, 1), std::invalid_argument);
  EXPECT_THROW(CapacitatedAllocator(4, 0), std::invalid_argument);
  CapacitatedAllocator alloc(4, 1);
  EXPECT_THROW(alloc.insert(0, 0, 9), std::out_of_range);
}

TEST(CapacitatedAllocator, CapacityOneMatchesUnitBehaviour) {
  CapacitatedAllocator alloc(4, 1);
  EXPECT_TRUE(alloc.insert(0, 0, 1));
  EXPECT_TRUE(alloc.insert(1, 0, 1));
  EXPECT_FALSE(alloc.insert(2, 0, 1));  // third item on a 2-server pair
  EXPECT_EQ(alloc.placed_count(), 2u);
}

TEST(CapacitatedAllocator, CapacityTwoHoldsFourOnAPair) {
  CapacitatedAllocator alloc(4, 2);
  for (std::uint32_t item = 0; item < 4; ++item) {
    EXPECT_TRUE(alloc.insert(item, 0, 1)) << item;
  }
  EXPECT_FALSE(alloc.insert(4, 0, 1));
  EXPECT_EQ(alloc.load(0), 2u);
  EXPECT_EQ(alloc.load(1), 2u);
}

TEST(CapacitatedAllocator, AugmentingChainRelocates) {
  // Servers 0,1,2 with capacity 1.  item0:{0,1} item1:{1,2} both placed at
  // their first choice; item2:{0,1} needs the chain 0→1→2.
  CapacitatedAllocator alloc(3, 1);
  EXPECT_TRUE(alloc.insert(0, 0, 1));
  EXPECT_TRUE(alloc.insert(1, 1, 2));
  EXPECT_TRUE(alloc.insert(2, 0, 1));
  EXPECT_EQ(alloc.placed_count(), 3u);
  // Validity: each placed item at one of its choices, loads <= 1.
  for (std::uint32_t s = 0; s < 3; ++s) EXPECT_LE(alloc.load(s), 1u);
}

TEST(CapacitatedAllocator, PinnedItemBothChoicesEqual) {
  CapacitatedAllocator alloc(2, 1);
  EXPECT_TRUE(alloc.insert(0, 1, 1));
  EXPECT_EQ(alloc.server_of(0), 1);
  // Second pinned item on the same server cannot displace it.
  EXPECT_FALSE(alloc.insert(1, 1, 1));
  // But an item with a real alternative still fits via server 0.
  EXPECT_TRUE(alloc.insert(2, 1, 0));
  EXPECT_EQ(alloc.server_of(2), 0);
}

TEST(CapacitatedAllocator, ClearResets) {
  CapacitatedAllocator alloc(2, 1);
  alloc.insert(0, 0, 1);
  alloc.clear();
  EXPECT_EQ(alloc.placed_count(), 0u);
  EXPECT_EQ(alloc.server_of(0), -1);
  EXPECT_EQ(alloc.load(0), 0u);
}

// Property: insert() fails exactly when no capacity-respecting assignment
// of (accepted items + the candidate) exists.  Ground truth: exact maximum
// bipartite matching (Kuhn's algorithm) of items against server slots.
// (Note a component-counting oracle à la the unit-capacity test is NOT
// exact for capacity >= 2 — a locally overfull cluster can hide inside a
// component with global slack — hence the exact matcher.)
bool oracle_feasible(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& items,
    std::size_t servers, std::uint32_t capacity) {
  std::vector<std::int32_t> slot_owner(servers * capacity, -1);
  std::vector<char> visited(servers, 0);
  // Kuhn augmenting search from item `it`; visits each server once.
  std::function<bool(std::int32_t)> try_place = [&](std::int32_t it) -> bool {
    for (const std::uint32_t s : {items[static_cast<std::size_t>(it)].first,
                                  items[static_cast<std::size_t>(it)].second}) {
      if (visited[s]) continue;
      visited[s] = 1;
      for (std::uint32_t k = 0; k < capacity; ++k) {
        const std::size_t slot = s * capacity + k;
        if (slot_owner[slot] == -1 || try_place(slot_owner[slot])) {
          slot_owner[slot] = it;
          return true;
        }
      }
    }
    return false;
  };
  for (std::size_t i = 0; i < items.size(); ++i) {
    std::fill(visited.begin(), visited.end(), 0);
    if (!try_place(static_cast<std::int32_t>(i))) return false;
  }
  return true;
}

class CapacitatedFeasibilityProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {
};

TEST_P(CapacitatedFeasibilityProperty, InsertFailureMatchesExactMatching) {
  const auto [seed, capacity] = GetParam();
  stats::Rng rng(seed);
  constexpr std::size_t kServers = 48;
  const std::size_t items = kServers * capacity + kServers / 2;  // overfull
  CapacitatedAllocator alloc(kServers, capacity);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> accepted;

  for (std::uint32_t item = 0; item < items; ++item) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(kServers));
    auto b = static_cast<std::uint32_t>(rng.next_below(kServers));
    while (b == a) b = static_cast<std::uint32_t>(rng.next_below(kServers));
    accepted.emplace_back(a, b);
    const bool expected = oracle_feasible(accepted, kServers, capacity);
    const bool placed = alloc.insert(item, a, b);
    EXPECT_EQ(placed, expected)
        << "item " << item << " seed " << seed << " cap " << capacity;
    if (!placed) accepted.pop_back();
  }

  // Validity of the final state.
  std::vector<std::uint32_t> loads(kServers, 0);
  for (std::uint32_t item = 0; item < items; ++item) {
    const std::int32_t server = alloc.server_of(item);
    if (server < 0) continue;
    ++loads[static_cast<std::size_t>(server)];
  }
  for (std::uint32_t s = 0; s < kServers; ++s) {
    EXPECT_EQ(loads[s], alloc.load(s));
    EXPECT_LE(loads[s], capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCapacities, CapacitatedFeasibilityProperty,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 9),
                       ::testing::Values(1u, 2u, 3u)));

TEST(AssignOfflineCapacitated, ValidAndTighterThanSplit) {
  stats::Rng rng(5);
  constexpr std::size_t kServers = 512;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> choices;
  for (std::size_t i = 0; i < kServers; ++i) {
    auto a = static_cast<std::uint32_t>(rng.next_below(kServers));
    auto b = static_cast<std::uint32_t>(rng.next_below(kServers));
    while (b == a) b = static_cast<std::uint32_t>(rng.next_below(kServers));
    choices.emplace_back(a, b);
  }
  const OfflineAssignment direct =
      assign_offline_capacitated(choices, kServers, /*capacity=*/2);
  EXPECT_TRUE(direct.success);
  std::uint32_t max_direct = 0;
  for (const std::uint32_t c : direct.per_server) {
    max_direct = std::max(max_direct, c);
  }
  EXPECT_LE(max_direct, 2u);  // the split construction guarantees only 3

  for (std::size_t i = 0; i < choices.size(); ++i) {
    const std::uint32_t s = direct.assignment[i];
    EXPECT_TRUE(s == choices[i].first || s == choices[i].second);
  }
}

TEST(AssignOfflineCapacitated, OverloadedInstanceReportsStash) {
  // 10 items pinned to one pair with capacity 2: 4 placeable, 6 stashed.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> choices(10, {0, 1});
  const OfflineAssignment result =
      assign_offline_capacitated(choices, 4, 2, /*stash_capacity=*/2);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.stash_used, 6u);
}

}  // namespace
}  // namespace rlb::cuckoo
