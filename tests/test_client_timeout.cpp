// Regression test for the Client blocking-read deadline under EINTR.
//
// SO_RCVTIMEO restarts from scratch on every read() call, so a signal
// storm arriving faster than the timeout used to extend a 100 ms read
// budget indefinitely — each EINTR re-armed the full window.  The fix
// computes one deadline per next_frame() call and re-arms only the
// remaining slice after every interruption.  This test pounds the reading
// thread with SIGUSR1 every ~20 ms (no SA_RESTART) against a server that
// never responds, and asserts the read still times out near the
// configured budget instead of hanging until the signals stop.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "net/client.hpp"

namespace rlb::net {
namespace {

using namespace std::chrono_literals;

void sigusr1_noop(int) {}

TEST(ClientTimeout, EintrDoesNotRestartDeadline) {
  // A listener that accepts and then goes silent.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  // SIGUSR1 handler without SA_RESTART so blocking reads see EINTR.
  struct sigaction sa {};
  struct sigaction old_sa {};
  sa.sa_handler = sigusr1_noop;
  sa.sa_flags = 0;
  sigemptyset(&sa.sa_mask);
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old_sa), 0);

  Client client;
  client.set_recv_timeout_ms(200);
  client.connect("127.0.0.1", port);
  const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
  ASSERT_GE(conn_fd, 0);

  // Interrupting timer: signal the reading thread every ~20 ms — an order
  // of magnitude faster than the 200 ms budget — for up to 2 s.
  const pthread_t reader = ::pthread_self();
  std::atomic<bool> stop{false};
  std::thread interrupter([&] {
    for (int i = 0; i < 100 && !stop.load(); ++i) {
      std::this_thread::sleep_for(20ms);
      ::pthread_kill(reader, SIGUSR1);
    }
  });

  const auto start = std::chrono::steady_clock::now();
  ResponseMsg response;
  const ReadOutcome outcome = client.try_read_response(response);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  stop = true;
  interrupter.join();
  ::sigaction(SIGUSR1, &old_sa, nullptr);

  EXPECT_EQ(outcome, ReadOutcome::kTimeout);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count();
  // Must be at least (close to) the configured budget...
  EXPECT_GE(elapsed_ms, 150);
  // ...and nowhere near the 2 s the interrupter keeps firing for.  The
  // broken behavior re-armed 200 ms on every 20 ms signal, so it could
  // only return after the storm ended (~2.2 s).
  EXPECT_LT(elapsed_ms, 1500);

  ::close(conn_fd);
  ::close(listen_fd);
}

}  // namespace
}  // namespace rlb::net
