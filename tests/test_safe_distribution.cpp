// Unit tests for the Definition 3.2 safety checker
// (core/safe_distribution.hpp).
#include "core/safe_distribution.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace rlb::core {
namespace {

TEST(BacklogTailCounts, AllZeroBacklogs) {
  const auto tail = backlog_tail_counts({0, 0, 0, 0});
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0], 0u);  // nobody has backlog > 0
}

TEST(BacklogTailCounts, MixedBacklogs) {
  // backlogs: 0, 1, 1, 3
  const auto tail = backlog_tail_counts({0, 1, 1, 3});
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail[0], 3u);  // > 0: three servers
  EXPECT_EQ(tail[1], 1u);  // > 1: one server
  EXPECT_EQ(tail[2], 1u);  // > 2: one server
  EXPECT_EQ(tail[3], 0u);  // > 3: none
}

TEST(SafeDistribution, AllEmptyIsSafe) {
  const SafetyReport report = check_safe_distribution({0, 0, 0, 0});
  EXPECT_TRUE(report.safe);
  EXPECT_EQ(report.worst_ratio, 0.0);
}

TEST(SafeDistribution, ExactBoundaryIsSafe) {
  // m = 8.  Bound at j=1: 8/2 = 4 servers may have backlog > 1;
  // at j=2: 2 servers; at j=3: 1 server.
  // backlogs: four 2s would be > 1 (exactly 4 = bound), two of them 3
  // (> 2, exactly 2 = bound), one of them 4 (> 3, exactly 1 = bound).
  const std::vector<std::uint32_t> backlogs = {2, 2, 3, 4, 0, 0, 0, 0};
  const SafetyReport report = check_safe_distribution(backlogs);
  EXPECT_TRUE(report.safe);
  EXPECT_DOUBLE_EQ(report.worst_ratio, 1.0);
}

TEST(SafeDistribution, ViolationDetectedAtCorrectLevel) {
  // m = 8, j = 2 bound is 2, but three servers have backlog > 2.
  const std::vector<std::uint32_t> backlogs = {3, 3, 3, 0, 0, 0, 0, 0};
  const SafetyReport report = check_safe_distribution(backlogs);
  EXPECT_FALSE(report.safe);
  EXPECT_EQ(report.violated_level, 2u);
  EXPECT_GT(report.worst_ratio, 1.0);
}

TEST(SafeDistribution, SingleHugeBacklogViolates) {
  // m = 4: at j = 3, bound = 0.5 servers, one server with backlog 10 > 3.
  const SafetyReport report = check_safe_distribution({10, 0, 0, 0});
  EXPECT_FALSE(report.safe);
}

TEST(SafeDistribution, UniformOnesAreSafe) {
  // Everyone has backlog 1: nobody exceeds 1, trivially safe.
  const std::vector<std::uint32_t> backlogs(64, 1);
  EXPECT_TRUE(check_safe_distribution(backlogs).safe);
}

TEST(SafeDistribution, UniformTwosViolate) {
  // m = 64: at j = 1 bound is 32, but all 64 servers have backlog > 1.
  const std::vector<std::uint32_t> backlogs(64, 2);
  const SafetyReport report = check_safe_distribution(backlogs);
  EXPECT_FALSE(report.safe);
  EXPECT_EQ(report.violated_level, 1u);
  EXPECT_DOUBLE_EQ(report.worst_ratio, 2.0);
}

TEST(SafeDistribution, GeometricDecayIsSafe) {
  // Construct exactly the m/2^j profile: m/2 servers with backlog 1,
  // m/4 with 2, m/8 with 3, ... — the canonical safe shape.
  std::vector<std::uint32_t> backlogs;
  std::uint32_t level = 1;
  for (std::size_t count = 64; count >= 1; count /= 2, ++level) {
    for (std::size_t i = 0; i < count; ++i) {
      backlogs.push_back(level - 1);
    }
  }
  const SafetyReport report = check_safe_distribution(backlogs);
  EXPECT_TRUE(report.safe) << "violated at level " << report.violated_level;
}

TEST(SafeDistribution, EmptyInputIsSafe) {
  EXPECT_TRUE(check_safe_distribution({}).safe);
}

// -- safe_set_levels: the per-level report behind the STATS monitor ------

TEST(SafeSetLevels, ExactlyAtTheEnvelope) {
  // m = 8, counts sit exactly on the m/2^j bound at every level:
  //   > 1: 4 servers (bound 8/2 = 4)
  //   > 2: 2 servers (bound 8/4 = 2)
  //   > 3: 1 server  (bound 8/8 = 1)
  const std::vector<std::uint32_t> backlogs = {2, 2, 3, 4, 0, 0, 0, 0};
  const auto levels = safe_set_levels(backlogs);
  // Levels run j = 1 .. max backlog; the top level always observes 0
  // (nobody exceeds the maximum).
  ASSERT_EQ(levels.size(), 4u);
  for (std::size_t i = 0; i < levels.size(); ++i) {
    EXPECT_EQ(levels[i].level, i + 1);
    EXPECT_DOUBLE_EQ(levels[i].bound, 8.0 / (1u << (i + 1)));
  }
  EXPECT_EQ(levels[0].observed, 4u);
  EXPECT_EQ(levels[1].observed, 2u);
  EXPECT_EQ(levels[2].observed, 1u);
  EXPECT_EQ(levels[3].observed, 0u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(levels[i].ratio, 1.0) << "level " << levels[i].level;
  }
  EXPECT_DOUBLE_EQ(levels[3].ratio, 0.0);
  // The per-level max must agree with the checker's worst_ratio.
  EXPECT_DOUBLE_EQ(check_safe_distribution(backlogs).worst_ratio, 1.0);
}

TEST(SafeSetLevels, JustUnderTheEnvelope) {
  // m = 8 again but one fewer server at each tail: 3 with backlog > 1,
  // 1 with backlog > 2, 0 with backlog > 3.
  const std::vector<std::uint32_t> backlogs = {2, 2, 3, 0, 0, 0, 0, 0};
  const auto levels = safe_set_levels(backlogs);
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0].level, 1u);
  EXPECT_EQ(levels[0].observed, 3u);
  EXPECT_DOUBLE_EQ(levels[0].ratio, 3.0 / 4.0);
  EXPECT_EQ(levels[1].level, 2u);
  EXPECT_EQ(levels[1].observed, 1u);
  EXPECT_DOUBLE_EQ(levels[1].ratio, 1.0 / 2.0);
  EXPECT_EQ(levels[2].observed, 0u);
  for (const SafeSetLevel& level : levels) {
    EXPECT_LT(level.ratio, 1.0) << "level " << level.level;
  }
  EXPECT_TRUE(check_safe_distribution(backlogs).safe);
}

TEST(SafeSetLevels, JustOverTheEnvelope) {
  // m = 8, one extra server past the bound at level 2: 3 servers with
  // backlog > 2 against a bound of 2.
  const std::vector<std::uint32_t> backlogs = {3, 3, 3, 0, 0, 0, 0, 0};
  const auto levels = safe_set_levels(backlogs);
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_DOUBLE_EQ(levels[0].ratio, 3.0 / 4.0);  // > 1: 3 of bound 4
  EXPECT_DOUBLE_EQ(levels[1].ratio, 3.0 / 2.0);  // > 2: 3 of bound 2 — over
  EXPECT_DOUBLE_EQ(levels[2].ratio, 0.0);        // > 3: none
  const SafetyReport report = check_safe_distribution(backlogs);
  EXPECT_FALSE(report.safe);
  EXPECT_EQ(report.violated_level, 2u);
  EXPECT_DOUBLE_EQ(report.worst_ratio, 1.5);
}

TEST(SafeSetLevels, MaxRatioMatchesCheckerWorstRatio) {
  // A messier vector: the per-level maximum must be exactly what
  // check_safe_distribution reports as worst_ratio.
  const std::vector<std::uint32_t> backlogs = {0, 1, 1, 2, 2, 2, 5, 9,
                                               0, 0, 1, 3, 0, 0, 0, 7};
  const auto levels = safe_set_levels(backlogs);
  ASSERT_FALSE(levels.empty());
  double max_ratio = 0.0;
  for (const SafeSetLevel& level : levels) {
    max_ratio = std::max(max_ratio, level.ratio);
  }
  EXPECT_DOUBLE_EQ(max_ratio, check_safe_distribution(backlogs).worst_ratio);
}

TEST(SafeSetLevels, DegenerateInputs) {
  // Backlogs capped at 1: a single level j=1 observing nothing.
  const auto levels = safe_set_levels({0, 1, 1, 0});
  ASSERT_EQ(levels.size(), 1u);
  EXPECT_EQ(levels[0].level, 1u);
  EXPECT_EQ(levels[0].observed, 0u);
  EXPECT_DOUBLE_EQ(levels[0].ratio, 0.0);
  // All idle / no servers: no levels at all.
  EXPECT_TRUE(safe_set_levels({0, 0, 0}).empty());
  EXPECT_TRUE(safe_set_levels({}).empty());
}

}  // namespace
}  // namespace rlb::core
