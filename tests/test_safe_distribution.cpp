// Unit tests for the Definition 3.2 safety checker
// (core/safe_distribution.hpp).
#include "core/safe_distribution.hpp"

#include <gtest/gtest.h>

namespace rlb::core {
namespace {

TEST(BacklogTailCounts, AllZeroBacklogs) {
  const auto tail = backlog_tail_counts({0, 0, 0, 0});
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0], 0u);  // nobody has backlog > 0
}

TEST(BacklogTailCounts, MixedBacklogs) {
  // backlogs: 0, 1, 1, 3
  const auto tail = backlog_tail_counts({0, 1, 1, 3});
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail[0], 3u);  // > 0: three servers
  EXPECT_EQ(tail[1], 1u);  // > 1: one server
  EXPECT_EQ(tail[2], 1u);  // > 2: one server
  EXPECT_EQ(tail[3], 0u);  // > 3: none
}

TEST(SafeDistribution, AllEmptyIsSafe) {
  const SafetyReport report = check_safe_distribution({0, 0, 0, 0});
  EXPECT_TRUE(report.safe);
  EXPECT_EQ(report.worst_ratio, 0.0);
}

TEST(SafeDistribution, ExactBoundaryIsSafe) {
  // m = 8.  Bound at j=1: 8/2 = 4 servers may have backlog > 1;
  // at j=2: 2 servers; at j=3: 1 server.
  // backlogs: four 2s would be > 1 (exactly 4 = bound), two of them 3
  // (> 2, exactly 2 = bound), one of them 4 (> 3, exactly 1 = bound).
  const std::vector<std::uint32_t> backlogs = {2, 2, 3, 4, 0, 0, 0, 0};
  const SafetyReport report = check_safe_distribution(backlogs);
  EXPECT_TRUE(report.safe);
  EXPECT_DOUBLE_EQ(report.worst_ratio, 1.0);
}

TEST(SafeDistribution, ViolationDetectedAtCorrectLevel) {
  // m = 8, j = 2 bound is 2, but three servers have backlog > 2.
  const std::vector<std::uint32_t> backlogs = {3, 3, 3, 0, 0, 0, 0, 0};
  const SafetyReport report = check_safe_distribution(backlogs);
  EXPECT_FALSE(report.safe);
  EXPECT_EQ(report.violated_level, 2u);
  EXPECT_GT(report.worst_ratio, 1.0);
}

TEST(SafeDistribution, SingleHugeBacklogViolates) {
  // m = 4: at j = 3, bound = 0.5 servers, one server with backlog 10 > 3.
  const SafetyReport report = check_safe_distribution({10, 0, 0, 0});
  EXPECT_FALSE(report.safe);
}

TEST(SafeDistribution, UniformOnesAreSafe) {
  // Everyone has backlog 1: nobody exceeds 1, trivially safe.
  const std::vector<std::uint32_t> backlogs(64, 1);
  EXPECT_TRUE(check_safe_distribution(backlogs).safe);
}

TEST(SafeDistribution, UniformTwosViolate) {
  // m = 64: at j = 1 bound is 32, but all 64 servers have backlog > 1.
  const std::vector<std::uint32_t> backlogs(64, 2);
  const SafetyReport report = check_safe_distribution(backlogs);
  EXPECT_FALSE(report.safe);
  EXPECT_EQ(report.violated_level, 1u);
  EXPECT_DOUBLE_EQ(report.worst_ratio, 2.0);
}

TEST(SafeDistribution, GeometricDecayIsSafe) {
  // Construct exactly the m/2^j profile: m/2 servers with backlog 1,
  // m/4 with 2, m/8 with 3, ... — the canonical safe shape.
  std::vector<std::uint32_t> backlogs;
  std::uint32_t level = 1;
  for (std::size_t count = 64; count >= 1; count /= 2, ++level) {
    for (std::size_t i = 0; i < count; ++i) {
      backlogs.push_back(level - 1);
    }
  }
  const SafetyReport report = check_safe_distribution(backlogs);
  EXPECT_TRUE(report.safe) << "violated at level " << report.violated_level;
}

TEST(SafeDistribution, EmptyInputIsSafe) {
  EXPECT_TRUE(check_safe_distribution({}).safe);
}

}  // namespace
}  // namespace rlb::core
