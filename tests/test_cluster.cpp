// Unit tests for the server cluster (core/cluster.hpp).
#include "core/cluster.hpp"

#include <gtest/gtest.h>

namespace rlb::core {
namespace {

TEST(Cluster, RejectsZeroServers) {
  EXPECT_THROW(Cluster(0, 4), std::invalid_argument);
}

TEST(Cluster, InitialStateAllEmpty) {
  Cluster cluster(8, 3);
  EXPECT_EQ(cluster.size(), 8u);
  EXPECT_EQ(cluster.queue_capacity(), 3u);
  EXPECT_EQ(cluster.total_backlog(), 0u);
  for (ServerId s = 0; s < 8; ++s) {
    EXPECT_EQ(cluster.backlog(s), 0u);
    EXPECT_TRUE(cluster.empty(s));
    EXPECT_FALSE(cluster.full(s));
  }
}

TEST(Cluster, PushUpdatesBacklogCaches) {
  Cluster cluster(4, 2);
  EXPECT_TRUE(cluster.push(1, Request{10, 0}));
  EXPECT_TRUE(cluster.push(1, Request{11, 0}));
  EXPECT_EQ(cluster.backlog(1), 2u);
  EXPECT_TRUE(cluster.full(1));
  EXPECT_EQ(cluster.total_backlog(), 2u);
  EXPECT_FALSE(cluster.push(1, Request{12, 0}));
  EXPECT_EQ(cluster.total_backlog(), 2u);
}

TEST(Cluster, PopPreservesFifoAndCounts) {
  Cluster cluster(2, 4);
  cluster.push(0, Request{1, 5});
  cluster.push(0, Request{2, 6});
  const Request first = cluster.pop(0);
  EXPECT_EQ(first.chunk, 1u);
  EXPECT_EQ(first.arrival, 5);
  EXPECT_EQ(cluster.backlog(0), 1u);
  EXPECT_EQ(cluster.total_backlog(), 1u);
}

TEST(Cluster, ClearServerOnlyAffectsThatServer) {
  Cluster cluster(3, 4);
  cluster.push(0, Request{1, 0});
  cluster.push(1, Request{2, 0});
  cluster.push(1, Request{3, 0});
  EXPECT_EQ(cluster.clear_server(1), 2u);
  EXPECT_EQ(cluster.backlog(1), 0u);
  EXPECT_EQ(cluster.backlog(0), 1u);
  EXPECT_EQ(cluster.total_backlog(), 1u);
}

TEST(Cluster, ClearAllReturnsTotal) {
  Cluster cluster(3, 4);
  cluster.push(0, Request{1, 0});
  cluster.push(1, Request{2, 0});
  cluster.push(2, Request{3, 0});
  EXPECT_EQ(cluster.clear_all(), 3u);
  EXPECT_EQ(cluster.total_backlog(), 0u);
}

TEST(Cluster, BacklogsVectorMatchesIndividuals) {
  Cluster cluster(5, 4);
  cluster.push(2, Request{1, 0});
  cluster.push(2, Request{2, 0});
  cluster.push(4, Request{3, 0});
  const auto& backlogs = cluster.backlogs();
  ASSERT_EQ(backlogs.size(), 5u);
  EXPECT_EQ(backlogs[2], 2u);
  EXPECT_EQ(backlogs[4], 1u);
  EXPECT_EQ(backlogs[0], 0u);
}

}  // namespace
}  // namespace rlb::core
