// Unit tests for the extension policies: LEFT[d] greedy, threshold routing,
// grouped placement, and heterogeneous per-server rates.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/factory.hpp"
#include "policies/greedy.hpp"
#include "policies/left_greedy.hpp"
#include "policies/threshold.hpp"
#include "workloads/fresh_uniform.hpp"
#include "workloads/repeated_set.hpp"

namespace rlb::policies {
namespace {

SingleQueueConfig base_config() {
  SingleQueueConfig config;
  config.servers = 256;
  config.replication = 2;
  config.processing_rate = 2;
  config.queue_capacity = 16;
  config.seed = 3;
  return config;
}

// ---------------------------------------------------------------- grouped
TEST(GroupedPlacement, ReplicaIInGroupI) {
  const core::Placement placement(10, 3, 7, core::PlacementMode::kGrouped);
  // Groups over 10 servers with d = 3: sizes 4, 3, 3.
  EXPECT_EQ(placement.group_begin(0), 0u);
  EXPECT_EQ(placement.group_begin(1), 4u);
  EXPECT_EQ(placement.group_begin(2), 7u);
  EXPECT_EQ(placement.group_begin(3), 10u);
  for (core::ChunkId x = 0; x < 500; ++x) {
    const core::ChoiceList choices = placement.choices(x);
    ASSERT_EQ(choices.size(), 3u);
    EXPECT_LT(choices[0], 4u);
    EXPECT_GE(choices[1], 4u);
    EXPECT_LT(choices[1], 7u);
    EXPECT_GE(choices[2], 7u);
    EXPECT_LT(choices[2], 10u);
  }
}

TEST(GroupedPlacement, StableAcrossCalls) {
  const core::Placement placement(64, 2, 9, core::PlacementMode::kGrouped);
  for (core::ChunkId x = 0; x < 100; ++x) {
    const auto first = placement.choices(x);
    const auto second = placement.choices(x);
    EXPECT_EQ(first[0], second[0]);
    EXPECT_EQ(first[1], second[1]);
  }
}

// ------------------------------------------------------------ left greedy
TEST(LeftGreedy, ForcesGroupedPlacement) {
  LeftGreedyBalancer balancer(base_config());
  EXPECT_EQ(balancer.name(), "greedy-left");
  EXPECT_EQ(balancer.placement().mode(), core::PlacementMode::kGrouped);
}

TEST(LeftGreedy, CleanOnRepeatedSetLikeGreedy) {
  SingleQueueConfig config = base_config();
  LeftGreedyBalancer balancer(config);
  workloads::RepeatedSetWorkload workload(256, 1u << 20, 11);
  core::SimConfig sim;
  sim.steps = 150;
  const core::SimResult r = core::simulate(balancer, workload, sim);
  EXPECT_EQ(r.metrics.rejected(), 0u);
  EXPECT_LT(r.metrics.average_latency(), 1.0);
}

TEST(LeftGreedy, TieBreaksLeftOnEmptyCluster) {
  // On an empty cluster every choice has backlog 0; the pick must be the
  // group-0 replica for every chunk.
  SingleQueueConfig config = base_config();
  config.servers = 8;
  LeftGreedyBalancer balancer(config);
  core::Metrics metrics;
  // g = 2 sub-steps process everything in-step; backlog checks need g = 1
  // and a fresh balancer per request, so verify through a single delivery.
  config.processing_rate = 1;
  LeftGreedyBalancer probe(config);
  const std::vector<core::ChunkId> batch = {42};
  probe.step(0, batch, metrics);
  const core::ChoiceList choices = probe.placement().choices(42);
  // Request either completed (processed sub-step) or queued at choices[0];
  // either way nothing may sit on the right replica.
  EXPECT_EQ(probe.backlog(choices[1]), 0u);
}

// -------------------------------------------------------------- threshold
TEST(Threshold, RejectsZeroThreshold) {
  EXPECT_THROW(ThresholdBalancer(base_config(), 0), std::invalid_argument);
}

TEST(Threshold, CountsProbes) {
  ThresholdBalancer balancer(base_config(), 1);
  core::Metrics metrics;
  const std::vector<core::ChunkId> batch = {1, 2, 3, 4};
  balancer.step(0, batch, metrics);
  EXPECT_EQ(balancer.requests_routed(), 4u);
  // Empty cluster: every request takes its first probe.
  EXPECT_EQ(balancer.probes_issued(), 4u);
}

TEST(Threshold, ProbesAtMostD) {
  ThresholdBalancer balancer(base_config(), 1);
  workloads::RepeatedSetWorkload workload(256, 1u << 18, 13);
  core::SimConfig sim;
  sim.steps = 50;
  (void)core::simulate(balancer, workload, sim);
  EXPECT_GE(balancer.probes_issued(), balancer.requests_routed());
  EXPECT_LE(balancer.probes_issued(), 2 * balancer.requests_routed());
}

TEST(Threshold, StillCleanOnEasyTraffic) {
  ThresholdBalancer balancer(base_config(), 2);
  workloads::FreshUniformWorkload workload(256);
  core::SimConfig sim;
  sim.steps = 100;
  const core::SimResult r = core::simulate(balancer, workload, sim);
  EXPECT_EQ(r.metrics.rejected(), 0u);
}

// ---------------------------------------------------------- heterogeneous
TEST(Heterogeneous, RejectsWrongRateVectorSize) {
  SingleQueueConfig config = base_config();
  config.per_server_rate.assign(3, 1);  // != servers
  EXPECT_THROW(GreedyBalancer{config}, std::invalid_argument);
}

TEST(Heterogeneous, ZeroRateClusterNeverCompletes) {
  SingleQueueConfig config = base_config();
  config.servers = 2;
  config.replication = 2;
  config.processing_rate = 2;
  config.queue_capacity = 4;
  config.per_server_rate = {0, 0};  // all servers dead
  GreedyBalancer balancer(config);
  core::Metrics metrics;
  const std::vector<core::ChunkId> batch = {1, 2};
  for (core::Time t = 0; t < 10; ++t) balancer.step(t, batch, metrics);
  EXPECT_EQ(metrics.submitted(), 20u);
  EXPECT_EQ(metrics.completed(), 0u);
  // Queues fill to capacity (2 x 4 = 8), everything else rejected.
  EXPECT_EQ(balancer.total_backlog(), 8u);
  EXPECT_EQ(metrics.rejected(), 12u);
}

TEST(Heterogeneous, SetServerRateValidatesAndTakesEffect) {
  SingleQueueConfig config = base_config();
  config.servers = 2;
  config.replication = 2;
  config.processing_rate = 2;
  config.queue_capacity = 4;
  GreedyBalancer balancer(config);
  EXPECT_THROW(balancer.set_server_rate(9, 1), std::out_of_range);

  // Kill both servers mid-run: completions stop from that step on.
  core::Metrics metrics;
  const std::vector<core::ChunkId> batch = {1, 2};
  balancer.step(0, batch, metrics);
  const std::uint64_t completed_before = metrics.completed();
  EXPECT_GT(completed_before, 0u);
  balancer.set_server_rate(0, 0);
  balancer.set_server_rate(1, 0);
  for (core::Time t = 1; t < 6; ++t) balancer.step(t, batch, metrics);
  EXPECT_EQ(metrics.completed(), completed_before);
  // Revive: completions resume.
  balancer.set_server_rate(0, 2);
  balancer.set_server_rate(1, 2);
  balancer.step(6, batch, metrics);
  EXPECT_GT(metrics.completed(), completed_before);
}

TEST(Heterogeneous, StragglersSlowButDoNotStall) {
  SingleQueueConfig config = base_config();
  config.processing_rate = 4;
  config.per_server_rate.assign(config.servers, 4);
  for (std::size_t s = 0; s < config.servers; s += 10) {
    config.per_server_rate[s] = 1;  // 10% stragglers at quarter speed
  }
  GreedyBalancer balancer(config);
  workloads::RepeatedSetWorkload workload(256, 1u << 20, 17);
  core::SimConfig sim;
  sim.steps = 150;
  const core::SimResult r = core::simulate(balancer, workload, sim);
  // Greedy routes around stragglers: still no rejections at this load.
  EXPECT_EQ(r.metrics.rejected(), 0u);
}

// ----------------------------------------------------------------- factory
TEST(FactoryExtensions, NewPoliciesConstructAndRun) {
  for (const std::string name : {"greedy-left", "threshold"}) {
    PolicyConfig config;
    config.servers = 128;
    config.processing_rate = 4;
    config.seed = 19;
    auto policy = make_policy(name, config);
    workloads::FreshUniformWorkload workload(128);
    core::SimConfig sim;
    sim.steps = 20;
    const core::SimResult r = core::simulate(*policy, workload, sim);
    EXPECT_EQ(r.metrics.rejected(), 0u) << name;
  }
}

TEST(FactoryExtensions, PolicyNamesContainsAll) {
  const auto& names = policy_names();
  for (const char* expected : {"greedy-left", "threshold", "batched-greedy",
                               "migrating-d1", "sticky"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_EQ(names.size(), 11u);
}

}  // namespace
}  // namespace rlb::policies
