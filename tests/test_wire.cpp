// Tests for the serving wire protocol (net/wire.hpp): frame encoding,
// payload decoding, and incremental stream reassembly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/wire.hpp"

namespace rlb::net {
namespace {

TEST(Wire, RequestRoundTrips) {
  const RequestMsg original{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  std::vector<std::uint8_t> wire;
  encode_request(original, wire);
  ASSERT_EQ(wire.size(), 4 + kRequestPayloadSize);
  // Little-endian length prefix, then the type byte.
  EXPECT_EQ(wire[0], kRequestPayloadSize);
  EXPECT_EQ(wire[1], 0u);
  EXPECT_EQ(wire[4], static_cast<std::uint8_t>(MsgType::kRequest));

  RequestMsg request;
  ResponseMsg response;
  const Decoded decoded =
      decode_payload(wire.data() + 4, kRequestPayloadSize, request, response);
  ASSERT_EQ(decoded, Decoded::kRequest);
  EXPECT_EQ(request.request_id, original.request_id);
  EXPECT_EQ(request.key, original.key);
}

TEST(Wire, ResponseRoundTrips) {
  ResponseMsg original;
  original.request_id = 77;
  original.status = Status::kReject;
  original.server = 0xdeadbeef;
  original.wait_steps = 12345;
  std::vector<std::uint8_t> wire;
  encode_response(original, wire);
  ASSERT_EQ(wire.size(), 4 + kResponsePayloadSize);

  RequestMsg request;
  ResponseMsg response;
  const Decoded decoded =
      decode_payload(wire.data() + 4, kResponsePayloadSize, request, response);
  ASSERT_EQ(decoded, Decoded::kResponse);
  EXPECT_EQ(response.request_id, 77u);
  EXPECT_EQ(response.status, Status::kReject);
  EXPECT_EQ(response.server, 0xdeadbeefu);
  EXPECT_EQ(response.wait_steps, 12345u);
}

TEST(Wire, DecodeRejectsBadPayloads) {
  RequestMsg request;
  ResponseMsg response;
  // Empty payload.
  EXPECT_EQ(decode_payload(nullptr, 0, request, response), Decoded::kMalformed);
  // Unknown type byte.
  std::vector<std::uint8_t> unknown(kRequestPayloadSize, 0);
  unknown[0] = 99;
  EXPECT_EQ(decode_payload(unknown.data(), unknown.size(), request, response),
            Decoded::kMalformed);
  // Right type, wrong size.
  std::vector<std::uint8_t> wire;
  encode_request(RequestMsg{1, 2}, wire);
  EXPECT_EQ(decode_payload(wire.data() + 4, kRequestPayloadSize - 1, request,
                           response),
            Decoded::kMalformed);
  EXPECT_EQ(decode_payload(wire.data() + 4, kRequestPayloadSize + 1, request,
                           response),
            Decoded::kMalformed);
}

TEST(Wire, DecoderReassemblesByteByByte) {
  std::vector<std::uint8_t> wire;
  for (std::uint64_t i = 0; i < 5; ++i) {
    encode_request(RequestMsg{i, i * 1000}, wire);
  }
  FrameDecoder decoder;
  std::vector<std::uint8_t> payload;
  std::uint64_t seen = 0;
  for (const std::uint8_t byte : wire) {
    ASSERT_TRUE(decoder.feed(&byte, 1));
    while (decoder.next(payload)) {
      RequestMsg request;
      ResponseMsg response;
      ASSERT_EQ(decode_payload(payload.data(), payload.size(), request,
                               response),
                Decoded::kRequest);
      EXPECT_EQ(request.request_id, seen);
      EXPECT_EQ(request.key, seen * 1000);
      ++seen;
    }
  }
  EXPECT_EQ(seen, 5u);
  EXPECT_EQ(decoder.buffered(), 0u);
  EXPECT_FALSE(decoder.error());
}

TEST(Wire, DecoderHandlesCoalescedFrames) {
  std::vector<std::uint8_t> wire;
  for (std::uint64_t i = 0; i < 100; ++i) {
    encode_response(ResponseMsg{i, Status::kOk, 0, 0}, wire);
  }
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.feed(wire.data(), wire.size()));
  std::vector<std::uint8_t> payload;
  std::size_t frames = 0;
  while (decoder.next(payload)) ++frames;
  EXPECT_EQ(frames, 100u);
}

TEST(Wire, ZeroLengthFramePoisons) {
  const std::uint8_t zeros[4] = {0, 0, 0, 0};
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.feed(zeros, 4));
  EXPECT_TRUE(decoder.error());
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(decoder.next(payload));
  // Poisoned decoders stay poisoned.
  std::vector<std::uint8_t> valid;
  encode_request(RequestMsg{1, 1}, valid);
  EXPECT_FALSE(decoder.feed(valid.data(), valid.size()));
}

TEST(Wire, OversizeFramePoisons) {
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::uint8_t prefix[4];
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<std::uint8_t>(huge >> (8 * i));
  }
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.feed(prefix, 4));
  EXPECT_TRUE(decoder.error());
}

TEST(Wire, PartialHeaderDoesNotPoison) {
  // A split length prefix must wait for its remaining bytes, not error.
  std::vector<std::uint8_t> wire;
  encode_request(RequestMsg{42, 43}, wire);
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.feed(wire.data(), 2));
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(decoder.next(payload));
  EXPECT_FALSE(decoder.error());
  ASSERT_TRUE(decoder.feed(wire.data() + 2, wire.size() - 2));
  EXPECT_TRUE(decoder.next(payload));
}

TEST(Wire, MidStreamPoisonDeliversEarlierFrames) {
  // Two valid frames followed by a zero-length header in one feed: both
  // valid frames must come out, then the decoder poisons and stays
  // poisoned for every later feed/next.
  std::vector<std::uint8_t> wire;
  encode_request(RequestMsg{1, 10}, wire);
  encode_request(RequestMsg{2, 20}, wire);
  wire.insert(wire.end(), {0, 0, 0, 0});
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.feed(wire.data(), wire.size()));
  std::vector<std::uint8_t> payload;
  RequestMsg request;
  ResponseMsg response;
  ASSERT_TRUE(decoder.next(payload));
  ASSERT_EQ(decode_payload(payload.data(), payload.size(), request, response),
            Decoded::kRequest);
  EXPECT_EQ(request.request_id, 1u);
  ASSERT_TRUE(decoder.next(payload));
  ASSERT_EQ(decode_payload(payload.data(), payload.size(), request, response),
            Decoded::kRequest);
  EXPECT_EQ(request.request_id, 2u);
  EXPECT_FALSE(decoder.next(payload));
  EXPECT_TRUE(decoder.error());
  EXPECT_EQ(decoder.buffered(), 0u);  // poisoned: nothing is reachable
  std::vector<std::uint8_t> valid;
  encode_request(RequestMsg{3, 30}, valid);
  EXPECT_FALSE(decoder.feed(valid.data(), valid.size()));
  EXPECT_FALSE(decoder.next(payload));
}

TEST(Wire, ResetReclaimsPoisonedDecoder) {
  const std::uint8_t zeros[4] = {0, 0, 0, 0};
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.feed(zeros, 4));
  ASSERT_TRUE(decoder.error());
  decoder.reset();
  EXPECT_FALSE(decoder.error());
  EXPECT_EQ(decoder.buffered(), 0u);
  std::vector<std::uint8_t> wire;
  encode_request(RequestMsg{7, 70}, wire);
  ASSERT_TRUE(decoder.feed(wire.data(), wire.size()));
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(decoder.next(payload));
  RequestMsg request;
  ResponseMsg response;
  ASSERT_EQ(decode_payload(payload.data(), payload.size(), request, response),
            Decoded::kRequest);
  EXPECT_EQ(request.request_id, 7u);
}

TEST(Wire, NextViewIsZeroCopy) {
  std::vector<std::uint8_t> wire;
  encode_request(RequestMsg{11, 12}, wire);
  encode_response(ResponseMsg{13, Status::kOk, 1, 2}, wire);
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.feed(wire.data(), wire.size()));
  FrameView view{};
  ASSERT_TRUE(decoder.next_view(view));
  ASSERT_EQ(view.size, kRequestPayloadSize);
  EXPECT_EQ(view.data[0], static_cast<std::uint8_t>(MsgType::kRequest));
  ASSERT_TRUE(decoder.next_view(view));
  ASSERT_EQ(view.size, kResponsePayloadSize);
  EXPECT_EQ(view.data[0], static_cast<std::uint8_t>(MsgType::kResponse));
  EXPECT_FALSE(decoder.next_view(view));
  EXPECT_FALSE(decoder.error());
}

TEST(Wire, TruncatedPayloadWaitsWithoutError) {
  // A complete header with only part of its payload must neither deliver
  // nor poison — the frame completes on the next feed.
  std::vector<std::uint8_t> wire;
  encode_request(RequestMsg{5, 50}, wire);
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.feed(wire.data(), wire.size() - 3));
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(decoder.next(payload));
  EXPECT_FALSE(decoder.error());
  EXPECT_EQ(decoder.buffered(), wire.size() - 3);
  ASSERT_TRUE(decoder.feed(wire.data() + wire.size() - 3, 3));
  EXPECT_TRUE(decoder.next(payload));
}

TEST(Wire, DecoderCompactionKeepsStreamIntact) {
  // Push enough traffic through to trigger the internal buffer compaction
  // and verify no frame is lost or reordered across it.
  FrameDecoder decoder;
  std::vector<std::uint8_t> wire;
  std::vector<std::uint8_t> payload;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  for (int round = 0; round < 200; ++round) {
    wire.clear();
    for (int i = 0; i < 50; ++i) {
      encode_request(RequestMsg{sent++, 0}, wire);
    }
    // Feed in odd-sized slices so frames straddle feed boundaries.
    std::size_t offset = 0;
    while (offset < wire.size()) {
      const std::size_t slice = std::min<std::size_t>(37, wire.size() - offset);
      ASSERT_TRUE(decoder.feed(wire.data() + offset, slice));
      offset += slice;
      while (decoder.next(payload)) {
        RequestMsg request;
        ResponseMsg response;
        ASSERT_EQ(decode_payload(payload.data(), payload.size(), request,
                                 response),
                  Decoded::kRequest);
        ASSERT_EQ(request.request_id, received);
        ++received;
      }
    }
  }
  EXPECT_EQ(received, sent);
  EXPECT_EQ(decoder.buffered(), 0u);
}

}  // namespace
}  // namespace rlb::net
