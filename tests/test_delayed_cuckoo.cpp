// Unit tests for delayed cuckoo routing (policies/delayed_cuckoo.hpp).
#include "policies/delayed_cuckoo.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/simulator.hpp"
#include "workloads/fresh_uniform.hpp"
#include "workloads/mixed.hpp"
#include "workloads/repeated_set.hpp"

namespace rlb::policies {
namespace {

DelayedCuckooConfig small_config() {
  DelayedCuckooConfig config;
  config.servers = 128;
  config.processing_rate = 16;
  config.seed = 21;
  return config;
}

TEST(DelayedCuckoo, RejectsBadProcessingRate) {
  DelayedCuckooConfig config = small_config();
  config.processing_rate = 6;  // not a multiple of 4
  EXPECT_THROW(DelayedCuckooBalancer{config}, std::invalid_argument);
  config.processing_rate = 0;
  EXPECT_THROW(DelayedCuckooBalancer{config}, std::invalid_argument);
}

TEST(DelayedCuckoo, RejectsUndrainableConfiguration) {
  DelayedCuckooConfig config = small_config();
  config.processing_rate = 4;   // drains 1 per queue per step
  config.phase_length = 2;
  config.queue_capacity = 100;  // (g/4)·L = 2 < 100
  EXPECT_THROW(DelayedCuckooBalancer{config}, std::invalid_argument);
}

TEST(DelayedCuckoo, DerivedParameters) {
  DelayedCuckooBalancer balancer(small_config());
  // m = 128: log2 m = 7, ceil(log2 7) = 3.
  EXPECT_EQ(balancer.phase_length(), 3u);
  EXPECT_EQ(balancer.queue_capacity(), 12u);  // 4 * phase_length
  EXPECT_EQ(balancer.processing_rate(), 16u);
  EXPECT_EQ(balancer.name(), "delayed-cuckoo");
  EXPECT_EQ(balancer.server_count(), 128u);
}

TEST(DelayedCuckoo, FirstStepUsesQQueuesOnly) {
  DelayedCuckooBalancer balancer(small_config());
  core::Metrics metrics;
  std::vector<core::ChunkId> batch;
  for (core::ChunkId x = 0; x < 128; ++x) batch.push_back(x);
  balancer.step(0, batch, metrics);
  // No chunk has appeared before, so no P-queue arrivals.
  const auto& p_arrivals = balancer.p_arrivals_this_step();
  EXPECT_TRUE(std::all_of(p_arrivals.begin(), p_arrivals.end(),
                          [](std::uint32_t v) { return v == 0; }));
  EXPECT_EQ(metrics.rejected(), 0u);
}

TEST(DelayedCuckoo, ReappearancesRouteThroughPQueues) {
  DelayedCuckooBalancer balancer(small_config());
  core::Metrics metrics;
  std::vector<core::ChunkId> batch;
  for (core::ChunkId x = 0; x < 128; ++x) batch.push_back(x);
  balancer.step(0, batch, metrics);
  balancer.step(1, batch, metrics);  // same chunks: all reappearances
  const auto& p_arrivals = balancer.p_arrivals_this_step();
  std::uint64_t total_p = 0;
  for (const std::uint32_t v : p_arrivals) total_p += v;
  EXPECT_EQ(total_p, 128u);  // every request went via its T_0 assignment
}

TEST(DelayedCuckoo, PArrivalsPerServerAreConstantBounded) {
  // Lemma 4.2 ⇒ per-step P arrivals per server <= 3 + stash (7 with the
  // default stash of 4) — deterministically, given assignment success.
  DelayedCuckooBalancer balancer(small_config());
  core::Metrics metrics;
  std::vector<core::ChunkId> batch;
  for (core::ChunkId x = 0; x < 128; ++x) batch.push_back(x);
  for (core::Time t = 0; t < 20; ++t) {
    balancer.step(t, batch, metrics);
    const auto& p_arrivals = balancer.p_arrivals_this_step();
    for (const std::uint32_t v : p_arrivals) {
      EXPECT_LE(v, 7u) << "step " << t;
    }
  }
  EXPECT_EQ(balancer.assignment_failures(), 0u);
}

TEST(DelayedCuckoo, RepeatedSetProducesNoRejections) {
  DelayedCuckooBalancer balancer(small_config());
  workloads::RepeatedSetWorkload workload(128, 1u << 20, 23);
  core::SimConfig sim;
  sim.steps = 200;
  const core::SimResult result = core::simulate(balancer, workload, sim);
  EXPECT_EQ(result.metrics.rejected(), 0u);
  EXPECT_LT(result.metrics.average_latency(), 2.0);
  // Max latency bounded by O(log log m): with q = 12 per queue and 4
  // queues, waits stay far below greedy's log-m scale.
  EXPECT_LE(result.metrics.max_latency(), 12u);
}

TEST(DelayedCuckoo, FreshWorkloadAlsoClean) {
  DelayedCuckooBalancer balancer(small_config());
  workloads::FreshUniformWorkload workload(128);
  core::SimConfig sim;
  sim.steps = 100;
  const core::SimResult result = core::simulate(balancer, workload, sim);
  EXPECT_EQ(result.metrics.rejected(), 0u);
}

TEST(DelayedCuckoo, MixedWorkloadClean) {
  DelayedCuckooBalancer balancer(small_config());
  workloads::MixedWorkload workload(128, 0.5, 29);
  core::SimConfig sim;
  sim.steps = 150;
  const core::SimResult result = core::simulate(balancer, workload, sim);
  EXPECT_EQ(result.metrics.rejected(), 0u);
}

TEST(DelayedCuckoo, ConservationInvariant) {
  DelayedCuckooBalancer balancer(small_config());
  workloads::RepeatedSetWorkload workload(128, 1u << 16, 31);
  core::Metrics metrics;
  std::vector<core::ChunkId> batch;
  for (core::Time t = 0; t < 37; ++t) {
    workload.fill_step(t, batch);
    balancer.step(t, batch, metrics);
    EXPECT_EQ(metrics.submitted(),
              metrics.completed() + metrics.rejected() +
                  balancer.total_backlog())
        << "step " << t;
  }
}

TEST(DelayedCuckoo, FlushEmptiesAllFourQueues) {
  DelayedCuckooConfig config = small_config();
  config.processing_rate = 4;  // slow drain so backlog accumulates
  config.phase_length = 8;
  config.queue_capacity = 8;
  DelayedCuckooBalancer balancer(config);
  core::Metrics metrics;
  std::vector<core::ChunkId> batch;
  for (core::ChunkId x = 0; x < 128; ++x) batch.push_back(x);
  for (core::Time t = 0; t < 10; ++t) balancer.step(t, batch, metrics);
  const std::uint64_t queued = balancer.total_backlog();
  balancer.flush(metrics);
  EXPECT_EQ(balancer.total_backlog(), 0u);
  EXPECT_GE(metrics.dropped_from_queue(), queued);
}

TEST(DelayedCuckoo, PhaseBoundaryResetsReappearanceTracking) {
  DelayedCuckooConfig config = small_config();
  config.phase_length = 2;
  config.queue_capacity = 8;
  DelayedCuckooBalancer balancer(config);
  core::Metrics metrics;
  std::vector<core::ChunkId> batch;
  for (core::ChunkId x = 0; x < 64; ++x) batch.push_back(x);

  balancer.step(0, batch, metrics);  // phase 0, step 0: all fresh
  balancer.step(1, batch, metrics);  // phase 0, step 1: all reappear
  {
    std::uint64_t total_p = 0;
    for (const std::uint32_t v : balancer.p_arrivals_this_step()) {
      total_p += v;
    }
    EXPECT_EQ(total_p, 64u);
  }
  balancer.step(2, batch, metrics);  // phase 1, step 0: fresh again
  {
    std::uint64_t total_p = 0;
    for (const std::uint32_t v : balancer.p_arrivals_this_step()) {
      total_p += v;
    }
    EXPECT_EQ(total_p, 0u);
  }
}

TEST(DelayedCuckoo, AssignmentFailurePathRejectsReappearances) {
  // With stash 0 at small m, Lemma 4.2 failures occur at a visible rate;
  // the paper specifies that reappearances consulting a failed T_t are
  // rejected.  Scan seeds deterministically until a failing configuration
  // is found, then verify the consequences.
  // The same set repeats, so T_t is recomputed identically each step: a
  // seed either fails at step 0 or never.  Group load is always <= 1/3,
  // putting the stash-0 failure probability at a small multiple of 1/m —
  // scan a few thousand seeds with 3-step runs (cheap at m = 24).
  for (std::uint64_t seed = 1; seed <= 4000; ++seed) {
    DelayedCuckooConfig config;
    config.servers = 24;
    config.processing_rate = 16;
    config.phase_length = 4;
    config.queue_capacity = 16;
    config.stash_per_group = 0;
    config.seed = seed;
    DelayedCuckooBalancer balancer(config);
    core::Metrics metrics;
    std::vector<core::ChunkId> batch;
    for (core::ChunkId x = 0; x < 24; ++x) batch.push_back(x);
    for (core::Time t = 0; t < 3; ++t) balancer.step(t, batch, metrics);
    if (balancer.assignment_failures() == 0) continue;
    // Found one: every rejection in this run is the kFailed path (queues
    // are far from full at g = 16, q = 16).
    EXPECT_GT(metrics.rejected(), 0u) << "seed " << seed;
    // And conservation still holds despite the failure path.
    EXPECT_EQ(metrics.submitted(),
              metrics.completed() + metrics.rejected() +
                  balancer.total_backlog());
    return;
  }
  GTEST_SKIP() << "no assignment failure in 4000 seeds (stash 0, m = 24) — "
                  "environment RNG differs";
}

TEST(DelayedCuckoo, DeterministicReplay) {
  auto run = [] {
    DelayedCuckooBalancer balancer(small_config());
    workloads::RepeatedSetWorkload workload(128, 4096, 33);
    core::SimConfig sim;
    sim.steps = 60;
    return core::simulate(balancer, workload, sim);
  };
  const core::SimResult a = run();
  const core::SimResult b = run();
  EXPECT_EQ(a.metrics.completed(), b.metrics.completed());
  EXPECT_EQ(a.max_backlog, b.max_backlog);
  EXPECT_DOUBLE_EQ(a.metrics.average_latency(), b.metrics.average_latency());
}

}  // namespace
}  // namespace rlb::policies
