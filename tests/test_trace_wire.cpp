// Unit tests for the distributed-tracing plane: the REQUEST trace-context
// extension (v1 frame compatibility both ways), the TRACE / TRACE_RESP
// codec (round trip, truncation at every prefix, poison payloads, version
// mismatch), the SpanRecorder keep policy and drain semantics, and the
// span JSONL round trip rlb_trace consumes.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "net/trace_wire.hpp"
#include "net/wire.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace rlb::net {
namespace {

obs::Span make_span(std::uint64_t n) {
  obs::Span span;
  span.trace_id = 0x1000 + n;
  span.span_id = 0x2000 + n;
  span.parent_span_id = 0x3000 + n;
  span.start_ns = 1'000'000 * n;
  span.end_ns = 1'000'000 * n + 5'000;
  span.queue_depth = n;
  span.name = (n % 2 == 0) ? "engine.request" : "router.hop";
  span.shard = static_cast<std::uint32_t>(n % 8);
  span.tid = static_cast<std::uint32_t>(n % 4);
  span.flags = (n % 3 == 0) ? obs::kSpanSampled : 0;
  span.cause = static_cast<std::uint8_t>(n % 5);
  return span;
}

TraceSnapshot make_full_trace_snapshot() {
  TraceSnapshot snapshot;
  snapshot.role = NodeRole::kRouter;
  snapshot.backend_id = 3;
  snapshot.steady_ns = 55'123'456'789ULL;
  snapshot.wall_ns = 1'700'000'000'123'456'789ULL;
  snapshot.dropped = 17;
  snapshot.remaining = 42;
  for (std::uint64_t n = 1; n <= 5; ++n) snapshot.spans.push_back(make_span(n));
  return snapshot;
}

TEST(TraceCodec, RoundTripPreservesEveryField) {
  const TraceSnapshot original = make_full_trace_snapshot();
  std::vector<std::uint8_t> payload;
  encode_trace_payload(original, payload);
  ASSERT_FALSE(payload.empty());
  EXPECT_EQ(payload[0], static_cast<std::uint8_t>(MsgType::kTraceResponse));

  TraceSnapshot decoded;
  ASSERT_TRUE(decode_trace_payload(payload.data(), payload.size(), decoded));
  EXPECT_EQ(decoded.version, kTraceVersion);
  EXPECT_EQ(decoded.role, original.role);
  EXPECT_EQ(decoded.backend_id, original.backend_id);
  EXPECT_EQ(decoded.steady_ns, original.steady_ns);
  EXPECT_EQ(decoded.wall_ns, original.wall_ns);
  EXPECT_EQ(decoded.dropped, original.dropped);
  EXPECT_EQ(decoded.remaining, original.remaining);
  ASSERT_EQ(decoded.spans.size(), original.spans.size());
  for (std::size_t i = 0; i < original.spans.size(); ++i) {
    const obs::Span& a = original.spans[i];
    const obs::Span& b = decoded.spans[i];
    EXPECT_EQ(b.trace_id, a.trace_id);
    EXPECT_EQ(b.span_id, a.span_id);
    EXPECT_EQ(b.parent_span_id, a.parent_span_id);
    EXPECT_EQ(b.start_ns, a.start_ns);
    EXPECT_EQ(b.end_ns, a.end_ns);
    EXPECT_EQ(b.queue_depth, a.queue_depth);
    EXPECT_STREQ(b.name, a.name);
    EXPECT_EQ(b.shard, a.shard);
    EXPECT_EQ(b.tid, a.tid);
    EXPECT_EQ(b.flags, a.flags);
    EXPECT_EQ(b.cause, a.cause);
  }
}

TEST(TraceCodec, EveryTruncationIsRejected) {
  std::vector<std::uint8_t> payload;
  encode_trace_payload(make_full_trace_snapshot(), payload);
  TraceSnapshot decoded;
  for (std::size_t size = 0; size < payload.size(); ++size) {
    EXPECT_FALSE(decode_trace_payload(payload.data(), size, decoded))
        << "prefix of " << size << " bytes decoded";
  }
}

TEST(TraceCodec, TrailingGarbageIsRejected) {
  std::vector<std::uint8_t> payload;
  encode_trace_payload(make_full_trace_snapshot(), payload);
  payload.push_back(0xAB);
  TraceSnapshot decoded;
  EXPECT_FALSE(decode_trace_payload(payload.data(), payload.size(), decoded));
}

TEST(TraceCodec, WrongVersionOrTypeIsRejected) {
  std::vector<std::uint8_t> payload;
  encode_trace_payload(make_full_trace_snapshot(), payload);
  TraceSnapshot decoded;

  std::vector<std::uint8_t> bad_version = payload;
  bad_version[1] = static_cast<std::uint8_t>(kTraceVersion + 1);
  EXPECT_FALSE(
      decode_trace_payload(bad_version.data(), bad_version.size(), decoded));

  std::vector<std::uint8_t> bad_type = payload;
  bad_type[0] = static_cast<std::uint8_t>(MsgType::kStatsResponse);
  EXPECT_FALSE(decode_trace_payload(bad_type.data(), bad_type.size(), decoded));
}

TEST(TraceCodec, PoisonSpanCountIsRejected) {
  // A snapshot body claiming 2^31 spans must fail cleanly instead of
  // allocating: truncate right after a forged giant count.
  std::vector<std::uint8_t> payload;
  TraceSnapshot empty;
  encode_trace_payload(empty, payload);
  // Layout tail is the u32 span count; forge it.
  ASSERT_GE(payload.size(), 4u);
  payload[payload.size() - 4] = 0xFF;
  payload[payload.size() - 3] = 0xFF;
  payload[payload.size() - 2] = 0xFF;
  payload[payload.size() - 1] = 0x7F;
  TraceSnapshot decoded;
  EXPECT_FALSE(decode_trace_payload(payload.data(), payload.size(), decoded));
}

TEST(TraceCodec, FrameClassification) {
  // TRACE request frames classify as kTrace and fill the flags.
  std::vector<std::uint8_t> frame;
  TraceRequestMsg trace_request;
  trace_request.flags = 0xA5A5;
  encode_trace_request(trace_request, frame);
  ASSERT_EQ(frame.size(), 4 + kTracePayloadSize);
  RequestMsg request;
  ResponseMsg response;
  StatsRequestMsg stats;
  TraceRequestMsg decoded_trace;
  EXPECT_EQ(decode_payload(frame.data() + 4, frame.size() - 4, request,
                           response, stats, decoded_trace),
            Decoded::kTrace);
  EXPECT_EQ(decoded_trace.flags, trace_request.flags);

  // TRACE_RESP frames classify (body parsed by decode_trace_payload).
  std::vector<std::uint8_t> payload;
  encode_trace_payload(make_full_trace_snapshot(), payload);
  std::vector<std::uint8_t> response_frame;
  ASSERT_TRUE(encode_trace_response_frame(payload, response_frame));
  EXPECT_EQ(decode_payload(response_frame.data() + 4,
                           response_frame.size() - 4, request, response, stats,
                           decoded_trace),
            Decoded::kTraceResponse);

  // The 3-arg (STATS-only) form still classifies TRACE without filling.
  EXPECT_EQ(decode_payload(frame.data() + 4, frame.size() - 4, request,
                           response, stats),
            Decoded::kTrace);

  // Oversize TRACE_RESP payloads are refused at framing time.
  std::vector<std::uint8_t> oversize(
      kMaxFramePayload + 1, static_cast<std::uint8_t>(MsgType::kTraceResponse));
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(encode_trace_response_frame(oversize, out));
}

TEST(RequestTraceExtension, PlainRequestStaysV1Sized) {
  // No context -> the classic 17-byte payload, so old peers parse it.
  RequestMsg msg;
  msg.request_id = 77;
  msg.key = 0xDEADBEEF;
  std::vector<std::uint8_t> frame;
  encode_request(msg, frame);
  ASSERT_EQ(frame.size(), 4 + kRequestPayloadSize);

  RequestMsg decoded;
  ResponseMsg response;
  EXPECT_EQ(
      decode_payload(frame.data() + 4, frame.size() - 4, decoded, response),
      Decoded::kRequest);
  EXPECT_EQ(decoded.request_id, msg.request_id);
  EXPECT_EQ(decoded.key, msg.key);
  EXPECT_FALSE(decoded.trace.valid());
}

TEST(RequestTraceExtension, TracedRequestRoundTrips) {
  RequestMsg msg;
  msg.request_id = 99;
  msg.key = 1234;
  msg.trace.trace_id = 0xABCDEF0123456789ULL;
  msg.trace.parent_span_id = 0x1122334455667788ULL;
  msg.trace.flags = obs::kSpanSampled;
  std::vector<std::uint8_t> frame;
  encode_request(msg, frame);
  ASSERT_EQ(frame.size(), 4 + kRequestTracedPayloadSize);

  RequestMsg decoded;
  ResponseMsg response;
  EXPECT_EQ(
      decode_payload(frame.data() + 4, frame.size() - 4, decoded, response),
      Decoded::kRequest);
  EXPECT_EQ(decoded.request_id, msg.request_id);
  EXPECT_EQ(decoded.key, msg.key);
  EXPECT_EQ(decoded.trace.trace_id, msg.trace.trace_id);
  EXPECT_EQ(decoded.trace.parent_span_id, msg.trace.parent_span_id);
  EXPECT_EQ(decoded.trace.flags, msg.trace.flags);
  EXPECT_TRUE(decoded.trace.sampled());

  // A REQUEST with a half-written extension is malformed, not v1.
  RequestMsg scratch;
  EXPECT_EQ(decode_payload(frame.data() + 4, kRequestPayloadSize + 1, scratch,
                           response),
            Decoded::kMalformed);
}

#if !defined(RLB_OBS_DISABLED)

class SpanRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SpanRecorder::instance().clear();
    obs::SpanRecorder::instance().set_slow_budget_ns(0);
    obs::set_span_recording(true);
  }
  void TearDown() override {
    obs::SpanRecorder::instance().clear();
    obs::SpanRecorder::instance().set_slow_budget_ns(0);
    obs::set_span_recording(false);
  }
};

TEST_F(SpanRecorderTest, KeepPolicy) {
  obs::SpanRecorder& recorder = obs::SpanRecorder::instance();

  obs::Span sampled = make_span(1);
  sampled.flags = obs::kSpanSampled;
  sampled.cause = 0;
  recorder.record(sampled);

  obs::Span failed = make_span(2);
  failed.flags = 0;
  failed.cause = static_cast<std::uint8_t>(Status::kReject);
  recorder.record(failed);

  obs::Span fast = make_span(3);
  fast.flags = 0;
  fast.cause = 0;
  recorder.record(fast);  // unsampled, served OK, no slow budget -> dropped

  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.filtered(), 1u);

  // With a slow budget, an unsampled OK span over budget is kept.
  recorder.set_slow_budget_ns(1'000);
  obs::Span slow = make_span(4);
  slow.flags = 0;
  slow.cause = 0;
  slow.start_ns = 0;
  slow.end_ns = 2'000;
  recorder.record(slow);
  EXPECT_EQ(recorder.size(), 3u);

  obs::Span under_budget = make_span(5);
  under_budget.flags = 0;
  under_budget.cause = 0;
  under_budget.start_ns = 0;
  under_budget.end_ns = 500;
  recorder.record(under_budget);
  EXPECT_EQ(recorder.size(), 3u);
  EXPECT_EQ(recorder.filtered(), 2u);
}

TEST_F(SpanRecorderTest, DrainRemovesAndChunks) {
  obs::SpanRecorder& recorder = obs::SpanRecorder::instance();
  for (std::uint64_t n = 0; n < 10; ++n) {
    obs::Span span = make_span(n);
    span.flags = obs::kSpanSampled;
    recorder.record(span);
  }
  ASSERT_EQ(recorder.size(), 10u);
  const std::vector<obs::Span> first = recorder.drain(4);
  EXPECT_EQ(first.size(), 4u);
  EXPECT_EQ(recorder.size(), 6u);
  const std::vector<obs::Span> rest = recorder.drain(100);
  EXPECT_EQ(rest.size(), 6u);
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_TRUE(recorder.drain(100).empty());
}

TEST_F(SpanRecorderTest, MakeTraceSnapshotDrainsWithAnchor) {
  obs::SpanRecorder& recorder = obs::SpanRecorder::instance();
  for (std::uint64_t n = 0; n < kMaxSpansPerTraceResponse + 10; ++n) {
    obs::Span span = make_span(n);
    span.flags = obs::kSpanSampled;
    span.cause = 0;
    recorder.record(span);
  }
  const TraceSnapshot first = make_trace_snapshot(NodeRole::kBackend, 9);
  EXPECT_EQ(first.role, NodeRole::kBackend);
  EXPECT_EQ(first.backend_id, 9u);
  EXPECT_EQ(first.spans.size(), kMaxSpansPerTraceResponse);
  EXPECT_EQ(first.remaining, 10u);
  EXPECT_GT(first.wall_ns, 0u);

  const TraceSnapshot second = make_trace_snapshot(NodeRole::kBackend, 9);
  EXPECT_EQ(second.spans.size(), 10u);
  EXPECT_EQ(second.remaining, 0u);

  // A full chunk must still fit one wire frame.
  std::vector<std::uint8_t> payload;
  encode_trace_payload(first, payload);
  EXPECT_LE(payload.size(), kMaxFramePayload);
  std::vector<std::uint8_t> frame;
  EXPECT_TRUE(encode_trace_response_frame(payload, frame));
}

TEST_F(SpanRecorderTest, RecordingSwitchGates) {
  obs::set_span_recording(false);
  EXPECT_FALSE(obs::span_recording_enabled());
  obs::set_span_recording(true);
  EXPECT_TRUE(obs::span_recording_enabled());
}

#endif  // !defined(RLB_OBS_DISABLED)

TEST(SpanJsonl, RoundTripWithAnchor) {
  std::vector<obs::Span> spans;
  for (std::uint64_t n = 1; n <= 4; ++n) spans.push_back(make_span(n));
  std::stringstream buffer;
  obs::write_spans_jsonl(spans, buffer, 123'456'789, 987'654'321);

  std::uint64_t anchor_steady = 0;
  std::uint64_t anchor_wall = 0;
  const std::vector<obs::Span> parsed =
      obs::parse_spans_jsonl(buffer, anchor_steady, anchor_wall);
  EXPECT_EQ(anchor_steady, 123'456'789u);
  EXPECT_EQ(anchor_wall, 987'654'321u);
  ASSERT_EQ(parsed.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(parsed[i].trace_id, spans[i].trace_id);
    EXPECT_EQ(parsed[i].span_id, spans[i].span_id);
    EXPECT_EQ(parsed[i].parent_span_id, spans[i].parent_span_id);
    EXPECT_EQ(parsed[i].start_ns, spans[i].start_ns);
    EXPECT_EQ(parsed[i].end_ns, spans[i].end_ns);
    EXPECT_EQ(parsed[i].queue_depth, spans[i].queue_depth);
    EXPECT_STREQ(parsed[i].name, spans[i].name);
    EXPECT_EQ(parsed[i].shard, spans[i].shard);
    EXPECT_EQ(parsed[i].tid, spans[i].tid);
    EXPECT_EQ(parsed[i].flags, spans[i].flags);
    EXPECT_EQ(parsed[i].cause, spans[i].cause);
  }
}

TEST(SpanJsonl, GarbageLinesAreSkipped) {
  std::stringstream buffer;
  buffer << "not json at all\n"
         << "{\"trace_id\":1}\n"  // missing required fields
         << "{\"trace_id\":7,\"span_id\":8,\"start_ns\":9,\"name\":\"x\","
            "\"end_ns\":10}\n";
  std::uint64_t anchor_steady = 0;
  std::uint64_t anchor_wall = 0;
  const std::vector<obs::Span> parsed =
      obs::parse_spans_jsonl(buffer, anchor_steady, anchor_wall);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].trace_id, 7u);
  EXPECT_STREQ(parsed[0].name, "x");
}

TEST(TraceContext, ValidityAndIds) {
  obs::TraceContext none;
  EXPECT_FALSE(none.valid());
  EXPECT_FALSE(none.sampled());

  obs::TraceContext ctx;
  ctx.trace_id = obs::next_span_id();
  ctx.flags = obs::kSpanSampled;
  EXPECT_TRUE(ctx.valid());
  EXPECT_TRUE(ctx.sampled());

  // next_span_id never returns 0 and does not repeat over a small window.
  std::uint64_t previous = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = obs::next_span_id();
    EXPECT_NE(id, 0u);
    EXPECT_NE(id, previous);
    previous = id;
  }
}

}  // namespace
}  // namespace rlb::net
