// Kill-and-resume tests for net::Client auto-reconnect against a live
// NetServer: a client armed with enable_reconnect() must survive the
// server being stopped and restarted on the same port, re-dial under the
// bounded-backoff policy, and deliver buffered frames on the new
// connection.  Also covers the failure side: with no server to come back
// to, flush() must throw after the attempt budget — never hang.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"

namespace rlb {
namespace {

/// Minimal echo backend: every REQUEST is answered immediately with kOk
/// and the key's low bits echoed in `server`, straight from the event
/// loop.  No engine — these tests exercise only the transport.
class EchoServer {
 public:
  explicit EchoServer(std::uint16_t port) {
    net::ServerConfig config;
    config.port = port;
    server_ = std::make_unique<net::NetServer>(
        config, [this](std::uint64_t token, const net::RequestMsg& request) {
          net::ResponseMsg msg;
          msg.request_id = request.request_id;
          msg.status = net::Status::kOk;
          msg.server = static_cast<std::uint32_t>(request.key);
          server_->send_response(token, msg);
        });
    server_->start();
  }

  ~EchoServer() {
    if (server_) server_->stop();
  }

  std::uint16_t port() const { return server_->port(); }

 private:
  std::unique_ptr<net::NetServer> server_;
};

/// Restarting on a fixed port can transiently lose the bind race against
/// the kernel reclaiming the old listener; retry briefly.
std::unique_ptr<EchoServer> start_on_port(std::uint16_t port) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    try {
      return std::make_unique<EchoServer>(port);
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  return std::make_unique<EchoServer>(port);  // last try: let it throw
}

TEST(ClientReconnect, EofThenFlushRedialsAndDeliversBufferedFrame) {
  auto server = std::make_unique<EchoServer>(/*port=*/0);
  const std::uint16_t port = server->port();

  net::Client client;
  client.connect("127.0.0.1", port);
  net::ReconnectPolicy policy;
  policy.max_attempts = 20;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 50;
  client.enable_reconnect(policy);
  client.set_recv_timeout_ms(200);

  // Round trip on the first connection.
  client.send_request(1, 0xAB);
  client.flush();
  net::ResponseMsg response;
  ASSERT_EQ(client.try_read_response(response), net::ReadOutcome::kFrame);
  EXPECT_EQ(response.request_id, 1u);
  EXPECT_EQ(response.server, 0xABu);

  // Kill the server; the read side must surface EOF (possibly after a few
  // timeout ticks while the FIN is in flight).
  server.reset();
  net::ReadOutcome outcome = net::ReadOutcome::kTimeout;
  for (int i = 0; i < 50 && outcome == net::ReadOutcome::kTimeout; ++i) {
    outcome = client.try_read_response(response);
  }
  ASSERT_EQ(outcome, net::ReadOutcome::kEof);
  EXPECT_FALSE(client.connected());

  // Resurrect the endpoint, then flush a frame buffered while down: the
  // client must re-dial and deliver it on the new connection.
  server = start_on_port(port);
  client.send_request(2, 0xCD);
  client.flush();
  EXPECT_TRUE(client.connected());
  EXPECT_GE(client.reconnects(), 1u);

  outcome = net::ReadOutcome::kTimeout;
  for (int i = 0; i < 50 && outcome == net::ReadOutcome::kTimeout; ++i) {
    outcome = client.try_read_response(response);
  }
  ASSERT_EQ(outcome, net::ReadOutcome::kFrame);
  EXPECT_EQ(response.request_id, 2u);
  EXPECT_EQ(response.server, 0xCDu);
}

TEST(ClientReconnect, SurvivesKillAndRestartMidStream) {
  auto server = std::make_unique<EchoServer>(/*port=*/0);
  const std::uint16_t port = server->port();

  net::Client client;
  client.connect("127.0.0.1", port);
  net::ReconnectPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 50;
  client.enable_reconnect(policy);
  client.set_recv_timeout_ms(50);

  // Phase 1: traffic flows.
  net::ResponseMsg response;
  for (std::uint64_t id = 1; id <= 10; ++id) {
    client.send_request(id, id);
    client.flush();
    ASSERT_EQ(client.try_read_response(response), net::ReadOutcome::kFrame);
    ASSERT_EQ(response.request_id, id);
  }

  // Phase 2: restart the server, then drive the client like a caller that
  // resends on loss — send, wait briefly, retry with a fresh id.  The
  // first write after the kill may land in the dead socket's buffer (its
  // response is simply lost); a later attempt must get through.
  server.reset();
  server = start_on_port(port);

  bool resumed = false;
  for (std::uint64_t id = 100; id < 140 && !resumed; ++id) {
    try {
      client.send_request(id, id);
      client.flush();
    } catch (const std::exception&) {
      continue;  // reconnect budget spent this round; next send retries
    }
    const net::ReadOutcome outcome = client.try_read_response(response);
    if (outcome == net::ReadOutcome::kFrame) {
      EXPECT_GE(response.request_id, 100u);
      resumed = true;
    }
    // kTimeout / kEof: the next loop iteration resends.
  }
  EXPECT_TRUE(resumed) << "client never resumed after server restart";
  EXPECT_GE(client.reconnects(), 1u);
}

TEST(ClientReconnect, BoundedAttemptsThenThrowWhenServerStaysDown) {
  auto server = std::make_unique<EchoServer>(/*port=*/0);
  net::Client client;
  client.connect("127.0.0.1", server->port());
  net::ReconnectPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 2;
  client.enable_reconnect(policy);
  client.set_recv_timeout_ms(50);
  server.reset();  // nobody is coming back

  // The first flush may still succeed into the dead socket's buffer, but
  // within a few send attempts the client must give up with an exception
  // rather than hang or spin forever.
  bool threw = false;
  net::ResponseMsg response;
  for (int i = 0; i < 10 && !threw; ++i) {
    try {
      client.send_request(static_cast<std::uint64_t>(i) + 1, 7);
      client.flush();
      (void)client.try_read_response(response);
    } catch (const std::exception&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
  EXPECT_FALSE(client.connected());
}

TEST(ClientReconnect, DisabledReconnectStaysDead) {
  auto server = std::make_unique<EchoServer>(/*port=*/0);
  const std::uint16_t port = server->port();
  net::Client client;
  client.connect("127.0.0.1", port);
  client.set_recv_timeout_ms(50);
  server.reset();
  server = start_on_port(port);

  // Without enable_reconnect(), EOF is final: no auto re-dial, flush on a
  // closed socket fails.
  net::ResponseMsg response;
  net::ReadOutcome outcome = net::ReadOutcome::kTimeout;
  for (int i = 0; i < 50 && outcome == net::ReadOutcome::kTimeout; ++i) {
    outcome = client.try_read_response(response);
  }
  ASSERT_EQ(outcome, net::ReadOutcome::kEof);
  bool threw = false;
  try {
    client.send_request(1, 1);
    client.flush();
  } catch (const std::exception&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(client.reconnects(), 0u);
}

}  // namespace
}  // namespace rlb
