// Unit tests for versioned placement epochs (core/placement_epoch.hpp):
// the PlacementDelta wire codec, transactional apply semantics, overlay
// composition across epochs, and lock-free reads racing a writer.
#include "core/placement_epoch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace rlb::core {
namespace {

/// Build the one-remap delta advancing `placement` by one epoch: move
/// `chunk`'s replica off its first current choice onto the lowest server
/// id outside its choice set.
PlacementDelta next_delta(const EpochedPlacement& placement, ChunkId chunk) {
  const ChoiceList cl = placement.choices(chunk);
  ChunkRemap remap;
  remap.chunk = chunk;
  remap.from = cl[0];
  for (ServerId s = 0;; ++s) {
    if (!cl.contains(s)) {
      remap.to = s;
      break;
    }
  }
  PlacementDelta delta;
  delta.epoch = placement.epoch() + 1;
  delta.remaps.push_back(remap);
  return delta;
}

TEST(PlacementDeltaCodec, RoundTripsExactly) {
  PlacementDelta delta;
  delta.epoch = 7;
  delta.remaps.push_back({42, 3, 9});
  delta.remaps.push_back({0xFFFFFFFFFFFFull, 0, 0xFFFFFFFFu});

  std::vector<std::uint8_t> wire;
  encode_placement_delta(delta, wire);
  EXPECT_EQ(wire.size(), 12u + 2 * 16u);

  PlacementDelta decoded;
  ASSERT_TRUE(decode_placement_delta(wire.data(), wire.size(), decoded));
  EXPECT_EQ(decoded.epoch, delta.epoch);
  ASSERT_EQ(decoded.remaps.size(), delta.remaps.size());
  EXPECT_EQ(decoded.remaps[0], delta.remaps[0]);
  EXPECT_EQ(decoded.remaps[1], delta.remaps[1]);
}

TEST(PlacementDeltaCodec, EmptyDeltaRoundTrips) {
  PlacementDelta delta;
  delta.epoch = 1;
  std::vector<std::uint8_t> wire;
  encode_placement_delta(delta, wire);
  PlacementDelta decoded;
  ASSERT_TRUE(decode_placement_delta(wire.data(), wire.size(), decoded));
  EXPECT_EQ(decoded.epoch, 1u);
  EXPECT_TRUE(decoded.remaps.empty());
}

TEST(PlacementDeltaCodec, RejectsTruncationAndTrailingBytes) {
  PlacementDelta delta;
  delta.epoch = 3;
  delta.remaps.push_back({1, 2, 3});
  std::vector<std::uint8_t> wire;
  encode_placement_delta(delta, wire);

  PlacementDelta decoded;
  EXPECT_FALSE(decode_placement_delta(wire.data(), wire.size() - 1, decoded));
  EXPECT_FALSE(decode_placement_delta(wire.data(), 11, decoded));
  wire.push_back(0);  // trailing garbage
  EXPECT_FALSE(decode_placement_delta(wire.data(), wire.size(), decoded));
}

TEST(EpochedPlacement, StartsAtBasePlacementAndEpochZero) {
  const EpochedPlacement placement(16, 3, 99);
  const Placement base(16, 3, 99);
  EXPECT_EQ(placement.epoch(), 0u);
  EXPECT_EQ(placement.remapped_chunks(), 0u);
  for (ChunkId x = 0; x < 100; ++x) {
    const ChoiceList got = placement.choices(x);
    const ChoiceList want = base.choices(x);
    ASSERT_EQ(got.size(), want.size());
    for (unsigned i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], want[i]);
  }
}

TEST(EpochedPlacement, ApplyMovesOneReplicaAndBumpsEpoch) {
  EpochedPlacement placement(8, 2, 5);
  const ChoiceList before = placement.choices(17);
  const PlacementDelta delta = next_delta(placement, 17);
  ASSERT_TRUE(placement.apply(delta));

  EXPECT_EQ(placement.epoch(), 1u);
  EXPECT_EQ(placement.remapped_chunks(), 1u);
  const ChoiceList after = placement.choices(17);
  ASSERT_EQ(after.size(), before.size());
  EXPECT_FALSE(after.contains(delta.remaps[0].from));
  EXPECT_TRUE(after.contains(delta.remaps[0].to));
  // Replacement preserves position: the untouched replica keeps its slot.
  EXPECT_EQ(after[1], before[1]);
  // Untouched chunks keep their base choices.
  const Placement base(8, 2, 5);
  const ChoiceList other = placement.choices(18);
  for (unsigned i = 0; i < other.size(); ++i) {
    EXPECT_EQ(other[i], base.choices(18)[i]);
  }
}

TEST(EpochedPlacement, ApplyIsTransactionalOnBadRemap) {
  EpochedPlacement placement(8, 2, 5);
  const ChoiceList cl = placement.choices(4);

  // Valid first remap + invalid second (from not a current choice):
  // nothing may change.
  PlacementDelta delta = next_delta(placement, 4);
  ChunkRemap bad;
  bad.chunk = 5;
  for (ServerId s = 0;; ++s) {
    if (!placement.choices(5).contains(s)) {
      bad.from = s;  // not currently a replica of chunk 5
      break;
    }
  }
  bad.to = bad.from + 1;
  delta.remaps.push_back(bad);
  EXPECT_FALSE(placement.apply(delta));
  EXPECT_EQ(placement.epoch(), 0u);
  const ChoiceList unchanged = placement.choices(4);
  for (unsigned i = 0; i < cl.size(); ++i) EXPECT_EQ(unchanged[i], cl[i]);
}

TEST(EpochedPlacement, ApplyRejectsWrongEpochDuplicateToAndSelfMove) {
  EpochedPlacement placement(8, 2, 5);

  PlacementDelta skip = next_delta(placement, 1);
  skip.epoch = 2;  // must be current + 1 == 1
  EXPECT_FALSE(placement.apply(skip));

  PlacementDelta self = next_delta(placement, 1);
  self.remaps[0].to = self.remaps[0].from;
  EXPECT_FALSE(placement.apply(self));

  PlacementDelta dup = next_delta(placement, 1);
  dup.remaps[0].to = placement.choices(1)[1];  // already a replica
  EXPECT_FALSE(placement.apply(dup));

  EXPECT_EQ(placement.epoch(), 0u);
}

TEST(EpochedPlacement, OverlaysComposeAcrossEpochs) {
  EpochedPlacement placement(16, 3, 11);
  const ChunkId chunk = 9;
  const ChoiceList base = placement.choices(chunk);

  // Move the same chunk three times; each delta must see the PREVIOUS
  // overlay (its `from` is the server the last epoch moved to).
  std::vector<PlacementDelta> applied;
  for (int round = 0; round < 3; ++round) {
    const PlacementDelta delta = next_delta(placement, chunk);
    ASSERT_TRUE(placement.apply(delta)) << "round " << round;
    applied.push_back(delta);
  }
  EXPECT_EQ(placement.epoch(), 3u);
  EXPECT_EQ(placement.remapped_chunks(), 1u) << "same chunk, one overlay key";

  // Replaying the deltas over the base choice set reproduces choices().
  std::set<ServerId> expect(base.begin(), base.end());
  for (const PlacementDelta& delta : applied) {
    for (const ChunkRemap& remap : delta.remaps) {
      ASSERT_EQ(expect.erase(remap.from), 1u);
      ASSERT_TRUE(expect.insert(remap.to).second);
    }
  }
  const ChoiceList now = placement.choices(chunk);
  std::set<ServerId> got(now.begin(), now.end());
  EXPECT_EQ(got, expect);

  // history()/deltas_since() expose the replay contract.
  const std::vector<PlacementDelta> history = placement.history();
  ASSERT_EQ(history.size(), 3u);
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(history[i].epoch, i + 1);
    EXPECT_EQ(history[i].remaps[0], applied[i].remaps[0]);
  }
  EXPECT_EQ(placement.deltas_since(0).size(), 3u);
  const std::vector<PlacementDelta> tail = placement.deltas_since(2);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].epoch, 3u);
  EXPECT_TRUE(placement.deltas_since(3).empty());
}

TEST(EpochedPlacement, ChoiceSetsStayDistinctAndSized) {
  EpochedPlacement placement(16, 3, 2);
  for (ChunkId chunk = 0; chunk < 64; ++chunk) {
    ASSERT_TRUE(placement.apply(next_delta(placement, chunk)));
  }
  EXPECT_EQ(placement.epoch(), 64u);
  for (ChunkId chunk = 0; chunk < 64; ++chunk) {
    const ChoiceList cl = placement.choices(chunk);
    ASSERT_EQ(cl.size(), 3u);
    const std::set<ServerId> unique(cl.begin(), cl.end());
    EXPECT_EQ(unique.size(), 3u) << "chunk " << chunk;
    for (const ServerId s : cl) EXPECT_LT(s, 16u);
  }
}

// Readers racing a writer must always observe a complete epoch: either
// the pre-delta or post-delta choice set, never a partially applied one.
TEST(EpochedPlacement, ConcurrentReadersSeeAtomicCutover) {
  EpochedPlacement placement(8, 2, 31);
  const ChunkId chunk = 3;
  const ChoiceList before = placement.choices(chunk);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t epoch = placement.epoch();
        const ChoiceList cl = placement.choices(chunk);
        // Consistency probe: the choice set must equal SOME epoch's set —
        // size and distinctness always hold, and a set from a later epoch
        // implies the epoch counter (read before) has moved past it.
        if (cl.size() != before.size()) torn.fetch_add(1);
        std::set<ServerId> unique(cl.begin(), cl.end());
        if (unique.size() != cl.size()) torn.fetch_add(1);
        (void)epoch;
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    ASSERT_TRUE(placement.apply(next_delta(placement, chunk)));
  }
  stop.store(true);
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(placement.epoch(), 200u);
}

}  // namespace
}  // namespace rlb::core
