// Unit tests for the greedy balancer (policies/greedy.hpp).
#include "policies/greedy.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "workloads/fresh_uniform.hpp"
#include "workloads/repeated_set.hpp"

namespace rlb::policies {
namespace {

SingleQueueConfig small_config() {
  SingleQueueConfig config;
  config.servers = 64;
  config.replication = 2;
  config.processing_rate = 2;
  config.queue_capacity = 16;
  config.seed = 42;
  return config;
}

TEST(Greedy, RejectsZeroProcessingRate) {
  SingleQueueConfig config = small_config();
  config.processing_rate = 0;
  EXPECT_THROW(GreedyBalancer{config}, std::invalid_argument);
}

TEST(Greedy, NameAndServerCount) {
  GreedyBalancer balancer(small_config());
  EXPECT_EQ(balancer.name(), "greedy");
  EXPECT_EQ(balancer.server_count(), 64u);
  EXPECT_EQ(balancer.total_backlog(), 0u);
}

TEST(Greedy, TheoremConfigValues) {
  const SingleQueueConfig config =
      GreedyBalancer::theorem_config(1024, 4, 4, 7);
  EXPECT_EQ(config.servers, 1024u);
  EXPECT_EQ(config.replication, 4u);
  EXPECT_EQ(config.queue_capacity, 11u);  // log2(1024) + 1
  EXPECT_EQ(config.overflow, OverflowPolicy::kDumpQueue);
}

TEST(Greedy, BalancesBetweenTwoServers) {
  // m = 2, d = 2: every chunk may go to either server, so greedy must keep
  // the two backlogs within 1 of each other at all times.
  SingleQueueConfig config;
  config.servers = 2;
  config.replication = 2;
  config.processing_rate = 1;
  config.queue_capacity = 100;
  config.seed = 1;
  GreedyBalancer balancer(config);

  core::Metrics metrics;
  std::vector<core::ChunkId> batch = {1, 2, 3, 4, 5, 6};
  for (core::Time t = 0; t < 10; ++t) {
    balancer.step(t, batch, metrics);
    const auto diff =
        static_cast<std::int64_t>(balancer.backlog(0)) -
        static_cast<std::int64_t>(balancer.backlog(1));
    EXPECT_LE(std::abs(diff), 1) << "step " << t;
  }
  EXPECT_EQ(metrics.rejected(), 0u);
}

TEST(Greedy, CompletesRequestsWithLatencyAccounting) {
  SingleQueueConfig config = small_config();
  GreedyBalancer balancer(config);
  core::Metrics metrics;
  const std::vector<core::ChunkId> batch = {10, 20, 30};
  balancer.step(0, batch, metrics);
  EXPECT_EQ(metrics.submitted(), 3u);
  // 64 servers, 3 requests, g = 2 sub-steps: everything completes in-step.
  EXPECT_EQ(metrics.completed(), 3u);
  EXPECT_EQ(metrics.max_latency(), 0u);
  EXPECT_EQ(balancer.total_backlog(), 0u);
}

TEST(Greedy, OverflowRejectArrival) {
  SingleQueueConfig config;
  config.servers = 2;
  config.replication = 2;
  config.processing_rate = 1;
  config.queue_capacity = 1;
  config.seed = 3;
  config.overflow = OverflowPolicy::kRejectArrival;
  GreedyBalancer balancer(config);
  core::Metrics metrics;
  // 8 requests into 2 servers with q = 1, g = 1: most must be rejected but
  // queued ones stay queued.
  const std::vector<core::ChunkId> batch = {1, 2, 3, 4, 5, 6, 7, 8};
  balancer.step(0, batch, metrics);
  EXPECT_GT(metrics.rejected(), 0u);
  EXPECT_EQ(metrics.dropped_from_queue(), 0u);  // no dumps in this mode
}

TEST(Greedy, OverflowDumpQueueDropsContents) {
  SingleQueueConfig config;
  config.servers = 2;
  config.replication = 2;
  config.processing_rate = 1;
  config.queue_capacity = 2;
  config.seed = 3;
  config.overflow = OverflowPolicy::kDumpQueue;
  GreedyBalancer balancer(config);
  core::Metrics metrics;
  const std::vector<core::ChunkId> batch = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  balancer.step(0, batch, metrics);
  EXPECT_GT(metrics.dropped_from_queue(), 0u);
}

TEST(Greedy, FlushDropsEverythingQueued) {
  SingleQueueConfig config = small_config();
  config.processing_rate = 1;
  GreedyBalancer balancer(config);
  core::Metrics metrics;
  std::vector<core::ChunkId> batch;
  for (core::ChunkId x = 0; x < 64; ++x) batch.push_back(x);
  balancer.step(0, batch, metrics);
  const std::uint64_t queued = balancer.total_backlog();
  ASSERT_GT(queued, 0u);
  balancer.flush(metrics);
  EXPECT_EQ(balancer.total_backlog(), 0u);
  EXPECT_EQ(metrics.dropped_from_queue(), queued);
}

TEST(Greedy, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    GreedyBalancer balancer(small_config());
    workloads::RepeatedSetWorkload workload(64, 10000, 5);
    core::SimConfig sim;
    sim.steps = 50;
    return core::simulate(balancer, workload, sim);
  };
  const core::SimResult a = run();
  const core::SimResult b = run();
  EXPECT_EQ(a.metrics.submitted(), b.metrics.submitted());
  EXPECT_EQ(a.metrics.rejected(), b.metrics.rejected());
  EXPECT_EQ(a.metrics.completed(), b.metrics.completed());
  EXPECT_EQ(a.max_backlog, b.max_backlog);
  EXPECT_DOUBLE_EQ(a.metrics.average_latency(), b.metrics.average_latency());
}

TEST(Greedy, FreshWorkloadHasNoRejectionsAtTheoremParameters) {
  const SingleQueueConfig config =
      GreedyBalancer::theorem_config(256, 4, 4, 11);
  GreedyBalancer balancer(config);
  workloads::FreshUniformWorkload workload(256);
  core::SimConfig sim;
  sim.steps = 100;
  const core::SimResult result = core::simulate(balancer, workload, sim);
  EXPECT_EQ(result.metrics.rejected(), 0u);
  EXPECT_LT(result.metrics.average_latency(), 2.0);
}

TEST(Greedy, RepeatedSetAtTheoremParametersStaysClean) {
  // The headline positive result (Theorem 3.1) at small scale: the fully
  // adversarial repeated workload produces no rejections and O(1) average
  // latency with d = g = 6 and q = log2 m + 1.
  const SingleQueueConfig config =
      GreedyBalancer::theorem_config(256, 6, 6, 13);
  GreedyBalancer balancer(config);
  workloads::RepeatedSetWorkload workload(256, 1u << 20, 13);
  core::SimConfig sim;
  sim.steps = 200;
  sim.check_safety = true;
  const core::SimResult result = core::simulate(balancer, workload, sim);
  EXPECT_EQ(result.metrics.rejected(), 0u);
  EXPECT_EQ(result.metrics.safety_violations(), 0u);
  EXPECT_LT(result.metrics.average_latency(), 2.0);
}

}  // namespace
}  // namespace rlb::policies
