// Unit tests for the adversary search (harness/adversary_search.hpp).
#include "harness/adversary_search.hpp"

#include <gtest/gtest.h>

#include "policies/factory.hpp"

namespace rlb::harness {
namespace {

BalancerFactory factory_for(const std::string& name, unsigned g,
                            std::size_t q) {
  return [name, g, q](std::uint64_t seed) {
    policies::PolicyConfig config;
    config.servers = 128;
    config.replication = 2;
    config.processing_rate = g;
    config.queue_capacity = q;
    config.seed = seed;
    return policies::make_policy(name, config);
  };
}

AdversarySearchConfig small_search() {
  AdversarySearchConfig config;
  config.servers = 128;
  config.steps = 80;
  config.trials = 2;
  config.budget = 16;
  config.seed = 5;
  return config;
}

TEST(AdversarySearch, DescribeIsReadable) {
  AdversaryParams params;
  params.working_set = 42;
  params.churn = 0.25;
  params.churn_period = 3;
  params.shuffle = false;
  const std::string text = describe(params);
  EXPECT_NE(text.find("working_set=42"), std::string::npos);
  EXPECT_NE(text.find("0.25"), std::string::npos);
  EXPECT_NE(text.find("fixed"), std::string::npos);
}

TEST(AdversarySearch, EvaluateIsDeterministic) {
  AdversaryParams params;
  params.working_set = 128;
  const auto factory = factory_for("greedy-d1", 2, 8);
  const auto config = small_search();
  const auto a = evaluate_adversary(params, factory, config);
  const auto b = evaluate_adversary(params, factory, config);
  EXPECT_DOUBLE_EQ(a.best_rejection, b.best_rejection);
  EXPECT_DOUBLE_EQ(a.best_latency, b.best_latency);
}

TEST(AdversarySearch, RespectsBudget) {
  const auto result =
      search_adversary(factory_for("greedy", 2, 8), small_search());
  EXPECT_LE(result.evaluations, small_search().budget);
  EXPECT_GE(result.evaluations, 2u);  // at least the seeded starts
}

TEST(AdversarySearch, BreaksD1Baseline) {
  // The search must extract substantial rejection from the no-replication
  // baseline (the §1 impossibility is easy to find).
  const auto result =
      search_adversary(factory_for("greedy-d1", 2, 8), small_search());
  EXPECT_GT(result.best_rejection, 0.01);
  // ...and the winning workload should be reappearance-heavy.
  EXPECT_GT(result.best.working_set, 32u);
  EXPECT_LT(result.best.churn, 0.9);
}

TEST(AdversarySearch, CannotBreakGreedyAtTheoremParameters) {
  // q = log2(m)+1 = 8 for m = 128, d = g = 2: every candidate (including
  // the seeded repeated set) must come back with zero rejection.
  const auto result =
      search_adversary(factory_for("greedy", 2, 8), small_search());
  EXPECT_EQ(result.best_rejection, 0.0);
}

TEST(AdversarySearch, CannotBreakDelayedCuckoo) {
  const auto factory = [](std::uint64_t seed) {
    policies::PolicyConfig config;
    config.servers = 128;
    config.processing_rate = 8;
    config.queue_capacity = 0;  // derive
    config.seed = seed;
    return policies::make_policy("delayed-cuckoo", config);
  };
  const auto result = search_adversary(factory, small_search());
  EXPECT_EQ(result.best_rejection, 0.0);
}

}  // namespace
}  // namespace rlb::harness
