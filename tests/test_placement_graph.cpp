// Unit tests for the placement-graph analyzer (core/placement_graph.hpp).
#include "core/placement_graph.hpp"

#include <gtest/gtest.h>

namespace rlb::core {
namespace {

using Edges = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

TEST(PlacementGraph, RejectsBadInput) {
  EXPECT_THROW(analyze_edge_list({}, 0), std::invalid_argument);
  EXPECT_THROW(analyze_edge_list({{0, 5}}, 4), std::out_of_range);
  const Placement d3(8, 3, 1);
  EXPECT_THROW(analyze_placement_graph(d3, 4), std::invalid_argument);
}

TEST(PlacementGraph, EmptyGraphIsAllIsolatedTrees) {
  const PlacementGraphStats stats = analyze_edge_list({}, 5);
  EXPECT_EQ(stats.components, 5u);
  EXPECT_EQ(stats.tree_components, 5u);
  EXPECT_EQ(stats.unicyclic_components, 0u);
  EXPECT_EQ(stats.complex_components, 0u);
  EXPECT_TRUE(stats.cuckoo_feasible());
  EXPECT_EQ(stats.largest_component, 1u);
  EXPECT_LE(stats.max_overload_excess, 0);
}

TEST(PlacementGraph, PathIsATree) {
  // 0-1-2-3: 3 edges on 4 vertices.
  const PlacementGraphStats stats =
      analyze_edge_list({{0, 1}, {1, 2}, {2, 3}}, 6);
  EXPECT_EQ(stats.components, 3u);  // the path + two isolated vertices
  EXPECT_EQ(stats.tree_components, 3u);
  EXPECT_EQ(stats.largest_component, 4u);
  EXPECT_TRUE(stats.cuckoo_feasible());
}

TEST(PlacementGraph, CycleIsUnicyclic) {
  const PlacementGraphStats stats =
      analyze_edge_list({{0, 1}, {1, 2}, {2, 0}}, 3);
  EXPECT_EQ(stats.unicyclic_components, 1u);
  EXPECT_TRUE(stats.cuckoo_feasible());  // unicyclic is still placeable
  EXPECT_EQ(stats.max_overload_excess, 0);
}

TEST(PlacementGraph, DoubleEdgePlusCycleIsComplex) {
  // Two parallel edges {0,1} + edge {1,2} + edge {2,0}: 4 edges, 3 vertices.
  const PlacementGraphStats stats =
      analyze_edge_list({{0, 1}, {0, 1}, {1, 2}, {2, 0}}, 3);
  EXPECT_EQ(stats.complex_components, 1u);
  EXPECT_FALSE(stats.cuckoo_feasible());
  EXPECT_EQ(stats.max_overload_excess, 1);  // 4 - 1*3
}

TEST(PlacementGraph, SelfLoopCountsAsEdge) {
  // A chunk whose both replicas landed on the same server (only possible
  // via the edge-list API; Placement enforces distinctness).
  const PlacementGraphStats stats = analyze_edge_list({{2, 2}}, 4);
  EXPECT_EQ(stats.unicyclic_components, 1u);  // 1 edge on 1 vertex
}

TEST(PlacementGraph, OverloadExcessUsesG) {
  // Triple edge on a pair: 3 edges, 2 vertices.
  const Edges edges = {{0, 1}, {0, 1}, {0, 1}};
  EXPECT_EQ(analyze_edge_list(edges, 2, /*g=*/1).max_overload_excess, 1);
  EXPECT_EQ(analyze_edge_list(edges, 2, /*g=*/2).max_overload_excess, -1);
}

TEST(PlacementGraph, MatchesCuckooFeasibilityOnRandomInstances) {
  // Cross-validate against the exact TwoChoiceAllocator-style condition:
  // the analyzer's cuckoo_feasible must be monotone-correct — at chunk
  // counts far below m/2 random graphs are feasible; far above, not.
  const Placement placement(256, 2, 77);
  const PlacementGraphStats sparse =
      analyze_placement_graph(placement, 64);  // 25% load
  EXPECT_TRUE(sparse.cuckoo_feasible());
  const PlacementGraphStats dense =
      analyze_placement_graph(placement, 240);  // 94% load
  EXPECT_FALSE(dense.cuckoo_feasible());
}

TEST(PlacementGraph, ChunkAndServerCountsRecorded) {
  const Placement placement(64, 2, 5);
  const PlacementGraphStats stats = analyze_placement_graph(placement, 30);
  EXPECT_EQ(stats.servers, 64u);
  EXPECT_EQ(stats.chunks, 30u);
  EXPECT_GE(stats.components, 1u);
}

}  // namespace
}  // namespace rlb::core
