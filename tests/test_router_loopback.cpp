// End-to-end loopback tests for the cluster tier: cluster::Router in front
// of real ServingEngine backends over real sockets, in one process.  The
// in-tree version of scripts/cluster_smoke.sh: every client request must
// be answered exactly once through the router; stopping a backend mid-run
// yields only bounded, cause-labelled rejections (never a hang or a
// protocol error); a restarted backend re-enters service after probation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.hpp"
#include "engine/engine.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "obs/span.hpp"
#include "stats/rng.hpp"

namespace rlb {
namespace {

/// One rlbd-shaped backend: NetServer + ServingEngine on a loopback port.
class Backend {
 public:
  explicit Backend(std::uint16_t port, std::uint32_t backend_id,
                   std::uint64_t tick_interval_us = 0) {
    engine::EngineConfig config;
    config.servers = 16;
    config.shards = 2;
    config.processing_rate = 4;
    config.seed = 100 + backend_id;
    config.backend_id = backend_id;
    config.tick_interval_us = tick_interval_us;
    net::ServerConfig net_config;
    net_config.port = port;
    server_ = std::make_unique<net::NetServer>(
        net_config,
        [this](std::uint64_t token, const net::RequestMsg& request) {
          if (!engine_->submit(token, request.request_id, request.key,
                               request.trace)) {
            net::ResponseMsg msg;
            msg.request_id = request.request_id;
            msg.status = net::Status::kError;
            server_->send_response(token, msg);
          }
        });
    engine_ = std::make_unique<engine::ServingEngine>(
        config, [this](const engine::EngineResponse& r) {
          net::ResponseMsg msg;
          msg.request_id = r.request_id;
          msg.status = static_cast<net::Status>(r.status);
          msg.server = static_cast<std::uint32_t>(r.server);
          msg.wait_steps = r.wait_steps;
          server_->send_response(r.conn_token, msg);
        });
    server_->set_stats_handler(
        [this](std::uint64_t token, const net::StatsRequestMsg&) {
          server_->send_stats(token, engine_->snapshot());
        });
    engine_->start();
    server_->start();
  }

  ~Backend() { stop(); }

  void stop() {
    if (stopped_) return;
    stopped_ = true;
    engine_->stop();
    server_->stop();
  }

  /// SIGKILL-shaped loss: drop the sockets FIRST, so the router sees a
  /// connection drop (force-down + in-flight retry), then tear down the
  /// engine.  A graceful stop() would instead answer queued requests with
  /// kError through the still-open connection — a different scenario.
  void kill() {
    if (stopped_) return;
    stopped_ = true;
    server_->stop(/*flush_timeout_ms=*/0);
    engine_->stop();  // its kError completions hit the stopped server: no-ops
  }

  std::uint16_t port() const { return server_->port(); }
  engine::EngineStats stats() const { return engine_->stats(); }

 private:
  std::unique_ptr<net::NetServer> server_;
  std::unique_ptr<engine::ServingEngine> engine_;
  bool stopped_ = false;
};

/// Restart on a fixed port, retrying the transient bind race.
std::unique_ptr<Backend> start_backend(std::uint16_t port,
                                       std::uint32_t backend_id) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    try {
      return std::make_unique<Backend>(port, backend_id);
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  return std::make_unique<Backend>(port, backend_id);
}

cluster::RouterConfig fast_config(
    const std::vector<const Backend*>& backends) {
  cluster::RouterConfig config;
  for (const Backend* backend : backends) {
    config.backends.push_back({"127.0.0.1", backend->port()});
  }
  config.replication = 2;
  config.chunks = 1 << 12;
  config.heartbeat_interval_ms = 10;
  config.heartbeat_timeout_ms = 50;
  config.request_timeout_ms = 500;
  return config;
}

bool wait_live(const cluster::Router& router, std::size_t want,
               std::uint64_t deadline_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (router.membership().live_count() == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return router.membership().live_count() == want;
}

struct ClientTally {
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;  // every is_reject() flavour
  std::uint64_t rejected_upstream = 0;
  std::uint64_t errors = 0;
  std::uint64_t protocol_errors = 0;
  std::set<std::uint64_t> answered_ids;
};

/// Closed-loop worker against the router port, classifying hop-level
/// reject causes separately from backend queue rejects.
void run_client(std::uint16_t port, std::uint64_t quota,
                std::size_t concurrency, std::uint64_t id_base,
                std::uint64_t seed, ClientTally& tally) {
  net::Client client;
  client.connect("127.0.0.1", port);
  stats::Rng rng(seed);
  std::uint64_t next_id = id_base;
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  auto send_one = [&] {
    client.send_request(next_id++, rng.next());
    ++sent;
  };
  for (std::uint64_t i = 0; i < std::min<std::uint64_t>(concurrency, quota);
       ++i) {
    send_one();
  }
  client.flush();
  net::ResponseMsg response;
  while (completed < quota && client.read_response(response)) {
    if (response.request_id < id_base || response.request_id >= next_id ||
        !tally.answered_ids.insert(response.request_id).second) {
      ++tally.protocol_errors;
      break;
    }
    ++completed;
    if (response.status == net::Status::kOk) {
      ++tally.ok;
    } else if (net::is_reject(response.status)) {
      ++tally.rejected;
      if (response.status != net::Status::kReject) ++tally.rejected_upstream;
    } else {
      ++tally.errors;
    }
    if (sent < quota) {
      send_one();
      client.flush();
    }
  }
  client.close();
}

TEST(RouterLoopback, AllAnsweredAndConserved) {
  std::vector<std::unique_ptr<Backend>> backends;
  for (std::uint32_t i = 0; i < 3; ++i) {
    backends.push_back(std::make_unique<Backend>(/*port=*/0, i));
  }
  cluster::Router router(fast_config(
      {backends[0].get(), backends[1].get(), backends[2].get()}));
  router.start();
  ASSERT_TRUE(wait_live(router, 3));

  constexpr std::uint64_t kQuota = 4000;
  ClientTally tally;
  run_client(router.port(), kQuota, /*concurrency=*/32, /*id_base=*/1,
             /*seed=*/5, tally);
  EXPECT_EQ(tally.protocol_errors, 0u);
  EXPECT_EQ(tally.errors, 0u);
  EXPECT_EQ(tally.answered_ids.size(), kQuota);
  EXPECT_EQ(tally.ok + tally.rejected, kQuota);
  EXPECT_EQ(tally.rejected_upstream, 0u) << "no backend was ever down";

  // Conservation at the router: every received request got exactly one
  // verdict, and the per-backend snapshot rows re-sum to the same totals.
  const cluster::RouterStats stats = router.stats();
  EXPECT_EQ(stats.received, kQuota);
  EXPECT_EQ(stats.relayed_ok, tally.ok);
  EXPECT_EQ(stats.relayed_ok + stats.relayed_reject + stats.relayed_error +
                stats.rejected_upstream_down + stats.rejected_upstream_timeout,
            kQuota);

  const net::StatsSnapshot snapshot = router.snapshot();
  EXPECT_EQ(snapshot.role, net::NodeRole::kRouter);
  ASSERT_EQ(snapshot.shards.size(), 3u);
  const net::ShardStats totals = snapshot.totals();
  EXPECT_EQ(totals.completed, stats.relayed_ok);

  router.stop();
  // Backends saw exactly what the router forwarded, once each.
  std::uint64_t backend_submitted = 0;
  for (auto& backend : backends) {
    backend->stop();
    backend_submitted += backend->stats().submitted;
  }
  EXPECT_EQ(backend_submitted, stats.forwarded);
}

TEST(RouterLoopback, BackendLossIsBoundedAndRecoveryRejoins) {
  std::vector<std::unique_ptr<Backend>> backends;
  for (std::uint32_t i = 0; i < 3; ++i) {
    backends.push_back(std::make_unique<Backend>(/*port=*/0, i));
  }
  const std::uint16_t lost_port = backends[1]->port();
  cluster::Router router(fast_config(
      {backends[0].get(), backends[1].get(), backends[2].get()}));
  router.start();
  ASSERT_TRUE(wait_live(router, 3));

  // Phase 1: healthy cluster.
  ClientTally phase1;
  run_client(router.port(), 2000, 32, /*id_base=*/1, /*seed=*/7, phase1);
  EXPECT_EQ(phase1.protocol_errors, 0u);
  EXPECT_EQ(phase1.errors, 0u);
  EXPECT_EQ(phase1.answered_ids.size(), 2000u);

  // Phase 2: SIGKILL-shaped loss of one backend while traffic runs.  With
  // d=2 over three backends every chunk keeps at least one live candidate,
  // so once the drop propagates everything is served; hops in flight at
  // the instant of the loss are retried on the surviving candidate and may
  // at worst surface as hop-level rejects — bounded, never errors.
  std::thread killer([&backends] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    backends[1]->kill();
  });
  ClientTally phase2;
  run_client(router.port(), 6000, 32, /*id_base=*/1 << 20, /*seed=*/9,
             phase2);
  killer.join();
  EXPECT_EQ(phase2.protocol_errors, 0u);
  EXPECT_EQ(phase2.errors, 0u);
  EXPECT_EQ(phase2.answered_ids.size(), 6000u) << "every request answered";
  EXPECT_TRUE(wait_live(router, 2));

  // Steady state with two live backends: no rejects at all.
  ClientTally phase3;
  run_client(router.port(), 2000, 16, /*id_base=*/1 << 21, /*seed=*/11,
             phase3);
  EXPECT_EQ(phase3.protocol_errors, 0u);
  EXPECT_EQ(phase3.errors, 0u);
  EXPECT_EQ(phase3.rejected_upstream, 0u)
      << "chunks with one live candidate must still be served";

  // Phase 4: the backend comes back on the same port and must re-enter
  // service after probation.
  backends[1] = start_backend(lost_port, 1);
  ASSERT_TRUE(wait_live(router, 3));
  ClientTally phase4;
  run_client(router.port(), 2000, 16, /*id_base=*/1 << 22, /*seed=*/13,
             phase4);
  EXPECT_EQ(phase4.protocol_errors, 0u);
  EXPECT_EQ(phase4.errors, 0u);
  EXPECT_EQ(phase4.answered_ids.size(), 2000u);

  const cluster::RouterStats stats = router.stats();
  EXPECT_GE(stats.backend_drops, 1u) << "the data plane must see the loss";
  router.stop();
}

TEST(RouterLoopback, AllCandidatesDownRejectsFastWithCause) {
  auto backend = std::make_unique<Backend>(/*port=*/0, 0);
  cluster::RouterConfig config = fast_config({backend.get()});
  config.replication = 1;
  cluster::Router router(config);
  router.start();
  ASSERT_TRUE(wait_live(router, 1));

  backend->stop();
  ASSERT_TRUE(wait_live(router, 0));

  // Every request is answered promptly with the hop-level down cause:
  // no hang, no connection error, no silent drop.
  ClientTally tally;
  run_client(router.port(), 500, 8, /*id_base=*/1, /*seed=*/3, tally);
  EXPECT_EQ(tally.protocol_errors, 0u);
  EXPECT_EQ(tally.errors, 0u);
  EXPECT_EQ(tally.ok, 0u);
  EXPECT_EQ(tally.rejected, 500u);
  EXPECT_EQ(tally.rejected_upstream, 500u);
  EXPECT_EQ(router.stats().rejected_upstream_down, 500u);
  router.stop();
}

#if !defined(RLB_OBS_DISABLED)

/// Closed-loop traced client: every request carries a sampled context.
/// Returns the per-trace root span id keyed by trace id.
std::map<std::uint64_t, std::uint64_t> run_traced_client(
    std::uint16_t port, std::uint64_t quota, std::size_t concurrency,
    std::uint64_t id_base, std::uint64_t seed,
    std::atomic<std::uint64_t>* progress = nullptr) {
  std::map<std::uint64_t, std::uint64_t> roots;
  net::Client client;
  client.connect("127.0.0.1", port);
  stats::Rng rng(seed);
  std::uint64_t next_id = id_base;
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  auto send_one = [&] {
    obs::TraceContext ctx;
    ctx.trace_id = obs::next_span_id();
    ctx.parent_span_id = obs::next_span_id();  // the client-side root span
    ctx.flags = obs::kSpanSampled;
    roots[ctx.trace_id] = ctx.parent_span_id;
    client.send_request(next_id++, rng.next(), ctx);
    ++sent;
  };
  for (std::uint64_t i = 0; i < std::min<std::uint64_t>(concurrency, quota);
       ++i) {
    send_one();
  }
  client.flush();
  net::ResponseMsg response;
  while (completed < quota && client.read_response(response)) {
    ++completed;
    if (progress) progress->store(completed, std::memory_order_relaxed);
    if (sent < quota) {
      send_one();
      client.flush();
    }
  }
  client.close();
  EXPECT_EQ(completed, quota);
  return roots;
}

/// Spans of one trace, split by site.
struct TraceSpans {
  std::vector<obs::Span> request;  // router.request
  std::vector<obs::Span> hops;     // router.hop
  std::vector<obs::Span> engine;   // engine.request
};

std::map<std::uint64_t, TraceSpans> group_spans(
    const std::vector<obs::Span>& spans) {
  std::map<std::uint64_t, TraceSpans> by_trace;
  for (const obs::Span& span : spans) {
    const std::string name = span.name;
    if (name == "router.request") {
      by_trace[span.trace_id].request.push_back(span);
    } else if (name == "router.hop") {
      by_trace[span.trace_id].hops.push_back(span);
    } else if (name == "engine.request") {
      by_trace[span.trace_id].engine.push_back(span);
    }
  }
  return by_trace;
}

TEST(RouterLoopback, SampledRequestsYieldCompleteSpanTrees) {
  obs::SpanRecorder::instance().clear();
  obs::set_span_recording(true);

  std::vector<std::unique_ptr<Backend>> backends;
  for (std::uint32_t i = 0; i < 3; ++i) {
    backends.push_back(std::make_unique<Backend>(/*port=*/0, i));
  }
  cluster::Router router(fast_config(
      {backends[0].get(), backends[1].get(), backends[2].get()}));
  router.start();
  ASSERT_TRUE(wait_live(router, 3));

  constexpr std::uint64_t kQuota = 600;
  const std::map<std::uint64_t, std::uint64_t> roots =
      run_traced_client(router.port(), kQuota, /*concurrency=*/16,
                        /*id_base=*/1, /*seed=*/17);
  router.stop();
  for (auto& backend : backends) backend->stop();
  obs::set_span_recording(false);

  // All three tiers share this process, so one recorder holds the whole
  // tree.  Span conservation: every sampled request produced exactly one
  // router.request span, and every hop that reached a backend produced an
  // engine.request span parented to that hop.
  const std::map<std::uint64_t, TraceSpans> by_trace =
      group_spans(obs::SpanRecorder::instance().drain(1 << 20));
  ASSERT_EQ(by_trace.size(), kQuota) << "one span tree per sampled request";
  for (const auto& [trace_id, spans] : by_trace) {
    const auto root = roots.find(trace_id);
    ASSERT_NE(root, roots.end()) << "unknown trace id in recorder";
    ASSERT_EQ(spans.request.size(), 1u)
        << "exactly one router.request span per request";
    EXPECT_EQ(spans.request[0].parent_span_id, root->second)
        << "router.request parents to the client root span";
    ASSERT_GE(spans.hops.size(), 1u) << "at least one hop per request";
    for (const obs::Span& hop : spans.hops) {
      EXPECT_EQ(hop.parent_span_id, spans.request[0].span_id)
          << "hops parent to their request span";
    }
    // Healthy cluster: no retries, so exactly one hop and one engine span.
    EXPECT_EQ(spans.hops.size(), 1u);
    ASSERT_EQ(spans.engine.size(), 1u);
    EXPECT_EQ(spans.engine[0].parent_span_id, spans.hops[0].span_id)
        << "engine.request parents to the hop that delivered it";
    EXPECT_TRUE(spans.engine[0].flags & obs::kSpanSampled)
        << "the sampling flag propagates across both wire hops";
  }
  obs::SpanRecorder::instance().clear();
}

TEST(RouterLoopback, RetriedHopsKeepTheirSpans) {
  obs::SpanRecorder::instance().clear();
  obs::set_span_recording(true);

  // Backend 1 drains on a slow 5ms tick, so it always holds queued hops —
  // the kill is guaranteed to strand some in flight.
  std::vector<std::unique_ptr<Backend>> backends;
  for (std::uint32_t i = 0; i < 3; ++i) {
    backends.push_back(std::make_unique<Backend>(
        /*port=*/0, i, /*tick_interval_us=*/i == 1 ? 5000 : 0));
  }
  cluster::Router router(fast_config(
      {backends[0].get(), backends[1].get(), backends[2].get()}));
  router.start();
  ASSERT_TRUE(wait_live(router, 3));

  // SIGKILL-shaped loss mid-run: hops in flight to the lost backend are
  // retried on the survivor, and the retry must show up as a second hop
  // span under the same router.request.  The kill triggers on request
  // progress (not a timer) so it always lands with hops in flight.
  constexpr std::uint64_t kQuota = 4000;
  std::atomic<std::uint64_t> progress{0};
  std::thread killer([&backends, &progress] {
    while (progress.load(std::memory_order_relaxed) < kQuota / 4) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    backends[1]->kill();
  });
  run_traced_client(router.port(), kQuota, /*concurrency=*/32,
                    /*id_base=*/1 << 20, /*seed=*/19, &progress);
  killer.join();
  const cluster::RouterStats router_stats = router.stats();
  EXPECT_GE(router_stats.backend_drops, 1u);
  router.stop();
  for (auto& backend : backends) backend->stop();
  obs::set_span_recording(false);

  const std::map<std::uint64_t, TraceSpans> by_trace =
      group_spans(obs::SpanRecorder::instance().drain(1 << 20));
  ASSERT_EQ(by_trace.size(), kQuota);
  std::size_t retried = 0;
  for (const auto& [trace_id, spans] : by_trace) {
    ASSERT_EQ(spans.request.size(), 1u)
        << "retries never duplicate the request span";
    ASSERT_GE(spans.hops.size(), 1u);
    if (spans.hops.size() > 1) ++retried;
    // Every non-final failed hop implies a follow-up attempt: a request
    // that ultimately succeeded must carry one more hop than it has
    // upstream-down/timeout hop verdicts.
    std::size_t failed_hops = 0;
    for (const obs::Span& hop : spans.hops) {
      EXPECT_EQ(hop.parent_span_id, spans.request[0].span_id);
      if (hop.cause ==
              static_cast<std::uint8_t>(net::Status::kRejectUpstreamDown) ||
          hop.cause ==
              static_cast<std::uint8_t>(net::Status::kRejectUpstreamTimeout)) {
        ++failed_hops;
      }
    }
    if (spans.request[0].cause == 0) {
      EXPECT_GE(spans.hops.size(), failed_hops + 1)
          << "a served request's failed hops must each have a retry hop";
    }
  }
  EXPECT_GE(retried, 1u) << "the mid-run kill must strand at least one hop";
  obs::SpanRecorder::instance().clear();
}

#endif  // !defined(RLB_OBS_DISABLED)

TEST(RouterLoopback, StopWithPendingHopsAnswersEverything) {
  // A router stopped with hops in flight must reject them, not leak them:
  // the client sees an answer for every request even though the backend
  // never replies (it is stopped first, taking its queue with it).
  auto backend = std::make_unique<Backend>(/*port=*/0, 0);
  cluster::RouterConfig config = fast_config({backend.get()});
  config.replication = 1;
  config.request_timeout_ms = 10000;  // the sweeper must not beat stop()
  cluster::Router router(config);
  router.start();
  ASSERT_TRUE(wait_live(router, 1));

  net::Client client;
  client.connect("127.0.0.1", router.port());
  client.set_recv_timeout_ms(2000);
  for (std::uint64_t id = 1; id <= 64; ++id) client.send_request(id, id * 17);
  client.flush();

  // Let the router forward, then tear everything down underneath it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  backend->stop();
  router.stop();

  // Drain whatever the router managed to deliver before the listener
  // closed: every frame must be well-formed; no frame may hang the read.
  std::uint64_t answered = 0;
  net::ResponseMsg response;
  try {
    for (;;) {
      const net::ReadOutcome outcome = client.try_read_response(response);
      if (outcome != net::ReadOutcome::kFrame) break;
      ++answered;
    }
  } catch (const std::exception&) {
    ADD_FAILURE() << "malformed frame while draining a stopping router";
  }
  EXPECT_LE(answered, 64u);
  client.close();
}

}  // namespace
}  // namespace rlb
