// Unit tests for the migrating d = 1 balancer (policies/migrating.hpp).
#include "policies/migrating.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/factory.hpp"
#include "workloads/repeated_set.hpp"
#include "workloads/trace.hpp"

namespace rlb::policies {
namespace {

MigratingConfig base_config() {
  MigratingConfig config;
  config.servers = 256;
  config.processing_rate = 2;
  config.queue_capacity = 8;
  config.migration_budget = 16;
  config.seed = 41;
  return config;
}

TEST(Migrating, RejectsBadArguments) {
  MigratingConfig config = base_config();
  config.processing_rate = 0;
  EXPECT_THROW(MigratingBalancer{config}, std::invalid_argument);
  config = base_config();
  config.load_ema_alpha = 0.0;
  EXPECT_THROW(MigratingBalancer{config}, std::invalid_argument);
  config.load_ema_alpha = 1.5;
  EXPECT_THROW(MigratingBalancer{config}, std::invalid_argument);
}

TEST(Migrating, NameAndBasics) {
  MigratingBalancer balancer(base_config());
  EXPECT_EQ(balancer.name(), "migrating-d1");
  EXPECT_EQ(balancer.server_count(), 256u);
  EXPECT_EQ(balancer.migrations_performed(), 0u);
}

TEST(Migrating, HomeIsStableUntilMigrated) {
  MigratingBalancer balancer(base_config());
  const core::ServerId before = balancer.home_of(1234);
  EXPECT_EQ(balancer.home_of(1234), before);
}

TEST(Migrating, ZeroBudgetNeverMigrates) {
  MigratingConfig config = base_config();
  config.migration_budget = 0;
  MigratingBalancer balancer(config);
  workloads::RepeatedSetWorkload workload(256, 1u << 20, 43);
  core::SimConfig sim;
  sim.steps = 100;
  (void)core::simulate(balancer, workload, sim);
  EXPECT_EQ(balancer.migrations_performed(), 0u);
}

TEST(Migrating, MigratesAwayFromOverloadedServers) {
  MigratingBalancer balancer(base_config());
  workloads::RepeatedSetWorkload workload(256, 1u << 20, 45);
  core::SimConfig sim;
  sim.steps = 50;
  (void)core::simulate(balancer, workload, sim);
  // With a random initial placement some servers get > g = 2 chunks, so
  // migrations must fire.
  EXPECT_GT(balancer.migrations_performed(), 0u);
}

TEST(Migrating, ConservationInvariant) {
  MigratingBalancer balancer(base_config());
  workloads::RepeatedSetWorkload workload(256, 1u << 20, 47);
  core::Metrics metrics;
  std::vector<core::ChunkId> batch;
  for (core::Time t = 0; t < 40; ++t) {
    workload.fill_step(t, batch);
    balancer.step(t, batch, metrics);
    ASSERT_EQ(metrics.submitted(),
              metrics.completed() + metrics.rejected() +
                  balancer.total_backlog());
  }
}

TEST(Migrating, ConvergesWhereStaticD1CannotOnTheSameTrace) {
  // The [34] story: static d = 1 rejects a constant fraction forever;
  // migration drives the steady-state rejection rate down by moving chunks
  // off overloaded servers.  Compare late-window rejection on an identical
  // trace.
  workloads::RepeatedSetWorkload source(256, 1u << 20, 49,
                                        /*shuffle_each_step=*/false);
  const workloads::Trace trace = workloads::Trace::record(source, 200);

  auto run = [&](std::size_t budget) {
    MigratingConfig config = base_config();
    config.migration_budget = budget;
    MigratingBalancer balancer(config);
    workloads::TraceWorkload workload(trace);
    core::SeriesRecorder recorder;
    core::SimConfig sim;
    sim.steps = 200;
    sim.recorder = &recorder;
    (void)core::simulate(balancer, workload, sim);
    // Rejection rate over the last 50 steps (steady state).
    return recorder.windowed_rejection_rate(199, 50);
  };

  const double static_d1 = run(0);
  const double migrating = run(16);
  EXPECT_GT(static_d1, 0.01);          // the impossibility in action
  EXPECT_LT(migrating, static_d1 / 4)  // migration rescues d = 1
      << "static " << static_d1 << " migrating " << migrating;
}

TEST(Migrating, FactoryConstructsIt) {
  PolicyConfig config;
  config.servers = 64;
  config.migration_budget = 4;
  config.seed = 51;
  auto policy = make_policy("migrating-d1", config);
  EXPECT_EQ(policy->name(), "migrating-d1");
}

TEST(Migrating, DeterministicReplay) {
  auto run = [] {
    MigratingBalancer balancer(base_config());
    workloads::RepeatedSetWorkload workload(256, 1u << 18, 53);
    core::SimConfig sim;
    sim.steps = 60;
    return core::simulate(balancer, workload, sim);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.metrics.rejected(), b.metrics.rejected());
  EXPECT_EQ(a.max_backlog, b.max_backlog);
}

}  // namespace
}  // namespace rlb::policies
