// Unit tests for table rendering (report/table.hpp).
#include "report/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rlb::report {
namespace {

TEST(Table, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, BuildsRowsFluently) {
  Table table({"a", "b"});
  table.row().cell(1).cell(2.5);
  table.row().cell("x").cell_sci(0.001);
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.column_count(), 2u);
}

TEST(Table, PlainTextContainsHeadersAndCells) {
  Table table({"metric", "value"});
  table.row().cell("rejection").cell(0.25, 2);
  std::ostringstream oss;
  table.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("metric"), std::string::npos);
  EXPECT_NE(out.find("rejection"), std::string::npos);
  EXPECT_NE(out.find("0.25"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);  // underline
}

TEST(Table, CsvQuotesCommas) {
  Table table({"name", "note"});
  table.row().cell("x").cell("a,b");
  std::ostringstream oss;
  table.print_csv(oss);
  EXPECT_NE(oss.str().find("\"a,b\""), std::string::npos);
}

TEST(Table, CsvHasHeaderLine) {
  Table table({"c1", "c2"});
  table.row().cell(1).cell(2);
  std::ostringstream oss;
  table.print_csv(oss);
  EXPECT_EQ(oss.str().substr(0, 6), "c1,c2\n");
}

TEST(Table, MarkdownHasSeparatorRow) {
  Table table({"h"});
  table.row().cell("v");
  std::ostringstream oss;
  table.print_markdown(oss);
  EXPECT_NE(oss.str().find("| --- |"), std::string::npos);
  EXPECT_NE(oss.str().find("| v |"), std::string::npos);
}

TEST(Table, ScientificFormatting) {
  Table table({"p"});
  table.row().cell_sci(0.000123, 2);
  std::ostringstream oss;
  table.print(oss);
  EXPECT_NE(oss.str().find("1.23e-04"), std::string::npos);
}

TEST(Table, MissingCellsRenderEmpty) {
  Table table({"a", "b", "c"});
  table.row().cell("only-one");
  std::ostringstream oss;
  table.print(oss);  // must not crash; short row padded
  EXPECT_NE(oss.str().find("only-one"), std::string::npos);
}

TEST(Table, CellBeforeRowStartsARow) {
  Table table({"a"});
  table.cell("implicit");
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(SectionHelpers, Format) {
  std::ostringstream oss;
  print_section(oss, "Title");
  print_kv(oss, "key", "value");
  EXPECT_NE(oss.str().find("== Title =="), std::string::npos);
  EXPECT_NE(oss.str().find("key: value"), std::string::npos);
}

}  // namespace
}  // namespace rlb::report
