// Unit tests for summary statistics (stats/summary.hpp).
#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rlb::stats {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderror(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmptySides) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  OnlineStats a_copy = a;
  a.merge(b);  // empty rhs: no change
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty lhs: becomes rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), 2.0);
}

TEST(Quantile, EmptyReturnsZero) {
  EXPECT_EQ(quantile({}, 0.5), 0.0);
}

TEST(Quantile, MedianOfOddCount) {
  EXPECT_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  // Sorted: 1, 2, 3, 4.  q=0.5 → position 1.5 → 2.5.
  EXPECT_DOUBLE_EQ(quantile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
}

TEST(Quantile, ExtremesAreMinMax) {
  const std::vector<double> values = {5.0, 1.0, 9.0, 3.0};
  EXPECT_EQ(quantile(values, 0.0), 1.0);
  EXPECT_EQ(quantile(values, 1.0), 9.0);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  const std::vector<double> values = {1.0, 2.0};
  EXPECT_EQ(quantile(values, -1.0), 1.0);
  EXPECT_EQ(quantile(values, 2.0), 2.0);
}

TEST(Quantiles, BatchMatchesSingle) {
  const std::vector<double> values = {7.0, 1.0, 5.0, 3.0, 9.0};
  const auto result = quantiles(values, {0.0, 0.25, 0.5, 0.75, 1.0});
  ASSERT_EQ(result.size(), 5u);
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_DOUBLE_EQ(result[i],
                     quantile(values, std::vector<double>{0.0, 0.25, 0.5,
                                                          0.75, 1.0}[i]));
  }
}

TEST(MeanOf, Basics) {
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_EQ(mean_of({4.0}), 4.0);
  EXPECT_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
}

}  // namespace
}  // namespace rlb::stats
