// Differential tests: core components fuzzed against independent reference
// models.
//
//   * ServerQueue vs std::deque with a capacity guard
//   * Cluster backlog caches vs recomputation from scratch
//   * GreedyBalancer's full step vs a from-scratch reference simulator
//     (separate code path: no Cluster, no sub-step helper — just the
//     model's definition executed naively)
#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "core/cluster.hpp"
#include "core/placement.hpp"
#include "core/server_queue.hpp"
#include "policies/greedy.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace rlb {
namespace {

// ------------------------------------------------------- ServerQueue fuzz
class ServerQueueDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ServerQueueDifferential, MatchesDequeReference) {
  stats::Rng rng(GetParam());
  const std::size_t capacity = 1 + rng.next_below(16);
  core::ServerQueue queue(capacity);
  std::deque<core::Request> reference;

  for (int op = 0; op < 2000; ++op) {
    const std::uint64_t action = rng.next_below(10);
    if (action < 5) {  // push
      const core::Request request{rng.next(), static_cast<core::Time>(op)};
      const bool expect_ok = reference.size() < capacity;
      EXPECT_EQ(queue.push(request), expect_ok);
      if (expect_ok) reference.push_back(request);
    } else if (action < 9) {  // pop
      if (reference.empty()) {
        EXPECT_TRUE(queue.empty());
      } else {
        const core::Request popped = queue.pop();
        EXPECT_EQ(popped.chunk, reference.front().chunk);
        EXPECT_EQ(popped.arrival, reference.front().arrival);
        reference.pop_front();
      }
    } else {  // clear
      EXPECT_EQ(queue.clear(), reference.size());
      reference.clear();
    }
    ASSERT_EQ(queue.size(), reference.size());
    ASSERT_EQ(queue.empty(), reference.empty());
    ASSERT_EQ(queue.full(), reference.size() == capacity);
    if (!reference.empty()) {
      ASSERT_EQ(queue.front().chunk, reference.front().chunk);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServerQueueDifferential,
                         ::testing::Range<std::uint64_t>(1, 9));

// ----------------------------------------------------------- Cluster fuzz
TEST(ClusterDifferential, BacklogCachesMatchRecomputation) {
  stats::Rng rng(99);
  core::Cluster cluster(16, 4);
  std::vector<std::deque<core::Request>> reference(16);

  for (int op = 0; op < 5000; ++op) {
    const auto server = static_cast<core::ServerId>(rng.next_below(16));
    const std::uint64_t action = rng.next_below(10);
    if (action < 5) {
      const core::Request request{rng.next(), 0};
      const bool expect_ok = reference[server].size() < 4;
      ASSERT_EQ(cluster.push(server, request), expect_ok);
      if (expect_ok) reference[server].push_back(request);
    } else if (action < 8) {
      if (!reference[server].empty()) {
        ASSERT_EQ(cluster.pop(server).chunk,
                  reference[server].front().chunk);
        reference[server].pop_front();
      }
    } else if (action < 9) {
      ASSERT_EQ(cluster.clear_server(server), reference[server].size());
      reference[server].clear();
    }
    // Cross-check every cached count against the reference.
    std::uint64_t total = 0;
    for (core::ServerId s = 0; s < 16; ++s) {
      ASSERT_EQ(cluster.backlog(s), reference[s].size());
      total += reference[s].size();
    }
    ASSERT_EQ(cluster.total_backlog(), total);
  }
}

// --------------------------------------------- Greedy reference simulator
// An independent, deliberately naive implementation of the §3 greedy step:
// plain vectors of requests, argmin recomputed per routing decision,
// reject-arrival overflow.
struct ReferenceGreedy {
  std::size_t m;
  unsigned d, g;
  std::size_t q;
  const core::Placement& placement;
  std::vector<std::vector<core::Request>> queues;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;

  ReferenceGreedy(std::size_t m_, unsigned d_, unsigned g_, std::size_t q_,
                  const core::Placement& p)
      : m(m_), d(d_), g(g_), q(q_), placement(p), queues(m_) {}

  void step(core::Time t, const std::vector<core::ChunkId>& requests) {
    std::size_t cursor = 0;
    const std::size_t base = requests.size() / g;
    const std::size_t extra = requests.size() % g;
    for (unsigned sub = 0; sub < g; ++sub) {
      const std::size_t take = base + (sub < extra ? 1 : 0);
      for (std::size_t i = 0; i < take; ++i) {
        const core::ChunkId x = requests[cursor++];
        const core::ChoiceList choices = placement.choices(x);
        core::ServerId best = choices[0];
        for (const core::ServerId candidate : choices) {
          if (queues[candidate].size() < queues[best].size()) {
            best = candidate;
          }
        }
        if (queues[best].size() >= q) {
          ++rejected;
        } else {
          queues[best].push_back(core::Request{x, t});
        }
      }
      for (auto& queue : queues) {
        if (!queue.empty()) {
          queue.erase(queue.begin());
          ++completed;
        }
      }
    }
  }

  std::uint64_t total_backlog() const {
    std::uint64_t total = 0;
    for (const auto& queue : queues) total += queue.size();
    return total;
  }
};

class GreedyDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyDifferential, FullStepMatchesNaiveReference) {
  const std::uint64_t seed = GetParam();
  constexpr std::size_t kM = 32;
  constexpr unsigned kD = 2;
  constexpr unsigned kG = 2;
  constexpr std::size_t kQ = 4;

  policies::SingleQueueConfig config;
  config.servers = kM;
  config.replication = kD;
  config.processing_rate = kG;
  config.queue_capacity = kQ;
  config.seed = seed;
  config.overflow = policies::OverflowPolicy::kRejectArrival;
  policies::GreedyBalancer balancer(config);
  ReferenceGreedy reference(kM, kD, kG, kQ, balancer.placement());

  stats::Rng workload_rng(stats::derive_seed(seed, 5));
  core::Metrics metrics;
  for (core::Time t = 0; t < 60; ++t) {
    // Random batch size up to m of distinct chunks from a small universe
    // (reappearances guaranteed).
    const std::size_t count = 1 + workload_rng.next_below(kM);
    std::vector<core::ChunkId> batch =
        stats::sample_without_replacement(3 * kM, count, workload_rng);

    balancer.step(t, batch, metrics);
    reference.step(t, batch);

    ASSERT_EQ(metrics.rejected(), reference.rejected) << "step " << t;
    ASSERT_EQ(metrics.completed(), reference.completed) << "step " << t;
    ASSERT_EQ(balancer.total_backlog(), reference.total_backlog())
        << "step " << t;
    for (core::ServerId s = 0; s < kM; ++s) {
      ASSERT_EQ(balancer.backlog(s), reference.queues[s].size())
          << "server " << s << " step " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyDifferential,
                         ::testing::Range<std::uint64_t>(20, 32));

}  // namespace
}  // namespace rlb
