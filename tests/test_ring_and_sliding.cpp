// Unit tests for virtual-ring placement (core/placement.hpp kVirtualRing)
// and the sliding-window workload (workloads/sliding_window.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>

#include "core/placement.hpp"
#include "workloads/reappearance_profile.hpp"
#include "workloads/sliding_window.hpp"

namespace rlb {
namespace {

// ----------------------------------------------------------- ring placement
TEST(RingPlacement, ChoicesAreDistinctAndStable) {
  const core::Placement placement(64, 3, 7, core::PlacementMode::kVirtualRing);
  for (core::ChunkId x = 0; x < 300; ++x) {
    const core::ChoiceList first = placement.choices(x);
    ASSERT_EQ(first.size(), 3u);
    std::set<core::ServerId> unique(first.begin(), first.end());
    EXPECT_EQ(unique.size(), 3u);
    const core::ChoiceList second = placement.choices(x);
    for (unsigned i = 0; i < 3; ++i) EXPECT_EQ(first[i], second[i]);
  }
}

TEST(RingPlacement, ChoicesInRange) {
  const core::Placement placement(10, 2, 9, core::PlacementMode::kVirtualRing);
  for (core::ChunkId x = 0; x < 200; ++x) {
    for (const core::ServerId s : placement.choices(x)) EXPECT_LT(s, 10u);
  }
}

TEST(RingPlacement, PrimaryIsRoughlyBalanced) {
  // Virtual nodes smooth the ring: primary ownership should be within a
  // few x of fair share.
  constexpr std::size_t kServers = 16;
  const core::Placement placement(kServers, 2, 11,
                                  core::PlacementMode::kVirtualRing);
  std::vector<int> counts(kServers, 0);
  constexpr int kChunks = 32000;
  for (core::ChunkId x = 0; x < kChunks; ++x) {
    ++counts[placement.choices(x)[0]];
  }
  // With 16 vnodes per server the classic consistent-hashing imbalance is
  // ~1 ± 1/sqrt(v): allow [0.25, 2.5]x fair share.
  const double fair = static_cast<double>(kChunks) / kServers;
  for (const int c : counts) {
    EXPECT_GT(c, fair * 0.25);
    EXPECT_LT(c, fair * 2.5);
  }
}

TEST(RingPlacement, ReplicasAreRingSuccessors) {
  // The defining correlation: two chunks landing in the same ring arc get
  // the SAME successor list.  Verify by checking that the replica-pair
  // distribution is far more concentrated than independent placement's:
  // count distinct (primary -> secondary) pairs across many chunks.
  constexpr std::size_t kServers = 64;
  const core::Placement ring(kServers, 2, 13,
                             core::PlacementMode::kVirtualRing);
  const core::Placement independent(kServers, 2, 13,
                                    core::PlacementMode::kUniform);
  std::set<std::pair<core::ServerId, core::ServerId>> ring_pairs;
  std::set<std::pair<core::ServerId, core::ServerId>> independent_pairs;
  for (core::ChunkId x = 0; x < 4000; ++x) {
    const auto rc = ring.choices(x);
    ring_pairs.emplace(rc[0], rc[1]);
    const auto ic = independent.choices(x);
    independent_pairs.emplace(ic[0], ic[1]);
  }
  // Ring: each server has ~kVirtualNodesPerServer arcs, each with a fixed
  // successor → pair variety is bounded by vnode count, far below the
  // ~m^2 variety of independent placement.
  EXPECT_LT(ring_pairs.size(), independent_pairs.size() / 2);
}

TEST(RingPlacement, FullReplicationCoversAllServers) {
  const core::Placement placement(4, 4, 15,
                                  core::PlacementMode::kVirtualRing);
  for (core::ChunkId x = 0; x < 40; ++x) {
    const core::ChoiceList choices = placement.choices(x);
    std::set<core::ServerId> unique(choices.begin(), choices.end());
    EXPECT_EQ(unique.size(), 4u);
  }
}

// --------------------------------------------------------- sliding window
TEST(SlidingWindow, RejectsBadArguments) {
  EXPECT_THROW(workloads::SlidingWindowWorkload(0, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(workloads::SlidingWindowWorkload(4, 5, 1),
               std::invalid_argument);
}

TEST(SlidingWindow, WindowAdvancesByDrift) {
  workloads::SlidingWindowWorkload workload(8, 2, 3,
                                            /*shuffle_each_step=*/false);
  std::vector<core::ChunkId> step0, step1;
  workload.fill_step(0, step0);
  workload.fill_step(1, step1);
  EXPECT_EQ(step0.front(), 0u);
  EXPECT_EQ(step0.back(), 7u);
  EXPECT_EQ(step1.front(), 2u);
  EXPECT_EQ(step1.back(), 9u);
}

TEST(SlidingWindow, DistinctWithinStep) {
  workloads::SlidingWindowWorkload workload(32, 4, 5);
  std::vector<core::ChunkId> batch;
  for (core::Time t = 0; t < 10; ++t) {
    workload.fill_step(t, batch);
    std::unordered_set<core::ChunkId> unique(batch.begin(), batch.end());
    EXPECT_EQ(unique.size(), 32u);
  }
}

TEST(SlidingWindow, ReappearanceFractionMatchesDriftRatio) {
  // Per step, count - drift chunks are repeats: fraction → 1 - drift/count
  // (after step 0).
  workloads::SlidingWindowWorkload workload(40, 10, 7);
  const workloads::ReappearanceProfile profile =
      workloads::profile_workload(workload, 50);
  const double expected = (1.0 - 10.0 / 40.0) * 49.0 / 50.0;
  EXPECT_NEAR(profile.reappearance_fraction(), expected, 1e-9);
  // Reuse distance is always exactly 1.
  EXPECT_EQ(profile.reuse_distance.quantile(0.99), 1u);
}

TEST(SlidingWindow, ZeroDriftIsRepeatedSet) {
  workloads::SlidingWindowWorkload workload(16, 0, 9);
  const workloads::ReappearanceProfile profile =
      workloads::profile_workload(workload, 20);
  EXPECT_EQ(profile.distinct_chunks, 16u);
  EXPECT_DOUBLE_EQ(profile.reappearance_fraction(), 19.0 / 20.0);
}

TEST(SlidingWindow, FullDriftIsFresh) {
  workloads::SlidingWindowWorkload workload(16, 16, 11);
  const workloads::ReappearanceProfile profile =
      workloads::profile_workload(workload, 20);
  EXPECT_EQ(profile.reappearances, 0u);
}

}  // namespace
}  // namespace rlb
