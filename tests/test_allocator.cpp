// Unit + property tests for TwoChoiceAllocator (cuckoo/allocator.hpp).
//
// The key property test verifies the completeness claim: the eviction walk
// fails exactly when the cuckoo graph is infeasible (some connected
// component has more items than slots).
#include "cuckoo/allocator.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "stats/rng.hpp"

namespace rlb::cuckoo {
namespace {

TEST(TwoChoiceAllocator, RejectsZeroSlots) {
  EXPECT_THROW(TwoChoiceAllocator(0), std::invalid_argument);
}

TEST(TwoChoiceAllocator, SimplePlacements) {
  TwoChoiceAllocator alloc(4);
  EXPECT_EQ(alloc.insert(0, 0, 1), -1);
  EXPECT_EQ(alloc.insert(1, 0, 1), -1);  // relocates item 0 if needed
  EXPECT_EQ(alloc.placed_count(), 2u);
  // Each item must sit at one of its choices.
  for (std::uint32_t item : {0u, 1u}) {
    const std::int32_t slot = alloc.slot_of(item);
    ASSERT_GE(slot, 0);
    EXPECT_TRUE(slot == 0 || slot == 1);
  }
  EXPECT_NE(alloc.slot_of(0), alloc.slot_of(1));
}

TEST(TwoChoiceAllocator, DetectsInfeasibleTriple) {
  // Three items all restricted to slots {0, 1}: only two can fit.
  TwoChoiceAllocator alloc(4);
  EXPECT_EQ(alloc.insert(0, 0, 1), -1);
  EXPECT_EQ(alloc.insert(1, 0, 1), -1);
  const std::int32_t displaced = alloc.insert(2, 0, 1);
  EXPECT_GE(displaced, 0);
  EXPECT_EQ(alloc.placed_count(), 2u);
}

TEST(TwoChoiceAllocator, EvictionChainSucceeds) {
  // item0: {0,1}, item1: {1,2}, item2: {0,1} forces a chain into slot 2.
  TwoChoiceAllocator alloc(3);
  EXPECT_EQ(alloc.insert(0, 0, 1), -1);
  EXPECT_EQ(alloc.insert(1, 1, 2), -1);
  EXPECT_EQ(alloc.insert(2, 0, 1), -1);
  EXPECT_EQ(alloc.placed_count(), 3u);
  // Verify validity: all items placed at one of their choices, all slots
  // distinct.
  std::vector<std::int32_t> slots = {alloc.slot_of(0), alloc.slot_of(1),
                                     alloc.slot_of(2)};
  for (std::int32_t s : slots) EXPECT_GE(s, 0);
  std::sort(slots.begin(), slots.end());
  EXPECT_TRUE(std::unique(slots.begin(), slots.end()) == slots.end());
}

TEST(TwoChoiceAllocator, EqualChoicesItem) {
  TwoChoiceAllocator alloc(3);
  EXPECT_EQ(alloc.insert(0, 1, 1), -1);  // pinned to slot 1
  EXPECT_EQ(alloc.slot_of(0), 1);
  EXPECT_EQ(alloc.insert(1, 1, 2), -1);  // must take slot 2
  EXPECT_EQ(alloc.slot_of(1), 2);
  // A second pinned item on slot 1 is infeasible.
  EXPECT_GE(alloc.insert(2, 1, 1), 0);
}

TEST(TwoChoiceAllocator, ClearResets) {
  TwoChoiceAllocator alloc(2);
  alloc.insert(0, 0, 1);
  alloc.clear();
  EXPECT_EQ(alloc.placed_count(), 0u);
  EXPECT_EQ(alloc.slot_of(0), -1);
  EXPECT_EQ(alloc.insert(1, 0, 0), -1);
}

TEST(TwoChoiceAllocator, ThrowsOnOutOfRangeChoice) {
  TwoChoiceAllocator alloc(2);
  EXPECT_THROW(alloc.insert(0, 0, 5), std::out_of_range);
}

// ---------------------------------------------------------------------
// Property: walk failure <=> graph infeasibility.
//
// Feasibility ground truth: in the cuckoo (multi)graph whose vertices are
// slots and whose edges are items, a set of items is placeable iff every
// connected component has #edges <= #vertices (Hall / pseudo-forest
// condition for 2-choice matchings).
// ---------------------------------------------------------------------

struct Dsu {
  std::vector<std::size_t> parent, vertices, edges;
  explicit Dsu(std::size_t n) : parent(n), vertices(n, 1), edges(n, 0) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void add_edge(std::size_t a, std::size_t b) {
    std::size_t ra = find(a), rb = find(b);
    if (ra == rb) {
      ++edges[ra];
      return;
    }
    parent[rb] = ra;
    vertices[ra] += vertices[rb];
    edges[ra] += edges[rb] + 1;
  }
  bool feasible(std::size_t a) {
    const std::size_t r = find(a);
    return edges[r] <= vertices[r];
  }
  /// Un-count one edge in a's component (an item that ended up unplaced no
  /// longer consumes slot capacity).
  void drop_edge(std::size_t a) { --edges[find(a)]; }
};

class AllocatorFeasibilityProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorFeasibilityProperty, WalkFailureMatchesGraphInfeasibility) {
  stats::Rng rng(GetParam());
  constexpr std::size_t kSlots = 64;
  constexpr std::size_t kItems = 80;  // above capacity → failures guaranteed
  TwoChoiceAllocator alloc(kSlots);
  Dsu dsu(kSlots);
  std::size_t unplaced = 0;

  for (std::uint32_t item = 0; item < kItems; ++item) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(kSlots));
    const auto b = static_cast<std::uint32_t>(rng.next_below(kSlots));
    dsu.add_edge(a, b);
    const std::int32_t displaced = alloc.insert(item, a, b);
    // Invariant: the walk fails exactly when adding this edge made its
    // component infeasible (counting only items that are actually placed).
    EXPECT_EQ(displaced >= 0, !dsu.feasible(a))
        << "item " << item << " seed " << GetParam();
    if (displaced >= 0) {
      ++unplaced;
      dsu.drop_edge(a);  // the unplaced item consumes no capacity
    }
  }
  EXPECT_EQ(alloc.placed_count() + unplaced, kItems);

  // Final assignment validity: every placed item sits at one of its
  // choices, and no slot holds two items.
  std::vector<int> seen(kSlots, 0);
  for (std::uint32_t item = 0; item < kItems; ++item) {
    const std::int32_t slot = alloc.slot_of(item);
    if (slot < 0) continue;
    const auto [a, b] = alloc.choices_of(item);
    EXPECT_TRUE(static_cast<std::uint32_t>(slot) == a ||
                static_cast<std::uint32_t>(slot) == b);
    EXPECT_EQ(seen[slot]++, 0);
    EXPECT_EQ(alloc.item_in(static_cast<std::uint32_t>(slot)),
              static_cast<std::int32_t>(item));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, AllocatorFeasibilityProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace rlb::cuckoo
