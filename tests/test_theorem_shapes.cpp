// One test per paper claim — the consolidated reproduction suite.
//
// Each test exercises the *shape* of a theorem at laptop scale (the bench
// binaries measure the full curves; these are the fast, always-on
// versions).  Test names follow the paper's numbering so a reader can
// navigate from the PDF to the code in one step.
#include <gtest/gtest.h>

#include "ballsbins/strategies.hpp"
#include "core/placement_graph.hpp"
#include "core/simulator.hpp"
#include "cuckoo/offline_assignment.hpp"
#include "policies/delayed_cuckoo.hpp"
#include "policies/factory.hpp"
#include "policies/greedy.hpp"
#include "stats/fit.hpp"
#include "workloads/repeated_set.hpp"
#include "workloads/trace.hpp"

namespace rlb {
namespace {

// ---------------------------------------------------------------- Thm 3.1
TEST(PaperTheorem3_1, GreedyCleanOnAdversarialWorkloadAtLogQueues) {
  // d = g = 6, q = log2(m)+1, repeated set: zero rejections, O(1) average
  // latency, max latency far below the O(log m) ceiling.
  const auto config = policies::GreedyBalancer::theorem_config(512, 6, 6, 1);
  policies::GreedyBalancer balancer(config);
  workloads::RepeatedSetWorkload workload(512, 1ULL << 30, 1);
  core::SimConfig sim;
  sim.steps = 300;
  sim.check_safety = true;
  const core::SimResult result = core::simulate(balancer, workload, sim);
  EXPECT_EQ(result.metrics.rejected(), 0u);
  EXPECT_LT(result.metrics.average_latency(), 1.0);
  EXPECT_LE(result.metrics.max_latency(), config.queue_capacity);
  EXPECT_EQ(result.metrics.safety_violations(), 0u);
}

// ------------------------------------------------------ Def 3.2 / Lem 3.4
TEST(PaperLemma3_4, SafeDistributionMaintainedStepAfterStep) {
  const auto config = policies::GreedyBalancer::theorem_config(1024, 2, 2, 3);
  policies::GreedyBalancer balancer(config);
  workloads::RepeatedSetWorkload workload(1024, 1ULL << 30, 3);
  core::SimConfig sim;
  sim.steps = 250;
  sim.check_safety = true;
  const core::SimResult result = core::simulate(balancer, workload, sim);
  EXPECT_EQ(result.metrics.safety_checks(), 250u);
  EXPECT_EQ(result.metrics.safety_violations(), 0u);
  EXPECT_LE(result.worst_safety_ratio, 1.0);
}

// -------------------------------------------------------------- §1 / [34]
TEST(PaperSection1, D1CollapsesRegardlessOfQueueLength) {
  // Same trace, q = 8 vs q = 128: rejection rate stays Ω(1) at both.
  workloads::RepeatedSetWorkload source(512, 1ULL << 30, 5,
                                        /*shuffle_each_step=*/false);
  const workloads::Trace trace = workloads::Trace::record(source, 300);
  auto rejection_at = [&](std::size_t q) {
    policies::PolicyConfig config;
    config.servers = 512;
    config.processing_rate = 2;
    config.queue_capacity = q;
    config.seed = 5;
    auto balancer = policies::make_policy("greedy-d1", config);
    workloads::TraceWorkload workload(trace);
    core::SimConfig sim;
    sim.steps = 300;
    return core::simulate(*balancer, workload, sim).metrics.rejection_rate();
  };
  const double small_q = rejection_at(8);
  const double large_q = rejection_at(128);
  EXPECT_GT(small_q, 0.02);
  EXPECT_GT(large_q, 0.02);  // 16x more queue did not save it
}

// ---------------------------------------------------------------- Thm 4.3
TEST(PaperTheorem4_3, DelayedCuckooCleanAtLogLogQueues) {
  policies::DelayedCuckooConfig config;
  config.servers = 1024;
  config.processing_rate = 8;
  config.seed = 7;
  policies::DelayedCuckooBalancer balancer(config);
  // q derived = min(4L, 2L) = 2L with L = ceil(log2 log2 m) = 4 → q = 8:
  // exponentially below greedy's log2(m)+1 = 11 per-queue... and the four
  // queues together still hold only Θ(log log m).
  EXPECT_LE(balancer.queue_capacity(), 8u);
  workloads::RepeatedSetWorkload workload(1024, 1ULL << 30, 7);
  core::SimConfig sim;
  sim.steps = 300;
  const core::SimResult result = core::simulate(balancer, workload, sim);
  EXPECT_EQ(result.metrics.rejected(), 0u);
  EXPECT_LT(result.metrics.average_latency(), 1.0);
  EXPECT_LE(result.metrics.max_latency(), 4u);  // O(log log m) territory
  EXPECT_EQ(balancer.assignment_failures(), 0u);
}

// ------------------------------------------------------- Thm 4.1 / Lem 4.2
TEST(PaperLemma4_2, OfflineAssignmentIsConstantPerServer) {
  stats::Rng rng(9);
  constexpr std::size_t kM = 2048;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> choices;
  for (std::size_t i = 0; i < kM; ++i) {
    auto a = static_cast<std::uint32_t>(rng.next_below(kM));
    auto b = static_cast<std::uint32_t>(rng.next_below(kM));
    while (b == a) b = static_cast<std::uint32_t>(rng.next_below(kM));
    choices.emplace_back(a, b);
  }
  const cuckoo::OfflineAssignment assignment =
      cuckoo::assign_offline(choices, kM, 4);
  EXPECT_TRUE(assignment.success);
  std::uint32_t max_count = 0;
  for (const std::uint32_t c : assignment.per_server) {
    max_count = std::max(max_count, c);
  }
  EXPECT_LE(max_count, 3u);  // one per group when no stash spill
}

// ---------------------------------------------------------------- Lem 4.5
TEST(PaperLemma4_5, PQueueArrivalsDeterministicallyBounded) {
  policies::DelayedCuckooConfig config;
  config.servers = 512;
  config.processing_rate = 8;
  config.phase_length = 6;
  config.queue_capacity = 12;
  config.seed = 11;
  policies::DelayedCuckooBalancer balancer(config);
  core::Metrics metrics;
  std::vector<core::ChunkId> batch;
  for (core::ChunkId x = 0; x < 512; ++x) batch.push_back(x);
  for (core::Time t = 0; t < 24; ++t) {
    balancer.step(t, batch, metrics);
    for (const std::uint32_t arrivals : balancer.p_arrivals_this_step()) {
      ASSERT_LE(arrivals, 3u + 4u) << "step " << t;  // 3 groups + stash
    }
  }
}

// ---------------------------------------------------------------- Thm 5.1
TEST(PaperTheorem5_1, SingleStepMaxLoadGrowsAsLogLog) {
  // Mean max load of GREEDY[2] over one step of m fresh requests must
  // GROW with m (fit slope > 0 against log2 log2 m) — the queue floor.
  std::vector<double> ms, max_loads;
  for (const std::size_t m : {1u << 10, 1u << 14, 1u << 18}) {
    double acc = 0;
    constexpr int kTrials = 8;
    for (int trial = 0; trial < kTrials; ++trial) {
      stats::Rng rng(100 + trial);
      acc += ballsbins::max_load(ballsbins::d_choice_greedy(m, m, 2, rng));
    }
    ms.push_back(static_cast<double>(m));
    max_loads.push_back(acc / kTrials);
  }
  EXPECT_GE(max_loads.back(), max_loads.front());
  const stats::LinearFit fit = stats::fit_against_loglog2(ms, max_loads);
  EXPECT_GT(fit.slope, 0.0);
}

// ---------------------------------------------------------------- Thm 5.2
TEST(PaperTheorem5_2, OverloadComponentsExistWithPolynomialProbability) {
  // Count placements containing an over-subscribed component at small m:
  // strictly positive frequency (no algorithm can reject less than the
  // structural overload), decreasing with m (polynomially — see E6 for
  // the fit).
  auto frequency = [](std::size_t m) {
    int hits = 0;
    constexpr int kTrials = 3000;
    for (int trial = 0; trial < kTrials; ++trial) {
      const core::Placement placement(
          m, 2, stats::derive_seed(13, static_cast<std::uint64_t>(trial) * 100 + m));
      const core::PlacementGraphStats stats =
          core::analyze_placement_graph(placement, /*chunk_count=*/16, 1);
      if (stats.max_overload_excess > 0) ++hits;
    }
    return static_cast<double>(hits) / kTrials;
  };
  const double small_m = frequency(16);
  const double large_m = frequency(48);
  EXPECT_GT(small_m, 0.0);
  EXPECT_GT(small_m, large_m);  // decays with m...
  EXPECT_GT(large_m, 0.0);      // ...but never reaches zero (poly floor)
}

// ------------------------------------------------------- Lem 5.3 / Cor 5.4
TEST(PaperCorollary5_4, IsolatedStrategyRejectsWhereGreedyDoesNot) {
  workloads::RepeatedSetWorkload source(512, 1ULL << 30, 15,
                                        /*shuffle_each_step=*/false);
  const workloads::Trace trace = workloads::Trace::record(source, 200);
  auto rejection_for = [&](const std::string& name) {
    policies::PolicyConfig config;
    config.servers = 512;
    config.processing_rate = 2;
    config.queue_capacity = 8;
    config.seed = 15;
    auto balancer = policies::make_policy(name, config);
    workloads::TraceWorkload workload(trace);
    core::SimConfig sim;
    sim.steps = 200;
    return core::simulate(*balancer, workload, sim).metrics.rejection_rate();
  };
  const double greedy = rejection_for("greedy");
  const double isolated = rejection_for("random-of-d");
  EXPECT_EQ(greedy, 0.0);
  EXPECT_GT(isolated, 0.01);
}

}  // namespace
}  // namespace rlb
