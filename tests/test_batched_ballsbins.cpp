// Unit tests for b-batched GREEDY[d] (ballsbins/strategies.hpp).
#include <gtest/gtest.h>

#include <numeric>

#include "ballsbins/strategies.hpp"

namespace rlb::ballsbins {
namespace {

std::uint64_t total(const std::vector<std::uint32_t>& loads) {
  return std::accumulate(loads.begin(), loads.end(), std::uint64_t{0});
}

TEST(BatchedGreedyBins, RejectsBadArguments) {
  stats::Rng rng(1);
  EXPECT_THROW(batched_d_choice_greedy(0, 5, 2, 4, rng),
               std::invalid_argument);
  EXPECT_THROW(batched_d_choice_greedy(4, 5, 0, 4, rng),
               std::invalid_argument);
  EXPECT_THROW(batched_d_choice_greedy(4, 5, 2, 0, rng),
               std::invalid_argument);
}

TEST(BatchedGreedyBins, ConservesBalls) {
  stats::Rng rng(2);
  EXPECT_EQ(total(batched_d_choice_greedy(32, 1000, 2, 64, rng)), 1000u);
  EXPECT_EQ(total(batched_d_choice_greedy(32, 7, 2, 64, rng)), 7u);  // short
}

TEST(BatchedGreedyBins, BatchOneMatchesSequentialDistributionally) {
  // batch = 1 IS sequential greedy (snapshot refreshed per ball); compare
  // average max loads over trials.
  constexpr std::size_t kBins = 1024;
  double batched = 0, sequential = 0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    stats::Rng r1(100 + t), r2(200 + t);
    batched += max_load(batched_d_choice_greedy(kBins, kBins, 2, 1, r1));
    sequential += max_load(d_choice_greedy(kBins, kBins, 2, r2));
  }
  EXPECT_NEAR(batched / kTrials, sequential / kTrials, 1.0);
}

TEST(BatchedGreedyBins, GapGrowsWithBatchSize) {
  // The tower-of-two-choices effect: m-sized batches behave like
  // one-choice within a batch, so the gap grows from ~loglog m (batch 1)
  // toward the one-choice scale (batch >> m).
  constexpr std::size_t kBins = 1024;
  constexpr std::size_t kBalls = 16 * kBins;
  auto mean_gap = [&](std::size_t batch) {
    double acc = 0;
    constexpr int kTrials = 8;
    for (int t = 0; t < kTrials; ++t) {
      stats::Rng rng(300 + t);
      acc += load_gap(batched_d_choice_greedy(kBins, kBalls, 2, batch, rng));
    }
    return acc / kTrials;
  };
  const double small_batch = mean_gap(1);
  const double medium_batch = mean_gap(kBins);
  const double huge_batch = mean_gap(8 * kBins);
  EXPECT_LE(small_batch, medium_batch + 0.5);
  EXPECT_LT(medium_batch, huge_batch);
  EXPECT_GT(huge_batch, small_batch + 2.0);
}

TEST(BatchedGreedyBins, WholeRunInOneBatchIsOneChoiceLike) {
  // With batch >= balls, every decision sees the all-zero snapshot: for
  // d = 2 the target is min(u1, u2)-biased but ignores actual loads — the
  // max load must far exceed sequential greedy's.
  constexpr std::size_t kBins = 2048;
  stats::Rng r1(7), r2(7);
  const auto one_batch =
      batched_d_choice_greedy(kBins, kBins, 2, kBins * 2, r1);
  const auto sequential = d_choice_greedy(kBins, kBins, 2, r2);
  EXPECT_GT(max_load(one_batch), max_load(sequential));
}

}  // namespace
}  // namespace rlb::ballsbins
