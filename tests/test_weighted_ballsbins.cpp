// Unit tests for weighted GREEDY[d] (ballsbins/strategies.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "ballsbins/strategies.hpp"
#include "stats/distributions.hpp"

namespace rlb::ballsbins {
namespace {

TEST(WeightedGreedy, RejectsBadArguments) {
  stats::Rng rng(1);
  EXPECT_THROW(weighted_d_choice_greedy(0, {1.0}, 2, rng),
               std::invalid_argument);
  EXPECT_THROW(weighted_d_choice_greedy(4, {1.0}, 0, rng),
               std::invalid_argument);
}

TEST(WeightedGreedy, ConservesTotalWeight) {
  stats::Rng rng(2);
  std::vector<double> weights = {1.0, 2.5, 0.5, 3.0};
  const auto loads = weighted_d_choice_greedy(8, weights, 2, rng);
  double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 7.0);
}

TEST(WeightedGreedy, UnitWeightsMatchUnweightedDistributionally) {
  constexpr std::size_t kBins = 512;
  std::vector<double> weights(kBins, 1.0);
  double weighted_mean = 0, unit_mean = 0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    stats::Rng r1(10 + t), r2(20 + t);
    weighted_mean += weighted_gap(
        weighted_d_choice_greedy(kBins, weights, 2, r1));
    unit_mean += load_gap(d_choice_greedy(kBins, kBins, 2, r2));
  }
  EXPECT_NEAR(weighted_mean / kTrials, unit_mean / kTrials, 1.0);
}

TEST(WeightedGreedy, TwoChoicesBeatOneOnLightTailedWeights) {
  // Exponential (light-tailed) weights: two-choice keeps the weighted gap
  // well below one-choice, as in the unit-weight case.
  constexpr std::size_t kBins = 512;
  stats::Rng weight_rng(5);
  std::vector<double> weights;
  for (int i = 0; i < 8192; ++i) {
    weights.push_back(-std::log(1.0 - weight_rng.next_double()));
  }
  double one = 0, two = 0;
  constexpr int kTrials = 8;
  for (int t = 0; t < kTrials; ++t) {
    stats::Rng r1(100 + t), r2(100 + t);
    one += weighted_gap(weighted_d_choice_greedy(kBins, weights, 1, r1));
    two += weighted_gap(weighted_d_choice_greedy(kBins, weights, 2, r2));
  }
  EXPECT_LT(two, one * 0.6);
}

TEST(WeightedGreedy, HeavyTailGapIsMaxWeightDominatedForBothStrategies) {
  // Talwar–Wieder's caveat: with heavy-tailed weights the gap is
  // Θ(max weight) no matter how many choices — the giant ball sits
  // somewhere.  Both strategies' gaps are within 2x of the max weight.
  constexpr std::size_t kBins = 512;
  stats::Rng weight_rng(6);
  std::vector<double> weights;
  double max_weight = 0;
  for (int i = 0; i < 4096; ++i) {
    const double w = 1.0 / std::pow(weight_rng.next_double() + 1e-9, 0.7);
    weights.push_back(w);
    max_weight = std::max(max_weight, w);
  }
  stats::Rng r1(7), r2(7);
  const double one =
      weighted_gap(weighted_d_choice_greedy(kBins, weights, 1, r1));
  const double two =
      weighted_gap(weighted_d_choice_greedy(kBins, weights, 2, r2));
  EXPECT_GT(one, max_weight * 0.4);
  EXPECT_GT(two, max_weight * 0.4);
}

TEST(WeightedGap, Basics) {
  EXPECT_EQ(weighted_gap({}), 0.0);
  EXPECT_DOUBLE_EQ(weighted_gap({2.0, 2.0, 2.0, 6.0}), 3.0);
  EXPECT_DOUBLE_EQ(weighted_gap({5.0}), 0.0);
}

TEST(WeightedGreedy, SingleGiantBallDominatesGap) {
  stats::Rng rng(7);
  std::vector<double> weights(100, 0.01);
  weights.push_back(50.0);
  const auto loads = weighted_d_choice_greedy(10, weights, 2, rng);
  // The giant sits somewhere; gap ≈ its weight minus ~average.
  EXPECT_GT(weighted_gap(loads), 40.0);
}

}  // namespace
}  // namespace rlb::ballsbins
