// NetServer data-plane regression tests: the slow-consumer backpressure
// cap (a peer that never reads must be disconnected, not buffered without
// bound) and the batched request handler path.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"

namespace rlb::net {
namespace {

using namespace std::chrono_literals;

/// Raw connected socket (bypasses net::Client so the test can refuse to
/// read responses and keep a tiny receive window).
int raw_connect(std::uint16_t port, int rcvbuf) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (rcvbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(NetServer, SlowConsumerIsDisconnected) {
  ServerConfig config;
  config.max_outbound_bytes = 32 << 10;  // tiny cap so the test is fast
  config.sndbuf = 4096;                  // force kernel-side backpressure
  NetServer server(config,
                   [&server](std::uint64_t token, const RequestMsg& request) {
                     ResponseMsg msg;
                     msg.request_id = request.request_id;
                     msg.status = Status::kOk;
                     server.send_response(token, msg);
                   });
  server.start();

  const int fd = raw_connect(server.port(), 4096);
  ASSERT_GE(fd, 0);
  // Pipeline plenty of requests and never read a byte of the responses:
  // the connection's outbound queue must blow through the cap.
  std::vector<std::uint8_t> wire;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    encode_request(RequestMsg{i, i}, wire);
  }
  bool disconnected = false;
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (std::chrono::steady_clock::now() < deadline) {
    ssize_t n = ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      disconnected = true;
      break;
    }
    if (server.stats().slow_consumer_drops > 0) break;
    std::this_thread::sleep_for(1ms);
  }
  const auto stats_deadline = std::chrono::steady_clock::now() + 10s;
  while (server.stats().slow_consumer_drops == 0 &&
         std::chrono::steady_clock::now() < stats_deadline) {
    std::this_thread::sleep_for(1ms);
  }
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.slow_consumer_drops, 1u)
      << "disconnected=" << disconnected;
  ::close(fd);
  server.stop();
}

TEST(NetServer, WellBehavedConsumerStaysConnected) {
  // Same cap, but a reader that drains responses must never trip it.
  ServerConfig config;
  config.max_outbound_bytes = 32 << 10;
  config.sndbuf = 4096;
  NetServer server(config,
                   [&server](std::uint64_t token, const RequestMsg& request) {
                     ResponseMsg msg;
                     msg.request_id = request.request_id;
                     msg.status = Status::kOk;
                     server.send_response(token, msg);
                   });
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  constexpr std::uint64_t kRequests = 5000;
  constexpr std::uint64_t kWindow = 64;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  ResponseMsg response;
  while (received < kRequests) {
    while (sent < kRequests && sent - received < kWindow) {
      client.send_request(sent++, 42);
    }
    client.flush();
    ASSERT_TRUE(client.read_response(response));
    ++received;
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.slow_consumer_drops, 0u);
  EXPECT_EQ(stats.responses_sent, kRequests);
  server.stop();
}

TEST(NetServer, BatchHandlerSeesEveryRequestExactlyOnce) {
  ServerConfig config;
  std::mutex mu;
  std::set<std::uint64_t> seen;
  std::size_t batches = 0;
  std::size_t max_batch = 0;
  NetServer server(config, /*on_request=*/nullptr);
  server.set_request_batch_handler(
      [&](const ServerRequest* batch, std::size_t count) {
        {
          std::lock_guard<std::mutex> lock(mu);
          ++batches;
          max_batch = std::max(max_batch, count);
          for (std::size_t i = 0; i < count; ++i) {
            ASSERT_TRUE(seen.insert(batch[i].msg.request_id).second);
          }
        }
        for (std::size_t i = 0; i < count; ++i) {
          ResponseMsg msg;
          msg.request_id = batch[i].msg.request_id;
          msg.status = Status::kOk;
          server.send_response(batch[i].conn_token, msg);
        }
      });
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  constexpr std::uint64_t kRequests = 4000;
  // One big pipelined burst: the loop should coalesce multiple frames per
  // wakeup into multi-request batches.
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    client.send_request(i, i * 3);
  }
  client.flush();
  ResponseMsg response;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.read_response(response));
    EXPECT_EQ(response.status, Status::kOk);
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(seen.size(), kRequests);
    EXPECT_LE(batches, kRequests);
    EXPECT_GE(max_batch, 1u);
  }
  EXPECT_EQ(server.stats().requests_decoded, kRequests);
  server.stop();
}

TEST(NetServer, PollBufferedResponseDrainsWithoutBlocking) {
  // Burst-pipelining clients drain coalesced responses via
  // poll_buffered_response() (no syscall) after one blocking read: every
  // response must come out exactly once and in order, and the poll must
  // return false — not block — once the buffer runs dry.
  ServerConfig config;
  NetServer server(config,
                   [&server](std::uint64_t token, const RequestMsg& request) {
                     ResponseMsg msg;
                     msg.request_id = request.request_id;
                     msg.status = Status::kOk;
                     server.send_response(token, msg);
                   });
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  constexpr std::uint64_t kRequests = 1000;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    client.send_request(i, i);
  }
  client.flush();
  std::uint64_t received = 0;
  ResponseMsg response;
  while (received < kRequests) {
    ASSERT_TRUE(client.read_response(response));
    for (;;) {
      EXPECT_EQ(response.request_id, received);
      ++received;
      if (received >= kRequests || !client.poll_buffered_response(response)) {
        break;
      }
    }
  }
  EXPECT_EQ(received, kRequests);
  // Dry buffer: poll must say "nothing" without touching the socket.
  EXPECT_FALSE(client.poll_buffered_response(response));
  server.stop();
}

}  // namespace
}  // namespace rlb::net
