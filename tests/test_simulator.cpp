// Unit tests for the simulation loop (core/simulator.hpp).
#include "core/simulator.hpp"

#include <gtest/gtest.h>

#include "policies/greedy.hpp"
#include "workloads/fresh_uniform.hpp"
#include "workloads/repeated_set.hpp"

namespace rlb::core {
namespace {

policies::SingleQueueConfig config_for(std::size_t servers) {
  policies::SingleQueueConfig config;
  config.servers = servers;
  config.replication = 2;
  config.processing_rate = 2;
  config.queue_capacity = 16;
  config.seed = 9;
  return config;
}

TEST(Simulator, RunsRequestedSteps) {
  policies::GreedyBalancer balancer(config_for(32));
  workloads::FreshUniformWorkload workload(32);
  SimConfig sim;
  sim.steps = 17;
  const SimResult result = simulate(balancer, workload, sim);
  EXPECT_EQ(result.steps_run, 17u);
  EXPECT_EQ(result.metrics.submitted(), 32u * 17);
}

TEST(Simulator, ZeroStepsIsEmptyRun) {
  policies::GreedyBalancer balancer(config_for(8));
  workloads::FreshUniformWorkload workload(8);
  SimConfig sim;
  sim.steps = 0;
  const SimResult result = simulate(balancer, workload, sim);
  EXPECT_EQ(result.metrics.submitted(), 0u);
  EXPECT_EQ(result.steps_run, 0u);
}

TEST(Simulator, FlushEveryDropsBacklogPeriodically) {
  // g = 1, heavy repeated load: backlog builds up; with flush_every = 5 the
  // queues reset and drops are recorded.
  policies::SingleQueueConfig config = config_for(16);
  config.processing_rate = 1;
  config.queue_capacity = 32;
  policies::GreedyBalancer balancer(config);
  workloads::RepeatedSetWorkload workload(32, 4096, 3);  // 2 requests/server
  SimConfig sim;
  sim.steps = 20;
  sim.flush_every = 5;
  const SimResult result = simulate(balancer, workload, sim);
  EXPECT_GT(result.metrics.dropped_from_queue(), 0u);
  // After the final step's flush boundary (step 20 % 5 == 0), empty queues.
  EXPECT_EQ(balancer.total_backlog(), 0u);
}

TEST(Simulator, SafetyCheckingCountsChecks) {
  policies::GreedyBalancer balancer(config_for(64));
  workloads::FreshUniformWorkload workload(64);
  SimConfig sim;
  sim.steps = 25;
  sim.check_safety = true;
  const SimResult result = simulate(balancer, workload, sim);
  EXPECT_EQ(result.metrics.safety_checks(), 25u);
  EXPECT_GE(result.worst_safety_ratio, 0.0);
}

TEST(Simulator, BacklogSamplingTracksMax) {
  policies::SingleQueueConfig config = config_for(8);
  config.processing_rate = 1;
  config.queue_capacity = 64;
  policies::GreedyBalancer balancer(config);
  workloads::RepeatedSetWorkload workload(24, 4096, 5);  // 3 requests/server
  SimConfig sim;
  sim.steps = 10;
  const SimResult result = simulate(balancer, workload, sim);
  EXPECT_GT(result.max_backlog, 0u);
  EXPECT_EQ(result.metrics.backlog_stats().count(), 8u * 10);
  EXPECT_EQ(result.max_backlog,
            static_cast<std::uint64_t>(result.metrics.backlog_stats().max()));
}

TEST(Simulator, SamplingCanBeDisabled) {
  policies::GreedyBalancer balancer(config_for(8));
  workloads::FreshUniformWorkload workload(8);
  SimConfig sim;
  sim.steps = 5;
  sim.sample_backlogs = false;
  const SimResult result = simulate(balancer, workload, sim);
  EXPECT_EQ(result.metrics.backlog_stats().count(), 0u);
  EXPECT_EQ(result.max_backlog, 0u);
}

TEST(Simulator, ConservationAcrossWholeRun) {
  policies::GreedyBalancer balancer(config_for(64));
  workloads::RepeatedSetWorkload workload(64, 4096, 7);
  SimConfig sim;
  sim.steps = 100;
  const SimResult result = simulate(balancer, workload, sim);
  EXPECT_EQ(result.metrics.submitted(),
            result.metrics.completed() + result.metrics.rejected() +
                balancer.total_backlog());
}

}  // namespace
}  // namespace rlb::core
