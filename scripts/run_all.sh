#!/usr/bin/env bash
# Build, test, and run the full experiment suite.
#
#   scripts/run_all.sh              # text tables to results/
#   scripts/run_all.sh --format csv # CSV tables (for plotting)
#
# Extra arguments are passed through to every bench binary, so
# `scripts/run_all.sh --probes` also works.
set -euo pipefail
cd "$(dirname "$0")/.."

FORMAT_ARGS=("$@")

# Respect an existing build directory's generator; otherwise prefer Ninja
# when available and fall back to CMake's default (usually Makefiles).
GENERATOR_ARGS=()
if [ ! -f build/CMakeCache.txt ] && command -v ninja > /dev/null 2>&1; then
  GENERATOR_ARGS=(-G Ninja)
fi
cmake -B build "${GENERATOR_ARGS[@]}"
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

mkdir -p results
for bench in build/bench/bench_*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "== $name =="
  "$bench" "${FORMAT_ARGS[@]}" | tee "results/$name.txt"
done

echo
echo "All experiments complete; outputs in results/."
