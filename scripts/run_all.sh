#!/usr/bin/env bash
# Build, test, and run the full experiment suite.
#
#   scripts/run_all.sh              # text tables to results/
#   scripts/run_all.sh --format csv # CSV tables (for plotting)
set -euo pipefail
cd "$(dirname "$0")/.."

FORMAT_ARGS=("$@")

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for bench in build/bench/bench_*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "== $name =="
  "$bench" "${FORMAT_ARGS[@]}" | tee "results/$name.txt"
done

echo
echo "All experiments complete; outputs in results/."
