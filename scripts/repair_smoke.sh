#!/usr/bin/env bash
# Multi-process smoke run for the self-healing repair plane
# (docs/CLUSTER.md): one rlb_router with --repair in front of four rlbd
# backends on loopback (d=2), driven by rlb_loadgen, in five phases:
#
#   phase 1 — healthy cluster baseline: zero errors, zero upstream-down
#             rejects, placement epoch still 0 (nothing to repair).
#   phase 2 — SIGKILL one backend mid-run: the run must complete with
#             bounded, cause-labelled rejections only; then the
#             coordinator must re-replicate every chunk that lost a
#             replica (pending drains to 0, zero failed migrations) and
#             commit the epochs.  Conservation: the bytes the surviving
#             backends ingested must equal the bytes the coordinator
#             accounted as sent, and every backend must converge to the
#             router's placement epoch via the heartbeat piggyback.
#   phase 3 — post-repair run: replication is restored, so a full run
#             must see ZERO upstream-down and ZERO upstream-timeout
#             rejects (the "no data-loss rejections" guarantee).
#   phase 4 — SIGKILL a second backend mid-run: every chunk still has a
#             live replica (phase 2 moved them off the first victim), so
#             no request may be lost; repair then re-replicates onto the
#             two survivors.
#   phase 5 — final run on the twice-repaired cluster: again zero
#             upstream-down / upstream-timeout rejects, zero errors.
#
# The repair plane does not depend on the observability build flavour:
# this script asserts identically with -DRLB_OBS_ENABLED=ON or OFF (CI
# runs it in both jobs).
#
# Usage: scripts/repair_smoke.sh [build-dir]      (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
RLBD="$BUILD_DIR/apps/rlbd"
ROUTER="$BUILD_DIR/apps/rlb_router"
LOADGEN="$BUILD_DIR/apps/rlb_loadgen"
RLB_STAT="$BUILD_DIR/apps/rlb_stat"

BASE_PORT="${RLB_REPAIR_SMOKE_PORT:-4940}"
ROUTER_PORT="$BASE_PORT"
B1_PORT=$((BASE_PORT + 1))
B2_PORT=$((BASE_PORT + 2))
B3_PORT=$((BASE_PORT + 3))
B4_PORT=$((BASE_PORT + 4))
BACKENDS="127.0.0.1:$B1_PORT,127.0.0.1:$B2_PORT,127.0.0.1:$B3_PORT,127.0.0.1:$B4_PORT"

P1_JSON="$(mktemp /tmp/rlb_repair_p1.XXXXXX.json)"
P2_JSON="$(mktemp /tmp/rlb_repair_p2.XXXXXX.json)"
P3_JSON="$(mktemp /tmp/rlb_repair_p3.XXXXXX.json)"
P4_JSON="$(mktemp /tmp/rlb_repair_p4.XXXXXX.json)"
P5_JSON="$(mktemp /tmp/rlb_repair_p5.XXXXXX.json)"
ROUTER_JSON="$(mktemp /tmp/rlb_repair_router.XXXXXX.json)"
CLUSTER_JSON="$(mktemp /tmp/rlb_repair_stat.XXXXXX.json)"
TMPFILES=("$P1_JSON" "$P2_JSON" "$P3_JSON" "$P4_JSON" "$P5_JSON" \
          "$ROUTER_JSON" "$CLUSTER_JSON")

for bin in "$RLBD" "$ROUTER" "$LOADGEN" "$RLB_STAT"; do
  if [[ ! -x "$bin" ]]; then
    echo "repair_smoke: missing binary $bin (build first)" >&2
    exit 1
  fi
done

start_backend() {  # start_backend <port> <backend-id> -> pid
  # Detach stdout/stderr: the caller captures this function with $(...),
  # and an inherited pipe would make the substitution block until the
  # daemon exits.
  "$RLBD" --policy greedy --m 32 --d 2 --g 4 --shards 2 \
    --port "$1" --backend-id "$2" >/dev/null 2>&1 &
  echo $!
}

B1_PID="$(start_backend "$B1_PORT" 1)"
B2_PID="$(start_backend "$B2_PORT" 2)"
B3_PID="$(start_backend "$B3_PORT" 3)"
B4_PID="$(start_backend "$B4_PORT" 4)"
ROUTER_PID=""

# The daemons are not children of this shell (start_backend forks them in
# a command-substitution subshell), so `wait` cannot reap them; poll.
wait_gone() {  # wait_gone <pid>
  for _ in $(seq 1 100); do
    kill -0 "$1" 2>/dev/null || return 0
    sleep 0.1
  done
  echo "repair_smoke: pid $1 did not exit" >&2
  return 1
}

cleanup() {
  for pid in "$ROUTER_PID" "$B1_PID" "$B2_PID" "$B3_PID" "$B4_PID"; do
    [[ -n "$pid" ]] && kill -INT "$pid" 2>/dev/null || true
  done
  for pid in "$ROUTER_PID" "$B1_PID" "$B2_PID" "$B3_PID" "$B4_PID"; do
    [[ -n "$pid" ]] && wait_gone "$pid" || true
  done
  rm -f "${TMPFILES[@]}"
}
trap cleanup EXIT

wait_port() {  # wait_port <port>
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
      exec 3>&- 3<&- || true
      return 0
    fi
    sleep 0.1
  done
  echo "repair_smoke: port $1 never came up" >&2
  return 1
}

wait_port "$B1_PORT"; wait_port "$B2_PORT"
wait_port "$B3_PORT"; wait_port "$B4_PORT"

# Grace is deliberately generous (500ms on a 50ms heartbeat): a live
# backend that misses heartbeats under full load must flap back up before
# the planner treats it as lost, otherwise CI would see spurious
# migrations off healthy nodes.
"$ROUTER" --backends "$BACKENDS" --d 2 --chunks 4096 \
  --heartbeat-ms 50 --timeout-ms 2000 --port "$ROUTER_PORT" \
  --repair --repair-concurrent 4 --repair-bytes-per-sec $((8 * 1024 * 1024)) \
  --repair-chunk-bytes 512 --repair-grace-ms 500 --repair-scan-ms 50 &
ROUTER_PID=$!
wait_port "$ROUTER_PORT"

wait_all_live() {
  for _ in $(seq 1 100); do
    if "$RLB_STAT" --port "$ROUTER_PORT" --json 2>/dev/null \
        | python3 -c '
import json, sys
snap = json.load(sys.stdin)
sys.exit(0 if int(snap["servers_down"]) == 0 and int(snap["shards"]) == 4
         else 1)
' ; then
      return 0
    fi
    sleep 0.1
  done
  echo "repair_smoke: backends never became live at the router" >&2
  return 1
}
wait_all_live

# Repair convergence gate: the coordinator has committed at least
# <min-done> migrations in total and drained its work queue.  Between the
# SIGKILL and the grace expiry done stays below the floor, so the gate
# cannot fire early.
wait_repair_done() {  # wait_repair_done <min-done>
  for _ in $(seq 1 600); do
    if "$RLB_STAT" --port "$ROUTER_PORT" --json 2>/dev/null \
        | python3 -c '
import json, sys
snap = json.load(sys.stdin)
r = snap["repair"]
sys.exit(0 if int(r["migrations_done"]) >= int(sys.argv[1])
         and int(r["chunks_pending"]) == 0
         and int(r["migrations_inflight"]) == 0
         and int(snap["placement_epoch"]) >= 1
         else 1)
' "$1"; then
      return 0
    fi
    sleep 0.1
  done
  echo "repair_smoke: repair never converged (pending stuck?)" >&2
  return 1
}

# Epoch cutover gate: every *reachable* backend must have adopted the
# router's placement epoch from the heartbeat piggyback.
wait_epoch_converged() {  # wait_epoch_converged <endpoints>
  for _ in $(seq 1 100); do
    if "$RLB_STAT" --cluster "$1" --json 2>/dev/null \
        | python3 -c '
import json, sys
cluster = json.load(sys.stdin)
router = [r for r in cluster["endpoints"]
          if r["reachable"] and r["snapshot"]["role"] == "router"]
backends = [r for r in cluster["endpoints"]
            if r["reachable"] and r["snapshot"]["role"] == "backend"]
sys.exit(0 if router and backends and all(
    int(b["snapshot"]["placement_epoch"])
    == int(router[0]["snapshot"]["placement_epoch"]) for b in backends)
         else 1)
'; then
      return 0
    fi
    sleep 0.1
  done
  echo "repair_smoke: backends never adopted the router epoch" >&2
  return 1
}

# ---- phase 1: healthy baseline, epoch still zero -------------------------
"$LOADGEN" --port "$ROUTER_PORT" --connections 4 --concurrency 32 \
  --requests 50000 --workload uniform --json "$P1_JSON"
"$RLB_STAT" --port "$ROUTER_PORT" --json > "$ROUTER_JSON"

python3 - "$P1_JSON" "$ROUTER_JSON" <<'EOF'
import json, sys
summary = json.load(open(sys.argv[1]))
assert int(summary["protocol_errors"]) == 0, "phase 1: protocol errors"
assert int(summary["errors"]) == 0, "phase 1: transport errors"
answered = int(summary["ok"]) + int(summary["rejected"])
assert answered == 50000, f"phase 1: answered {answered} != 50000"
assert int(summary["rejected_upstream_down"]) == 0, \
    "phase 1: upstream-down rejects with every backend live"
router = json.load(open(sys.argv[2]))
assert int(router["placement_epoch"]) == 0, \
    f"phase 1: epoch {router['placement_epoch']} committed with no failure"
assert int(router["repair"]["migrations_done"]) == 0, \
    "phase 1: migrations ran on a healthy cluster"
print(f"repair_smoke: phase 1 OK — {answered} answered, epoch 0, "
      f"no repair activity on a healthy cluster")
EOF

# ---- phase 2: SIGKILL one backend mid-run, then full re-replication ------
# 300k requests keep the run alive well past the 0.4s kill point, so the
# SIGKILL always lands with hops in flight.
"$LOADGEN" --port "$ROUTER_PORT" --connections 4 --concurrency 32 \
  --requests 300000 --workload uniform --json "$P2_JSON" &
LOADGEN_PID=$!
sleep 0.4
kill -9 "$B4_PID"
wait_gone "$B4_PID"
B4_PID=""
wait "$LOADGEN_PID"

kill -0 "$ROUTER_PID" 2>/dev/null || {
  echo "repair_smoke: router died after backend SIGKILL" >&2; exit 1; }

python3 - "$P2_JSON" <<'EOF'
import json, sys
summary = json.load(open(sys.argv[1]))
assert int(summary["protocol_errors"]) == 0, "phase 2: protocol errors"
assert int(summary["errors"]) == 0, \
    "phase 2: transport errors (router must answer, not drop)"
answered = int(summary["ok"]) + int(summary["rejected"])
assert answered == 300000, f"phase 2: answered {answered} != 300000"
ok = int(summary["ok"])
assert ok >= answered // 2, f"phase 2: only {ok}/{answered} served"
print(f"repair_smoke: phase 2 kill OK — {ok} served / "
      f"{int(summary['rejected'])} rejected "
      f"(down-cause {summary['rejected_upstream_down']}), no errors")
EOF

wait_repair_done 1
LIVE_ENDPOINTS="127.0.0.1:$ROUTER_PORT,127.0.0.1:$B1_PORT,127.0.0.1:$B2_PORT,127.0.0.1:$B3_PORT"
wait_epoch_converged "$LIVE_ENDPOINTS"
"$RLB_STAT" --cluster "$LIVE_ENDPOINTS" --json > "$CLUSTER_JSON"

python3 - "$CLUSTER_JSON" <<'EOF'
import json, sys
cluster = json.load(open(sys.argv[1]))
rows = [r for r in cluster["endpoints"] if r["reachable"]]
router = next(r["snapshot"] for r in rows if r["snapshot"]["role"] == "router")
backends = [r["snapshot"] for r in rows if r["snapshot"]["role"] == "backend"]
assert len(backends) == 3, f"expected 3 surviving backends, saw {len(backends)}"
rep = router["repair"]
assert int(rep["migrations_failed"]) == 0, \
    f"phase 2: {rep['migrations_failed']} migrations failed"
assert int(rep["migrations_done"]) >= 1 and int(rep["chunks_pending"]) == 0
epoch = int(router["placement_epoch"])
assert epoch >= 1, "phase 2: repair finished without committing an epoch"

# Conservation: every byte the coordinator accounted as sent must have
# been ingested by a surviving backend, and each committed migration must
# appear exactly once as an inbound migration somewhere.
bytes_in = sum(int(b["repair"]["migration_bytes_in"]) for b in backends)
migs_in = sum(int(b["repair"]["migrations_in"]) for b in backends)
assert bytes_in == int(rep["bytes_sent"]), (
    f"conservation: backends ingested {bytes_in} bytes, "
    f"coordinator sent {rep['bytes_sent']}")
assert migs_in == int(rep["migrations_done"]), (
    f"conservation: backends saw {migs_in} inbound migrations, "
    f"coordinator committed {rep['migrations_done']}")
for b in backends:
    assert int(b["placement_epoch"]) == epoch, (
        f"backend {b['backend_id']} on epoch {b['placement_epoch']}, "
        f"router on {epoch}")
print(f"repair_smoke: phase 2 repair OK — {rep['migrations_done']} chunks "
      f"re-replicated ({rep['bytes_sent']} bytes, 0 failed), epoch {epoch} "
      f"adopted by all survivors")
EOF
P2_DONE="$(python3 -c "import json
c = json.load(open('$CLUSTER_JSON'))
r = next(e for e in c['endpoints']
         if e['reachable'] and e['snapshot']['role'] == 'router')
print(r['snapshot']['repair']['migrations_done'])")"

# ---- phase 3: replication restored => zero data-loss rejections ----------
"$LOADGEN" --port "$ROUTER_PORT" --connections 4 --concurrency 32 \
  --requests 100000 --workload uniform --json "$P3_JSON"

python3 - "$P3_JSON" <<'EOF'
import json, sys
summary = json.load(open(sys.argv[1]))
assert int(summary["protocol_errors"]) == 0, "phase 3: protocol errors"
assert int(summary["errors"]) == 0, "phase 3: transport errors"
answered = int(summary["ok"]) + int(summary["rejected"])
assert answered == 100000, f"phase 3: answered {answered} != 100000"
# The whole point of the repair plane: after re-replication no chunk maps
# to the dead backend any more, so none of the allowed reject causes is
# "all replicas down" or an upstream timeout.
assert int(summary["rejected_upstream_down"]) == 0, \
    "phase 3: data-loss rejects after repair completed"
assert int(summary["rejected_upstream_timeout"]) == 0, \
    "phase 3: upstream-timeout rejects after repair completed"
print(f"repair_smoke: phase 3 OK — {int(summary['ok'])} served on the "
      f"repaired cluster, zero data-loss rejects")
EOF

# ---- phase 4: SIGKILL a second backend mid-run ---------------------------
# Phase 2 moved every replica off the first victim, so each chunk now has
# two live replicas among the three survivors; losing one more backend
# leaves every chunk at least one live replica — no data loss, and the
# planner must re-replicate again onto the remaining two.
"$LOADGEN" --port "$ROUTER_PORT" --connections 4 --concurrency 32 \
  --requests 300000 --workload uniform --json "$P4_JSON" &
LOADGEN_PID=$!
sleep 0.4
kill -9 "$B3_PID"
wait_gone "$B3_PID"
B3_PID=""
wait "$LOADGEN_PID"

kill -0 "$ROUTER_PID" 2>/dev/null || {
  echo "repair_smoke: router died after second SIGKILL" >&2; exit 1; }

python3 - "$P4_JSON" <<'EOF'
import json, sys
summary = json.load(open(sys.argv[1]))
assert int(summary["protocol_errors"]) == 0, "phase 4: protocol errors"
assert int(summary["errors"]) == 0, "phase 4: transport errors"
answered = int(summary["ok"]) + int(summary["rejected"])
assert answered == 300000, f"phase 4: answered {answered} != 300000"
ok = int(summary["ok"])
assert ok >= answered // 2, f"phase 4: only {ok}/{answered} served"
print(f"repair_smoke: phase 4 kill OK — {ok} served / "
      f"{int(summary['rejected'])} rejected, no errors")
EOF

wait_repair_done $((P2_DONE + 1))
LIVE_ENDPOINTS="127.0.0.1:$ROUTER_PORT,127.0.0.1:$B1_PORT,127.0.0.1:$B2_PORT"
wait_epoch_converged "$LIVE_ENDPOINTS"

# ---- phase 5: twice-repaired cluster still loses nothing -----------------
"$LOADGEN" --port "$ROUTER_PORT" --connections 4 --concurrency 32 \
  --requests 100000 --workload uniform --json "$P5_JSON"
"$RLB_STAT" --port "$ROUTER_PORT" --json > "$ROUTER_JSON"

python3 - "$P5_JSON" "$ROUTER_JSON" <<'EOF'
import json, sys
summary = json.load(open(sys.argv[1]))
assert int(summary["protocol_errors"]) == 0, "phase 5: protocol errors"
assert int(summary["errors"]) == 0, "phase 5: transport errors"
answered = int(summary["ok"]) + int(summary["rejected"])
assert answered == 100000, f"phase 5: answered {answered} != 100000"
assert int(summary["rejected_upstream_down"]) == 0, \
    "phase 5: data-loss rejects after the second repair"
assert int(summary["rejected_upstream_timeout"]) == 0, \
    "phase 5: upstream-timeout rejects after the second repair"
router = json.load(open(sys.argv[2]))
rep = router["repair"]
assert int(rep["migrations_failed"]) == 0, \
    f"phase 5: {rep['migrations_failed']} migrations failed overall"
assert int(rep["chunks_pending"]) == 0 and int(rep["migrations_inflight"]) == 0
print(f"repair_smoke: phase 5 OK — {int(summary['ok'])} served after two "
      f"losses and two repairs (epoch {router['placement_epoch']}, "
      f"{rep['migrations_done']} total migrations, 0 failed)")
EOF

# Graceful drain: router first, then the two survivors (B3/B4 died above).
kill -INT "$ROUTER_PID"; wait_gone "$ROUTER_PID"; ROUTER_PID=""
for pid in "$B1_PID" "$B2_PID"; do
  kill -INT "$pid"; wait_gone "$pid"
done
B1_PID=""; B2_PID=""
trap - EXIT
rm -f "${TMPFILES[@]}"
echo "repair_smoke: all phases passed; two backend losses self-healed"
