#!/usr/bin/env bash
# Loopback smoke run for the serving stack: start rlbd, hammer it with
# rlb_loadgen for a couple of seconds, and assert a clean outcome —
# zero protocol errors and a non-zero completed count.
#
# Usage: scripts/serving_smoke.sh [build-dir]      (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
RLBD="$BUILD_DIR/apps/rlbd"
LOADGEN="$BUILD_DIR/apps/rlb_loadgen"
PORT="${RLB_SMOKE_PORT:-4917}"
JSON="$(mktemp /tmp/rlb_smoke.XXXXXX.json)"

for bin in "$RLBD" "$LOADGEN"; do
  if [[ ! -x "$bin" ]]; then
    echo "serving_smoke: missing binary $bin (build first)" >&2
    exit 1
  fi
done

"$RLBD" --policy greedy --m 64 --d 2 --g 4 --shards 4 --port "$PORT" &
RLBD_PID=$!
cleanup() {
  kill -INT "$RLBD_PID" 2>/dev/null || true
  wait "$RLBD_PID" 2>/dev/null || true
  rm -f "$JSON"
}
trap cleanup EXIT

# Wait for the listener to come up (rlbd prints nothing on success, so
# just retry the connect through loadgen's own error path).
for _ in $(seq 1 50); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
    exec 3>&- 3<&- || true
    break
  fi
  sleep 0.1
done

# ~2 seconds of closed-loop traffic.  Exit status is non-zero on any
# protocol error, which fails the script via set -e.
"$LOADGEN" --port "$PORT" --connections 4 --concurrency 64 \
  --requests 200000 --workload uniform --json "$JSON"

python3 - "$JSON" <<'EOF'
import json, sys
summary = json.load(open(sys.argv[1]))
completed = int(summary["ok"]) + int(summary["rejected"])
protocol_errors = int(summary["protocol_errors"])
assert protocol_errors == 0, f"protocol_errors = {protocol_errors}"
assert completed > 0, "no requests completed"
print(f"serving_smoke: OK — {completed} completed, 0 protocol errors")
EOF

# Graceful drain must answer everything and exit cleanly.
kill -INT "$RLBD_PID"
wait "$RLBD_PID"
trap - EXIT
rm -f "$JSON"
echo "serving_smoke: rlbd drained and exited cleanly"
