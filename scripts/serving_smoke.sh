#!/usr/bin/env bash
# Loopback smoke run for the serving stack: start rlbd, hammer it with
# rlb_loadgen for a couple of seconds, scrape the STATS admin opcode with
# rlb_stat while the load is still running, and assert a clean outcome —
# zero protocol errors, a non-zero completed count, and a mid-run
# snapshot with non-zero accepts and a parsable Prometheus rendering.
#
# Usage: scripts/serving_smoke.sh [build-dir]      (default: build)
#
# RLB_SMOKE_MIN_RPS (default 0 = disabled) additionally asserts a
# throughput floor on the loadgen summary — a cheap catch for data-plane
# regressions that survive correctness checks (used by the obs-disabled
# CI job, where the serving path runs with zero instrumentation).
set -euo pipefail

BUILD_DIR="${1:-build}"
RLBD="$BUILD_DIR/apps/rlbd"
LOADGEN="$BUILD_DIR/apps/rlb_loadgen"
RLB_STAT="$BUILD_DIR/apps/rlb_stat"
PORT="${RLB_SMOKE_PORT:-4917}"
JSON="$(mktemp /tmp/rlb_smoke.XXXXXX.json)"
STAT_JSON="$(mktemp /tmp/rlb_smoke_stat.XXXXXX.json)"
STAT_PROM="$(mktemp /tmp/rlb_smoke_stat.XXXXXX.prom)"

for bin in "$RLBD" "$LOADGEN" "$RLB_STAT"; do
  if [[ ! -x "$bin" ]]; then
    echo "serving_smoke: missing binary $bin (build first)" >&2
    exit 1
  fi
done

"$RLBD" --policy greedy --m 64 --d 2 --g 4 --shards 4 --port "$PORT" &
RLBD_PID=$!
LOADGEN_PID=""
cleanup() {
  [[ -n "$LOADGEN_PID" ]] && wait "$LOADGEN_PID" 2>/dev/null || true
  kill -INT "$RLBD_PID" 2>/dev/null || true
  wait "$RLBD_PID" 2>/dev/null || true
  rm -f "$JSON" "$STAT_JSON" "$STAT_PROM"
}
trap cleanup EXIT

# Wait for the listener to come up (rlbd prints nothing on success, so
# just retry the connect through loadgen's own error path).
for _ in $(seq 1 50); do
  if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
    exec 3>&- 3<&- || true
    break
  fi
  sleep 0.1
done

# ~2 seconds of closed-loop traffic, in the background so we can scrape
# the STATS admin opcode mid-run.  Exit status is collected by `wait`
# below — non-zero on any protocol error fails the script via set -e.
"$LOADGEN" --port "$PORT" --connections 4 --concurrency 64 \
  --requests 200000 --workload uniform --json "$JSON" &
LOADGEN_PID=$!

# Mid-run STATS scrape on a dedicated admin connection: one JSON snapshot
# (machine-checked below) and one Prometheus rendering (must parse).
sleep 0.5
"$RLB_STAT" --port "$PORT" --json > "$STAT_JSON"
"$RLB_STAT" --port "$PORT" --prom > "$STAT_PROM"

wait "$LOADGEN_PID"
LOADGEN_PID=""

RLB_SMOKE_MIN_RPS="${RLB_SMOKE_MIN_RPS:-0}" \
python3 - "$JSON" "$STAT_JSON" "$STAT_PROM" <<'EOF'
import json, os, sys
summary = json.load(open(sys.argv[1]))
completed = int(summary["ok"]) + int(summary["rejected"])
protocol_errors = int(summary["protocol_errors"])
assert protocol_errors == 0, f"protocol_errors = {protocol_errors}"
assert completed > 0, "no requests completed"

# Optional throughput floor (RLB_SMOKE_MIN_RPS, 0 disables): shouts when a
# change tanks serving throughput even though every response is correct.
min_rps = float(os.environ.get("RLB_SMOKE_MIN_RPS", "0"))
rps = float(summary.get("throughput_rps", 0.0))
assert min_rps <= 0 or rps >= min_rps, (
    f"throughput {rps:.0f} rps below RLB_SMOKE_MIN_RPS={min_rps:.0f}")

# The mid-run snapshot must show live traffic: non-zero accepts, no
# server-side protocol errors, and a sane safe-set report.
snap = json.load(open(sys.argv[2]))
assert int(snap["completed"]) > 0, "mid-run snapshot saw no accepts"
assert int(snap["errors"]) == 0, "mid-run snapshot saw errors"
assert "safe_worst_ratio" in snap, "snapshot missing safe-set monitor"

# Prometheus text exposition: every non-comment line is `name{labels} value`
# with a float-parsable value, and the key engine families are present.
names = set()
for line in open(sys.argv[3]):
    line = line.rstrip("\n")
    if not line or line.startswith("#"):
        continue
    body, _, value = line.rpartition(" ")
    assert body, f"unparsable exposition line: {line!r}"
    float(value)  # raises if not a number
    names.add(body.split("{", 1)[0])
for family in ("rlb_up", "rlb_engine_submitted_total",
               "rlb_engine_completed_total", "rlb_safe_set_worst_ratio"):
    assert family in names, f"missing metric family {family}"
assert "rlb_engine_latency_us_bucket" in names, "missing latency histogram"

print(f"serving_smoke: OK — {completed} completed at {rps:.0f} rps, "
      f"0 protocol errors, mid-run STATS snapshot + Prometheus rendering "
      f"verified")
EOF

# Graceful drain must answer everything and exit cleanly.
kill -INT "$RLBD_PID"
wait "$RLBD_PID"
trap - EXIT
rm -f "$JSON" "$STAT_JSON" "$STAT_PROM"
echo "serving_smoke: rlbd drained and exited cleanly"
