#!/usr/bin/env bash
# Record a performance snapshot: run bench_micro (google-benchmark hot
# paths), bench_serving (end-to-end engine throughput + in-run STATS
# time-series), and bench_cluster (E23 router hop overhead) at fixed
# parameters and merge the JSON documents into
# BENCH_<date>.json at the repo root.  Intended for the non-gating CI job
# so perf history accumulates as artifacts; also handy before/after a
# local optimisation.
#
# Usage: scripts/bench_snapshot.sh [build-dir] [out-path]
#   build-dir  default: build
#   out-path   default: BENCH_$(date -u +%Y%m%d).json in the repo root
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="${2:-$REPO_ROOT/BENCH_$(date -u +%Y%m%d).json}"
MICRO="$BUILD_DIR/bench/bench_micro"
SERVING="$BUILD_DIR/bench/bench_serving"
CLUSTER="$BUILD_DIR/bench/bench_cluster"

for bin in "$MICRO" "$SERVING" "$CLUSTER"; do
  if [[ ! -x "$bin" ]]; then
    echo "bench_snapshot: missing binary $bin (build first)" >&2
    exit 1
  fi
done

MICRO_JSON="$(mktemp /tmp/rlb_bench_micro.XXXXXX.json)"
SERVING_JSON="$(mktemp /tmp/rlb_bench_serving.XXXXXX.json)"
CLUSTER_JSON="$(mktemp /tmp/rlb_bench_cluster.XXXXXX.json)"
OUT_TMP=""
trap 'rm -f "$MICRO_JSON" "$SERVING_JSON" "$CLUSTER_JSON" ${OUT_TMP:+"$OUT_TMP"}' EXIT

# Fixed parameters so snapshots stay comparable run to run; bench_serving
# runs its built-in (policy, shards) matrix with the default 100ms
# snapshot scrape.
echo "bench_snapshot: running bench_micro..." >&2
"$MICRO" --json "$MICRO_JSON" > /dev/null

echo "bench_snapshot: running bench_serving..." >&2
"$SERVING" --json "$SERVING_JSON" \
  --requests 100000 --connections 4 --concurrency 64 --scrape-ms 100 \
  > /dev/null

echo "bench_snapshot: running bench_cluster..." >&2
"$CLUSTER" --json "$CLUSTER_JSON" \
  --requests 100000 --connections 4 --concurrency 32 \
  > /dev/null

# Provenance: a snapshot compared weeks later (or pulled from a CI
# artifact store) must say which commit, machine, and moment produced it.
GIT_HEAD="$(git -C "$REPO_ROOT" rev-parse HEAD 2>/dev/null || echo unknown)"
GIT_DIRTY=0
git -C "$REPO_ROOT" diff --quiet HEAD 2>/dev/null || GIT_DIRTY=1
HOST="$(hostname 2>/dev/null || echo unknown)"
NPROC="$(nproc 2>/dev/null || echo 0)"
STAMP="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

# Merge into the snapshot document.  Write via a temp file + rename so a
# crash mid-merge never leaves a truncated BENCH_*.json for the diff job
# (or a committed baseline) to trip over.
OUT_TMP="$OUT.tmp.$$"
python3 - "$MICRO_JSON" "$SERVING_JSON" "$CLUSTER_JSON" "$OUT_TMP" \
  "$GIT_HEAD" "$GIT_DIRTY" "$HOST" "$NPROC" "$STAMP" <<'EOF'
import json, sys

micro = json.load(open(sys.argv[1]))
serving = json.load(open(sys.argv[2]))
cluster = json.load(open(sys.argv[3]))

snapshot = {
    "schema": "rlb-bench-snapshot-v1",
    "provenance": {
        "git_head": sys.argv[5],
        "git_dirty": sys.argv[6] == "1",
        "hostname": sys.argv[7],
        "nproc": int(sys.argv[8]),
        "timestamp_utc": sys.argv[9],
    },
    # google-benchmark's context block carries host/clock/build info.
    "context": micro.get("context", {}),
    "micro": [
        {k: b.get(k) for k in
         ("name", "iterations", "real_time", "cpu_time", "time_unit",
          "items_per_second") if k in b}
        for b in micro.get("benchmarks", [])
    ],
    "serving": serving,
    "cluster": cluster,
}
with open(sys.argv[4], "w") as f:
    json.dump(snapshot, f, indent=1)
    f.write("\n")
print(f"bench_snapshot: merged "
      f"{len(snapshot['micro'])} micro benchmarks, "
      f"{len(serving.get('tables', []))} serving tables, "
      f"{len(cluster.get('tables', []))} cluster tables")
EOF
mv "$OUT_TMP" "$OUT"
echo "bench_snapshot: wrote $OUT" >&2
