#!/usr/bin/env bash
# Multi-process smoke run for the cluster tier (docs/CLUSTER.md): one
# rlb_router in front of three rlbd backends on loopback, driven by
# rlb_loadgen through the router port, in three phases:
#
#   phase 1 — healthy cluster: >= 10^5 requests, zero protocol errors,
#             and conservation: the loadgen's ok/rejected counts must
#             equal the backends' completed/rejected totals as merged by
#             rlb_stat --cluster.
#   phase 2 — SIGKILL one backend mid-run: every request is still
#             answered (bounded, cause-labelled rejections are allowed;
#             hangs, transport errors, and router crashes are not).
#   phase 3 — restart the killed backend: the router must mark it up
#             again (probation) and serve a full run with zero hop-level
#             rejects; the router's cumulative completed total must equal
#             the sum of the three phases' ok counts.
#
# Usage: scripts/cluster_smoke.sh [build-dir]      (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
RLBD="$BUILD_DIR/apps/rlbd"
ROUTER="$BUILD_DIR/apps/rlb_router"
LOADGEN="$BUILD_DIR/apps/rlb_loadgen"
RLB_STAT="$BUILD_DIR/apps/rlb_stat"

BASE_PORT="${RLB_CLUSTER_SMOKE_PORT:-4930}"
ROUTER_PORT="$BASE_PORT"
B1_PORT=$((BASE_PORT + 1))
B2_PORT=$((BASE_PORT + 2))
B3_PORT=$((BASE_PORT + 3))
BACKENDS="127.0.0.1:$B1_PORT,127.0.0.1:$B2_PORT,127.0.0.1:$B3_PORT"

P1_JSON="$(mktemp /tmp/rlb_cluster_p1.XXXXXX.json)"
P2_JSON="$(mktemp /tmp/rlb_cluster_p2.XXXXXX.json)"
P3_JSON="$(mktemp /tmp/rlb_cluster_p3.XXXXXX.json)"
CLUSTER_JSON="$(mktemp /tmp/rlb_cluster_stat.XXXXXX.json)"
ROUTER_JSON="$(mktemp /tmp/rlb_cluster_router.XXXXXX.json)"

for bin in "$RLBD" "$ROUTER" "$LOADGEN" "$RLB_STAT"; do
  if [[ ! -x "$bin" ]]; then
    echo "cluster_smoke: missing binary $bin (build first)" >&2
    exit 1
  fi
done

start_backend() {  # start_backend <port> <backend-id> -> pid
  # Detach stdout/stderr: the caller captures this function with $(...),
  # and an inherited pipe would make the substitution block until the
  # daemon exits.
  "$RLBD" --policy greedy --m 32 --d 2 --g 4 --shards 2 \
    --port "$1" --backend-id "$2" >/dev/null 2>&1 &
  echo $!
}

B1_PID="$(start_backend "$B1_PORT" 1)"
B2_PID="$(start_backend "$B2_PORT" 2)"
B3_PID="$(start_backend "$B3_PORT" 3)"
ROUTER_PID=""

# The daemons are not children of this shell (start_backend forks them in a
# command-substitution subshell), so `wait` cannot reap them; poll instead.
wait_gone() {  # wait_gone <pid>
  for _ in $(seq 1 100); do
    kill -0 "$1" 2>/dev/null || return 0
    sleep 0.1
  done
  echo "cluster_smoke: pid $1 did not exit after SIGINT" >&2
  return 1
}

cleanup() {
  for pid in "$ROUTER_PID" "$B1_PID" "$B2_PID" "$B3_PID"; do
    [[ -n "$pid" ]] && kill -INT "$pid" 2>/dev/null || true
  done
  for pid in "$ROUTER_PID" "$B1_PID" "$B2_PID" "$B3_PID"; do
    [[ -n "$pid" ]] && wait_gone "$pid" || true
  done
  rm -f "$P1_JSON" "$P2_JSON" "$P3_JSON" "$CLUSTER_JSON" "$ROUTER_JSON"
}
trap cleanup EXIT

wait_port() {  # wait_port <port>
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
      exec 3>&- 3<&- || true
      return 0
    fi
    sleep 0.1
  done
  echo "cluster_smoke: port $1 never came up" >&2
  return 1
}

wait_port "$B1_PORT"; wait_port "$B2_PORT"; wait_port "$B3_PORT"

"$ROUTER" --backends "$BACKENDS" --d 2 --chunks 4096 \
  --heartbeat-ms 50 --timeout-ms 2000 --port "$ROUTER_PORT" &
ROUTER_PID=$!
wait_port "$ROUTER_PORT"

# Readiness gate: the router's snapshot carries one row per backend with
# `down` = (health != up); wait until every backend is marked live so the
# healthy-phase assertions are deterministic.
wait_all_live() {
  for _ in $(seq 1 100); do
    if "$RLB_STAT" --port "$ROUTER_PORT" --json 2>/dev/null \
        | python3 -c '
import json, sys
snap = json.load(sys.stdin)
sys.exit(0 if int(snap["servers_down"]) == 0 and int(snap["shards"]) == 3
         else 1)
' ; then
      return 0
    fi
    sleep 0.1
  done
  echo "cluster_smoke: backends never became live at the router" >&2
  return 1
}
wait_all_live

# ---- phase 1: healthy cluster, conservation check ------------------------
"$LOADGEN" --port "$ROUTER_PORT" --connections 4 --concurrency 32 \
  --requests 100000 --workload uniform --json "$P1_JSON"

"$RLB_STAT" --cluster "127.0.0.1:$ROUTER_PORT,$BACKENDS" --json \
  > "$CLUSTER_JSON"

python3 - "$P1_JSON" "$CLUSTER_JSON" <<'EOF'
import json, sys
summary = json.load(open(sys.argv[1]))
assert int(summary["protocol_errors"]) == 0, "phase 1: protocol errors"
assert int(summary["errors"]) == 0, "phase 1: transport errors"
answered = int(summary["ok"]) + int(summary["rejected"])
assert answered == 100000, f"phase 1: answered {answered} != 100000"
assert int(summary["rejected_upstream_down"]) == 0, \
    "phase 1: upstream-down rejects with every backend live"

# Conservation: what the client saw must equal what the backends counted,
# as merged from every node's STATS snapshot by rlb_stat --cluster.
cluster = json.load(open(sys.argv[2]))
for row in cluster["endpoints"]:
    assert row["reachable"], f"unreachable endpoint {row['endpoint']}"
totals = cluster["backend_totals"]
assert int(totals["completed"]) == int(summary["ok"]), (
    f"conservation: backends completed {totals['completed']} "
    f"!= loadgen ok {summary['ok']}")
assert int(totals["rejected"]) == int(summary["rejected"]), (
    f"conservation: backends rejected {totals['rejected']} "
    f"!= loadgen rejected {summary['rejected']}")
assert int(totals["errors"]) == 0, "backends saw errors"
roles = sorted(r["snapshot"]["role"] for r in cluster["endpoints"])
assert roles == ["backend", "backend", "backend", "router"], roles
print(f"cluster_smoke: phase 1 OK — {answered} answered, "
      f"conservation holds ({totals['completed']} completed)")
EOF
PHASE1_OK="$(python3 -c "import json; print(json.load(open('$P1_JSON'))['ok'])")"

# ---- phase 2: SIGKILL one backend mid-run --------------------------------
"$LOADGEN" --port "$ROUTER_PORT" --connections 4 --concurrency 32 \
  --requests 150000 --workload uniform --json "$P2_JSON" &
LOADGEN_PID=$!
sleep 0.4
kill -9 "$B3_PID"
wait_gone "$B3_PID"
B3_PID=""
wait "$LOADGEN_PID"

kill -0 "$ROUTER_PID" 2>/dev/null || {
  echo "cluster_smoke: router died after backend SIGKILL" >&2; exit 1; }

python3 - "$P2_JSON" <<'EOF'
import json, sys
summary = json.load(open(sys.argv[1]))
assert int(summary["protocol_errors"]) == 0, "phase 2: protocol errors"
assert int(summary["errors"]) == 0, \
    "phase 2: transport errors (router must answer, not drop)"
answered = int(summary["ok"]) + int(summary["rejected"])
assert answered == 150000, f"phase 2: answered {answered} != 150000"
# Bounded degradation: with d=2 over three backends every chunk keeps a
# live candidate, so the vast majority must still be served; only hops in
# flight at the kill (plus the mark-down window) may surface as rejects.
ok = int(summary["ok"])
assert ok >= answered // 2, f"phase 2: only {ok}/{answered} served"
print(f"cluster_smoke: phase 2 OK — backend SIGKILL mid-run, "
      f"{ok} served / {int(summary['rejected'])} rejected "
      f"(down-cause {summary['rejected_upstream_down']}, "
      f"timeout-cause {summary['rejected_upstream_timeout']}), no errors")
EOF
PHASE2_OK="$(python3 -c "import json; print(json.load(open('$P2_JSON'))['ok'])")"

# ---- phase 3: restart the backend, full recovery -------------------------
B3_PID="$(start_backend "$B3_PORT" 3)"
wait_port "$B3_PORT"
wait_all_live

"$LOADGEN" --port "$ROUTER_PORT" --connections 4 --concurrency 32 \
  --requests 100000 --workload uniform --json "$P3_JSON"
# Membership is eventually consistent: a heartbeat reply that missed its
# deadline under full load can leave a backend transiently marked down
# (masked by d=2, zero client impact).  Let the table settle before the
# final scrape; the conservation counters below are cumulative, so waiting
# does not change them.
wait_all_live
"$RLB_STAT" --port "$ROUTER_PORT" --json > "$ROUTER_JSON"

python3 - "$P3_JSON" "$ROUTER_JSON" "$PHASE1_OK" "$PHASE2_OK" <<'EOF'
import json, sys
summary = json.load(open(sys.argv[1]))
assert int(summary["protocol_errors"]) == 0, "phase 3: protocol errors"
assert int(summary["errors"]) == 0, "phase 3: transport errors"
answered = int(summary["ok"]) + int(summary["rejected"])
assert answered == 100000, f"phase 3: answered {answered} != 100000"
assert int(summary["rejected_upstream_down"]) == 0, \
    "phase 3: upstream-down rejects after recovery"
assert int(summary["rejected_upstream_timeout"]) == 0, \
    "phase 3: upstream-timeout rejects after recovery"

# Router-side conservation across all three phases: its cumulative
# completed total (relayed OK responses) must equal the sum of what the
# three loadgen runs counted as ok — nothing double-relayed, nothing lost.
router = json.load(open(sys.argv[2]))
expected_ok = int(sys.argv[3]) + int(sys.argv[4]) + int(summary["ok"])
assert router["role"] == "router", router["role"]
assert int(router["completed"]) == expected_ok, (
    f"router relayed {router['completed']} ok responses, "
    f"loadgen counted {expected_ok}")
print(f"cluster_smoke: phase 3 OK — backend rejoined after probation, "
      f"router conservation holds ({expected_ok} relayed ok)")
EOF

# Graceful drain: router first (rejects nothing new), then the backends.
kill -INT "$ROUTER_PID"; wait_gone "$ROUTER_PID"; ROUTER_PID=""
for pid in "$B1_PID" "$B2_PID" "$B3_PID"; do
  kill -INT "$pid"; wait_gone "$pid"
done
B1_PID=""; B2_PID=""; B3_PID=""
trap - EXIT
rm -f "$P1_JSON" "$P2_JSON" "$P3_JSON" "$CLUSTER_JSON" "$ROUTER_JSON"
echo "cluster_smoke: all phases passed; router and backends drained cleanly"
