#!/usr/bin/env bash
# Multi-process smoke run for the cluster tier (docs/CLUSTER.md): one
# rlb_router in front of three rlbd backends on loopback, driven by
# rlb_loadgen through the router port, in three phases:
#
#   phase 1 — healthy cluster: >= 10^5 requests, zero protocol errors,
#             and conservation: the loadgen's ok/rejected counts must
#             equal the backends' completed/rejected totals as merged by
#             rlb_stat --cluster.
#   phase 2 — SIGKILL one backend mid-run: every request is still
#             answered (bounded, cause-labelled rejections are allowed;
#             hangs, transport errors, and router crashes are not).
#   phase 3 — restart the killed backend: the router must mark it up
#             again (probation) and serve a full run with zero hop-level
#             rejects; the router's cumulative completed total must equal
#             the sum of the three phases' ok counts.
#   phase 4 — distributed tracing under failure: a traced run (wire
#             contexts + client span file) with another mid-run SIGKILL;
#             rlb_trace must merge client, router, and backend spans into
#             cross-process trees that include retried hops, and every
#             emitted JSONL file must parse line by line.  A second traced
#             loadgen is SIGTERMed mid-run to check the flush-on-drain
#             path leaves a complete span file behind.
#
# RLB_CLUSTER_SMOKE_OBS_OFF=1 relaxes phase 4 for builds with the obs
# plane compiled out (-DRLB_OBS_ENABLED=OFF): recorders are empty by
# design there, so only the TRACE channel, the merger exit status, and the
# file formats are asserted.
#
# Usage: scripts/cluster_smoke.sh [build-dir]      (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
RLBD="$BUILD_DIR/apps/rlbd"
ROUTER="$BUILD_DIR/apps/rlb_router"
LOADGEN="$BUILD_DIR/apps/rlb_loadgen"
RLB_STAT="$BUILD_DIR/apps/rlb_stat"
RLB_TRACE="$BUILD_DIR/apps/rlb_trace"
OBS_OFF="${RLB_CLUSTER_SMOKE_OBS_OFF:-0}"

BASE_PORT="${RLB_CLUSTER_SMOKE_PORT:-4930}"
ROUTER_PORT="$BASE_PORT"
B1_PORT=$((BASE_PORT + 1))
B2_PORT=$((BASE_PORT + 2))
B3_PORT=$((BASE_PORT + 3))
BACKENDS="127.0.0.1:$B1_PORT,127.0.0.1:$B2_PORT,127.0.0.1:$B3_PORT"

P1_JSON="$(mktemp /tmp/rlb_cluster_p1.XXXXXX.json)"
P2_JSON="$(mktemp /tmp/rlb_cluster_p2.XXXXXX.json)"
P3_JSON="$(mktemp /tmp/rlb_cluster_p3.XXXXXX.json)"
P4_JSON="$(mktemp /tmp/rlb_cluster_p4.XXXXXX.json)"
CLUSTER_JSON="$(mktemp /tmp/rlb_cluster_stat.XXXXXX.json)"
ROUTER_JSON="$(mktemp /tmp/rlb_cluster_router.XXXXXX.json)"
SPAN_FILE="$(mktemp /tmp/rlb_cluster_spans.XXXXXX.jsonl)"
SPAN_FILE2="$(mktemp /tmp/rlb_cluster_spans2.XXXXXX.jsonl)"
MERGED_JSONL="$(mktemp /tmp/rlb_cluster_merged.XXXXXX.jsonl)"
CHROME_JSON="$(mktemp /tmp/rlb_cluster_chrome.XXXXXX.json)"
TRACE_SUMMARY="$(mktemp /tmp/rlb_cluster_trace.XXXXXX.txt)"
EVENTS_JSON="$(mktemp /tmp/rlb_cluster_events.XXXXXX.json)"
FLIGHT_JSON="$(mktemp /tmp/rlb_cluster_flight.XXXXXX.json)"
TMPFILES=("$P1_JSON" "$P2_JSON" "$P3_JSON" "$P4_JSON" "$CLUSTER_JSON" \
          "$ROUTER_JSON" "$SPAN_FILE" "$SPAN_FILE2" "$MERGED_JSONL" \
          "$CHROME_JSON" "$TRACE_SUMMARY" "$EVENTS_JSON" "$FLIGHT_JSON")

for bin in "$RLBD" "$ROUTER" "$LOADGEN" "$RLB_STAT" "$RLB_TRACE"; do
  if [[ ! -x "$bin" ]]; then
    echo "cluster_smoke: missing binary $bin (build first)" >&2
    exit 1
  fi
done

start_backend() {  # start_backend <port> <backend-id> -> pid
  # Detach stdout/stderr: the caller captures this function with $(...),
  # and an inherited pipe would make the substitution block until the
  # daemon exits.
  "$RLBD" --policy greedy --m 32 --d 2 --g 4 --shards 2 \
    --port "$1" --backend-id "$2" >/dev/null 2>&1 &
  echo $!
}

B1_PID="$(start_backend "$B1_PORT" 1)"
B2_PID="$(start_backend "$B2_PORT" 2)"
B3_PID="$(start_backend "$B3_PORT" 3)"
ROUTER_PID=""

# The daemons are not children of this shell (start_backend forks them in a
# command-substitution subshell), so `wait` cannot reap them; poll instead.
wait_gone() {  # wait_gone <pid>
  for _ in $(seq 1 100); do
    kill -0 "$1" 2>/dev/null || return 0
    sleep 0.1
  done
  echo "cluster_smoke: pid $1 did not exit after SIGINT" >&2
  return 1
}

cleanup() {
  for pid in "$ROUTER_PID" "$B1_PID" "$B2_PID" "$B3_PID"; do
    [[ -n "$pid" ]] && kill -INT "$pid" 2>/dev/null || true
  done
  for pid in "$ROUTER_PID" "$B1_PID" "$B2_PID" "$B3_PID"; do
    [[ -n "$pid" ]] && wait_gone "$pid" || true
  done
  rm -f "${TMPFILES[@]}"
}
trap cleanup EXIT

wait_port() {  # wait_port <port>
  for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
      exec 3>&- 3<&- || true
      return 0
    fi
    sleep 0.1
  done
  echo "cluster_smoke: port $1 never came up" >&2
  return 1
}

wait_port "$B1_PORT"; wait_port "$B2_PORT"; wait_port "$B3_PORT"

# 512 chunks (not 4096): a SIGKILL makes the repair plane journal ~2-3
# events per affected chunk, and the whole incident (both phase-2 and
# phase-4 kills) must fit inside the 4096-event journal ring for the
# incident-story scrape below to see the MEMBER_DOWN edge.
"$ROUTER" --backends "$BACKENDS" --d 2 --chunks 512 \
  --heartbeat-ms 50 --timeout-ms 2000 --port "$ROUTER_PORT" \
  --repair --repair-grace-ms 200 --flight-recorder "$FLIGHT_JSON" &
ROUTER_PID=$!
wait_port "$ROUTER_PORT"

# Readiness gate: the router's snapshot carries one row per backend with
# `down` = (health != up); wait until every backend is marked live so the
# healthy-phase assertions are deterministic.
wait_all_live() {
  for _ in $(seq 1 100); do
    if "$RLB_STAT" --port "$ROUTER_PORT" --json 2>/dev/null \
        | python3 -c '
import json, sys
snap = json.load(sys.stdin)
sys.exit(0 if int(snap["servers_down"]) == 0 and int(snap["shards"]) == 3
         else 1)
' ; then
      return 0
    fi
    sleep 0.1
  done
  echo "cluster_smoke: backends never became live at the router" >&2
  return 1
}
wait_all_live

# ---- phase 1: healthy cluster, conservation check ------------------------
"$LOADGEN" --port "$ROUTER_PORT" --connections 4 --concurrency 32 \
  --requests 100000 --workload uniform --json "$P1_JSON"

"$RLB_STAT" --cluster "127.0.0.1:$ROUTER_PORT,$BACKENDS" --json \
  > "$CLUSTER_JSON"

python3 - "$P1_JSON" "$CLUSTER_JSON" "$OBS_OFF" <<'EOF'
import json, sys
summary = json.load(open(sys.argv[1]))
assert int(summary["protocol_errors"]) == 0, "phase 1: protocol errors"
assert int(summary["errors"]) == 0, "phase 1: transport errors"
answered = int(summary["ok"]) + int(summary["rejected"])
assert answered == 100000, f"phase 1: answered {answered} != 100000"
assert int(summary["rejected_upstream_down"]) == 0, \
    "phase 1: upstream-down rejects with every backend live"

# Conservation: what the client saw must equal what the backends counted,
# as merged from every node's STATS snapshot by rlb_stat --cluster.
cluster = json.load(open(sys.argv[2]))
for row in cluster["endpoints"]:
    assert row["reachable"], f"unreachable endpoint {row['endpoint']}"
totals = cluster["backend_totals"]
assert int(totals["completed"]) == int(summary["ok"]), (
    f"conservation: backends completed {totals['completed']} "
    f"!= loadgen ok {summary['ok']}")
assert int(totals["rejected"]) == int(summary["rejected"]), (
    f"conservation: backends rejected {totals['rejected']} "
    f"!= loadgen rejected {summary['rejected']}")
assert int(totals["errors"]) == 0, "backends saw errors"
roles = sorted(r["snapshot"]["role"] for r in cluster["endpoints"])
assert roles == ["backend", "backend", "backend", "router"], roles

# Windowed metrics: scraped right after the run, every node's trailing
# window must still cover the burst — nonzero span and per-window counts
# next to the lifetime totals.  (Compiled out with the obs plane off.)
if sys.argv[3] != "1":
    for row in cluster["endpoints"]:
        win = row["snapshot"]["window"]
        assert int(win["span_ms"]) > 0, f"{row['endpoint']}: empty window"
        assert int(win["submitted"]) > 0, \
            f"{row['endpoint']}: window saw no traffic just after the run"
        if row["snapshot"]["role"] == "backend":
            assert float(win["latency_p99_us"]) > 0, \
                f"{row['endpoint']}: windowed p99 empty just after the run"
print(f"cluster_smoke: phase 1 OK — {answered} answered, "
      f"conservation holds ({totals['completed']} completed)")
EOF
PHASE1_OK="$(python3 -c "import json; print(json.load(open('$P1_JSON'))['ok'])")"

# ---- phase 2: SIGKILL one backend mid-run --------------------------------
"$LOADGEN" --port "$ROUTER_PORT" --connections 4 --concurrency 32 \
  --requests 150000 --workload uniform --json "$P2_JSON" &
LOADGEN_PID=$!
sleep 0.4
kill -9 "$B3_PID"
wait_gone "$B3_PID"
B3_PID=""
wait "$LOADGEN_PID"

kill -0 "$ROUTER_PID" 2>/dev/null || {
  echo "cluster_smoke: router died after backend SIGKILL" >&2; exit 1; }

python3 - "$P2_JSON" <<'EOF'
import json, sys
summary = json.load(open(sys.argv[1]))
assert int(summary["protocol_errors"]) == 0, "phase 2: protocol errors"
assert int(summary["errors"]) == 0, \
    "phase 2: transport errors (router must answer, not drop)"
answered = int(summary["ok"]) + int(summary["rejected"])
assert answered == 150000, f"phase 2: answered {answered} != 150000"
# Bounded degradation: with d=2 over three backends every chunk keeps a
# live candidate, so the vast majority must still be served; only hops in
# flight at the kill (plus the mark-down window) may surface as rejects.
ok = int(summary["ok"])
assert ok >= answered // 2, f"phase 2: only {ok}/{answered} served"
print(f"cluster_smoke: phase 2 OK — backend SIGKILL mid-run, "
      f"{ok} served / {int(summary['rejected'])} rejected "
      f"(down-cause {summary['rejected_upstream_down']}, "
      f"timeout-cause {summary['rejected_upstream_timeout']}), no errors")
EOF
PHASE2_OK="$(python3 -c "import json; print(json.load(open('$P2_JSON'))['ok'])")"

# ---- phase 3: restart the backend, full recovery -------------------------
B3_PID="$(start_backend "$B3_PORT" 3)"
wait_port "$B3_PORT"
wait_all_live

"$LOADGEN" --port "$ROUTER_PORT" --connections 4 --concurrency 32 \
  --requests 100000 --workload uniform --json "$P3_JSON"
# Membership is eventually consistent: a heartbeat reply that missed its
# deadline under full load can leave a backend transiently marked down
# (masked by d=2, zero client impact).  Let the table settle before the
# final scrape; the conservation counters below are cumulative, so waiting
# does not change them.
wait_all_live
"$RLB_STAT" --port "$ROUTER_PORT" --json > "$ROUTER_JSON"

python3 - "$P3_JSON" "$ROUTER_JSON" "$PHASE1_OK" "$PHASE2_OK" <<'EOF'
import json, sys
summary = json.load(open(sys.argv[1]))
assert int(summary["protocol_errors"]) == 0, "phase 3: protocol errors"
assert int(summary["errors"]) == 0, "phase 3: transport errors"
answered = int(summary["ok"]) + int(summary["rejected"])
assert answered == 100000, f"phase 3: answered {answered} != 100000"
assert int(summary["rejected_upstream_down"]) == 0, \
    "phase 3: upstream-down rejects after recovery"
assert int(summary["rejected_upstream_timeout"]) == 0, \
    "phase 3: upstream-timeout rejects after recovery"

# Router-side conservation across all three phases: its cumulative
# completed total (relayed OK responses) must equal the sum of what the
# three loadgen runs counted as ok — nothing double-relayed, nothing lost.
router = json.load(open(sys.argv[2]))
expected_ok = int(sys.argv[3]) + int(sys.argv[4]) + int(summary["ok"])
assert router["role"] == "router", router["role"]
assert int(router["completed"]) == expected_ok, (
    f"router relayed {router['completed']} ok responses, "
    f"loadgen counted {expected_ok}")
print(f"cluster_smoke: phase 3 OK — backend rejoined after probation, "
      f"router conservation holds ({expected_ok} relayed ok)")
EOF

# ---- journal incident story + flight recorder ----------------------------
# The router's control-plane event journal must tell phases 2-3 back as a
# story: the SIGKILL surfaces as MEMBER_DOWN, the repair plane migrates the
# dead backend's chunks (MIGRATE_DONE) and commits a new placement epoch
# (EPOCH_COMMIT) after it, the watchdog raises backend_down after the
# mark-down and clears it after the phase-3 recovery — all in journal
# sequence order, scraped over the EVENTS opcode by rlb_stat --events.
if [[ "$OBS_OFF" != "1" ]]; then
  STORY_OK=0
  for _ in $(seq 1 60); do
    "$RLB_STAT" --port "$ROUTER_PORT" --events --json > "$EVENTS_JSON" \
      2>/dev/null || true
    if python3 - "$EVENTS_JSON" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = sorted(doc["events"], key=lambda e: int(e["seq"]))

def first(pred, after=0):
    for e in events:
        if int(e["seq"]) > after and pred(e):
            return int(e["seq"])
    return None

# Any DOWN edge that anchors the full chain counts (load can add transient
# mark-down/up pairs around the real incident).
for e in events:
    if e["type"] != "MEMBER_DOWN":
        continue
    down = int(e["seq"])
    migrate = first(lambda x: x["type"] == "MIGRATE_DONE", down)
    if migrate is None:
        continue
    epoch = first(lambda x: x["type"] == "EPOCH_COMMIT", migrate)
    raised = first(
        lambda x: x["type"] == "ALERT_RAISED"
        and x["detail"] == "backend_down", down)
    if epoch is None or raised is None:
        continue
    cleared = first(
        lambda x: x["type"] == "ALERT_CLEARED"
        and x["detail"] == "backend_down", raised)
    up = first(lambda x: x["type"] == "MEMBER_UP", down)
    if cleared is not None and up is not None:
        print(f"cluster_smoke: journal OK — DOWN#{down} -> "
              f"MIGRATE_DONE#{migrate} -> EPOCH_COMMIT#{epoch}; "
              f"alert raised#{raised} -> UP#{up} -> cleared#{cleared}")
        sys.exit(0)
sys.exit(1)
EOF
    then STORY_OK=1; break; fi
    sleep 0.25
  done
  if [[ "$STORY_OK" != "1" ]]; then
    echo "cluster_smoke: journal never told the incident story" >&2
    "$RLB_STAT" --port "$ROUTER_PORT" --events >&2 || true
    exit 1
  fi
fi

# Flight recorder: SIGQUIT must dump a parseable post-mortem JSON (journal
# tail + stats snapshot) without killing the router.
kill -QUIT "$ROUTER_PID"
FLIGHT_OK=0
for _ in $(seq 1 50); do
  if python3 - "$FLIGHT_JSON" "$OBS_OFF" <<'EOF' 2>/dev/null
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["flight_record"] == 1
assert doc["role"] == "router"
assert isinstance(doc["events"], list)
assert isinstance(doc["snapshot"], dict)
if sys.argv[2] != "1":
    # The dump keeps the journal's last 512 events, so the phase-2
    # MEMBER_DOWN may have scrolled past; a busy cluster just needs a
    # non-empty tail of well-formed events.
    assert len(doc["events"]) > 0, "flight record has an empty journal tail"
    assert all("seq" in e and "type" in e for e in doc["events"])
EOF
  then FLIGHT_OK=1; break; fi
  sleep 0.1
done
if [[ "$FLIGHT_OK" != "1" ]]; then
  echo "cluster_smoke: SIGQUIT produced no parseable flight record" >&2
  exit 1
fi
kill -0 "$ROUTER_PID" 2>/dev/null || {
  echo "cluster_smoke: router died on SIGQUIT" >&2; exit 1; }
echo "cluster_smoke: flight recorder OK — SIGQUIT dumped, router alive"

# ---- phase 4: distributed tracing under a mid-run SIGKILL ----------------
# Every request carries a wire trace context (--trace-sample > 0); ~5% get
# the head-sampling flag, failed hops are kept by the recorders regardless
# of sampling, and the router escalates sampling on retries.  B2 is
# SIGKILLed mid-run, so traces that had a hop in flight to it must show
# the failed hop plus its retry in the merged tree.  (B2, not B3: the
# phase-2 repair migrated every chunk referencing B3 onto B1/B2 and
# nothing rebalances back on rejoin, so the rejoined B3 carries no
# traffic — killing it again would fail nothing.)  The dead B2 endpoint
# stays on the rlb_trace scrape list to exercise the partial-failure path
# (the merger must warn and continue).
router_completed() {
  "$RLB_STAT" --port "$ROUTER_PORT" --json 2>/dev/null \
    | python3 -c \
        'import json, sys; print(int(json.load(sys.stdin)["completed"]))' \
    2>/dev/null || echo 0
}

# A wall-clock sleep can fire before the loadgen has sent anything (or
# after it finished), turning the SIGKILL into a no-op for tracing; gate
# the kill on the router's cumulative completed counter instead so it
# always lands with hops in flight.
ROUTER_DONE="$(router_completed)"
"$LOADGEN" --port "$ROUTER_PORT" --connections 4 --concurrency 32 \
  --requests 150000 --workload uniform --trace-sample 0.05 \
  --span-file "$SPAN_FILE" --json "$P4_JSON" &
LOADGEN_PID=$!
KILL_AT=$((ROUTER_DONE + 30000))
for _ in $(seq 1 500); do
  if (( $(router_completed) >= KILL_AT )); then break; fi
  sleep 0.02
done
# The gate's own STATS scrape briefly serialises with the router's event
# loop, draining its pending-hop table; let the data plane refill so the
# SIGKILL lands with hops actually in flight to B2.
sleep 0.08
kill -9 "$B2_PID"
wait_gone "$B2_PID"
B2_PID=""
wait "$LOADGEN_PID"

"$RLB_TRACE" --endpoints "127.0.0.1:$ROUTER_PORT,$BACKENDS" \
  --span-file "$SPAN_FILE" --out "$MERGED_JSONL" --chrome "$CHROME_JSON" \
  --print 1 | tee "$TRACE_SUMMARY"

python3 - "$P4_JSON" "$TRACE_SUMMARY" "$MERGED_JSONL" "$CHROME_JSON" \
    "$SPAN_FILE" "$OBS_OFF" <<'EOF'
import json, sys
summary = json.load(open(sys.argv[1]))
assert int(summary["protocol_errors"]) == 0, "phase 4: protocol errors"
assert int(summary["errors"]) == 0, "phase 4: transport errors"
answered = int(summary["ok"]) + int(summary["rejected"])
assert answered == 150000, f"phase 4: answered {answered} != 150000"

line = next(l for l in open(sys.argv[2]) if l.startswith("rlb_trace: merged"))
fields = dict(kv.split("=") for kv in line.split()[2:])
obs_off = sys.argv[6] == "1"

# Every emitted file must parse on its own terms: the merged output line
# by line (JSONL), the Chrome trace as one document.
merged = 0
for raw in open(sys.argv[3]):
    if raw.strip():
        json.loads(raw)
        merged += 1
chrome = json.load(open(sys.argv[4]))
assert isinstance(chrome["traceEvents"], list), "phase 4: bad Chrome trace"
client_spans = 0
first_line = None
for raw in open(sys.argv[5]):
    if raw.strip():
        rec = json.loads(raw)
        if first_line is None:
            first_line = rec
        if "span_id" in rec:
            client_spans += 1

if obs_off:
    # Recorders are compiled out: the channel must still answer and the
    # files must still be well-formed, but they stay empty.
    print(f"cluster_smoke: phase 4 OK (obs-off) — TRACE channel answered, "
          f"merger emitted {merged} spans, all files parse")
else:
    assert first_line is not None and first_line.get("anchor") == 1, \
        "phase 4: client span file missing its clock anchor line"
    assert client_spans >= 1, "phase 4: loadgen recorded no client spans"
    assert merged == int(fields["spans"]), \
        f"phase 4: merged file has {merged} spans, summary says {fields['spans']}"
    assert int(fields["traces"]) >= 1, line
    assert int(fields["cross_process"]) >= 1, \
        f"phase 4: no cross-process span trees: {line}"
    assert int(fields["retried"]) >= 1, \
        f"phase 4: no trace shows a retried hop after the SIGKILL: {line}"
    print(f"cluster_smoke: phase 4 OK — {fields['traces']} merged traces "
          f"across {fields['processes']} processes "
          f"({fields['cross_process']} cross-process, "
          f"{fields['retried']} with retried hops)")
EOF

# SIGTERM drain regression: a tracing client killed mid-run must still
# leave a complete, parseable span file (the handlers flush via
# write-to-temp + rename, so a reader never sees a truncated record).
"$LOADGEN" --port "$ROUTER_PORT" --connections 2 --concurrency 16 \
  --requests 100000000 --workload uniform --trace-sample 0.5 \
  --span-file "$SPAN_FILE2" >/dev/null &
LOADGEN_PID=$!
sleep 0.5
kill -TERM "$LOADGEN_PID"
wait "$LOADGEN_PID"

python3 - "$SPAN_FILE2" "$OBS_OFF" <<'EOF'
import json, sys
lines = 0
spans = 0
for raw in open(sys.argv[1]):
    if raw.strip():
        json.loads(raw)
        lines += 1
        spans += 1 if "span_id" in json.loads(raw) else 0
assert lines >= 1, "SIGTERM drain: span file is empty (no anchor line)"
if sys.argv[2] != "1":
    assert spans >= 1, "SIGTERM drain: no spans survived the flush"
print(f"cluster_smoke: SIGTERM drain OK — span file intact "
      f"({spans} spans, every line parses)")
EOF

# Graceful drain: router first (rejects nothing new), then the backends
# (B2 died in phase 4 and stays down).
kill -INT "$ROUTER_PID"; wait_gone "$ROUTER_PID"; ROUTER_PID=""
for pid in "$B1_PID" "$B3_PID"; do
  kill -INT "$pid"; wait_gone "$pid"
done
B1_PID=""; B3_PID=""
trap - EXIT
rm -f "${TMPFILES[@]}"
echo "cluster_smoke: all phases passed; router and backends drained cleanly"
