#!/usr/bin/env python3
"""Compare two bench_snapshot.sh documents (rlb-bench-snapshot-v1).

Usage: bench_diff.py [--fail-on-regress PCT] <baseline.json> <fresh.json>

Prints a per-benchmark delta table: micro benchmarks matched by name
(items_per_second preferred, real_time as the fallback), serving/cluster
tables matched by their key columns with throughput_rps compared.

By default the script is informational and always exits 0 on well-formed
input.  With --fail-on-regress PCT it exits 1 (loudly, listing the
offending rows) when any serving/cluster throughput_rps row is more than
PCT percent below the baseline — the backing CI step stays
continue-on-error, so this shouts in the log without blocking the merge.
Exit 2 only when an input file is missing/unreadable.
"""
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def fmt_provenance(doc):
    """One-line who/where/when for a snapshot (absent on pre-provenance
    documents — bench_snapshot.sh stamps it since the health-plane work)."""
    p = doc.get("provenance")
    if not isinstance(p, dict):
        return "no provenance recorded"
    head = str(p.get("git_head", "unknown"))[:12]
    dirty = "+dirty" if p.get("git_dirty") else ""
    return (f"{head}{dirty} on {p.get('hostname', 'unknown')} "
            f"({p.get('nproc', '?')} cpus) at "
            f"{p.get('timestamp_utc', 'unknown')}")


def fmt_delta(old, new, higher_is_better):
    if not old:
        return "n/a"
    pct = (new - old) / old * 100.0
    arrow = ""
    if abs(pct) >= 2.0:
        better = (pct > 0) == higher_is_better
        arrow = " (+)" if better else " (-)"
    return f"{pct:+7.2f}%{arrow}"


def diff_micro(base, fresh):
    base_by_name = {b["name"]: b for b in base.get("micro", [])}
    rows = []
    for b in fresh.get("micro", []):
        old = base_by_name.get(b["name"])
        if old is None:
            rows.append((b["name"], "new benchmark"))
            continue
        if "items_per_second" in b and "items_per_second" in old:
            rows.append((b["name"],
                         fmt_delta(old["items_per_second"],
                                   b["items_per_second"], True)
                         + "  items/s"))
        elif "real_time" in b and "real_time" in old:
            rows.append((b["name"],
                         fmt_delta(old["real_time"], b["real_time"], False)
                         + "  time"))
    for name in base_by_name:
        if name not in {b["name"] for b in fresh.get("micro", [])}:
            rows.append((name, "removed"))
    return rows


def table_rows(doc, section):
    """Yield (key-tuple, throughput) per row of every table that has a
    throughput_rps column; the key is every cell left of that column."""
    for table in doc.get(section, {}).get("tables", []):
        headers = table.get("headers", [])
        if "throughput_rps" not in headers:
            continue
        at = headers.index("throughput_rps")
        for row in table.get("rows", []):
            if len(row) <= at:
                continue
            try:
                yield tuple(str(c) for c in row[:at]), float(row[at])
            except (TypeError, ValueError):
                continue


def diff_tables(base, fresh, section, regressions, threshold):
    base_map = dict(table_rows(base, section))
    rows = []
    for key, rps in table_rows(fresh, section):
        old = base_map.get(key)
        label = f"{section}[{', '.join(key)}]"
        if old is None:
            rows.append((label, "new row"))
        else:
            rows.append((label, fmt_delta(old, rps, True) + "  rps"))
            if threshold is not None and old > 0:
                pct = (rps - old) / old * 100.0
                if pct < -threshold:
                    regressions.append(f"{label}: {old:.0f} -> {rps:.0f} rps "
                                       f"({pct:+.2f}%)")
    return rows


def main():
    argv = sys.argv[1:]
    threshold = None
    if argv and argv[0] == "--fail-on-regress":
        if len(argv) < 2:
            print(__doc__.strip(), file=sys.stderr)
            sys.exit(2)
        try:
            threshold = float(argv[1])
        except ValueError:
            print(f"bench_diff: bad --fail-on-regress value {argv[1]!r}",
                  file=sys.stderr)
            sys.exit(2)
        argv = argv[2:]
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    base = load(argv[0])
    fresh = load(argv[1])
    rows = diff_micro(base, fresh)
    regressions = []
    for section in ("serving", "cluster"):
        rows.extend(diff_tables(base, fresh, section, regressions, threshold))
    if not rows:
        print("bench_diff: nothing comparable between the two snapshots")
        return
    width = max(len(name) for name, _ in rows)
    print(f"bench_diff: {argv[1]} vs baseline {argv[0]}")
    print(f"  baseline: {fmt_provenance(base)}")
    print(f"  fresh:    {fmt_provenance(fresh)}")
    for name, delta in rows:
        print(f"  {name:<{width}}  {delta}")
    if threshold is None:
        print("bench_diff: positive = fresh run is larger; (+)/(-) marks "
              ">=2% better/worse; informational only, never gates")
        return
    if regressions:
        print(f"bench_diff: FAIL — serving/cluster throughput regressed "
              f"more than {threshold:g}% vs baseline:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        sys.exit(1)
    print(f"bench_diff: no serving/cluster throughput regression beyond "
          f"{threshold:g}%")


if __name__ == "__main__":
    main()
