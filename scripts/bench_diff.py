#!/usr/bin/env python3
"""Compare two bench_snapshot.sh documents (rlb-bench-snapshot-v1).

Usage: bench_diff.py <baseline.json> <fresh.json>

Prints a per-benchmark delta table: micro benchmarks matched by name
(items_per_second preferred, real_time as the fallback), serving/cluster
tables matched by their key columns with throughput_rps compared.  The
script is informational and always exits 0 on well-formed input — it
backs a non-gating CI step, so regressions show up in the log without
failing the build.  Exit 2 only when an input file is missing/unreadable.
"""
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def fmt_delta(old, new, higher_is_better):
    if not old:
        return "n/a"
    pct = (new - old) / old * 100.0
    arrow = ""
    if abs(pct) >= 2.0:
        better = (pct > 0) == higher_is_better
        arrow = " (+)" if better else " (-)"
    return f"{pct:+7.2f}%{arrow}"


def diff_micro(base, fresh):
    base_by_name = {b["name"]: b for b in base.get("micro", [])}
    rows = []
    for b in fresh.get("micro", []):
        old = base_by_name.get(b["name"])
        if old is None:
            rows.append((b["name"], "new benchmark"))
            continue
        if "items_per_second" in b and "items_per_second" in old:
            rows.append((b["name"],
                         fmt_delta(old["items_per_second"],
                                   b["items_per_second"], True)
                         + "  items/s"))
        elif "real_time" in b and "real_time" in old:
            rows.append((b["name"],
                         fmt_delta(old["real_time"], b["real_time"], False)
                         + "  time"))
    for name in base_by_name:
        if name not in {b["name"] for b in fresh.get("micro", [])}:
            rows.append((name, "removed"))
    return rows


def table_rows(doc, section):
    """Yield (key-tuple, throughput) per row of every table that has a
    throughput_rps column; the key is every cell left of that column."""
    for table in doc.get(section, {}).get("tables", []):
        headers = table.get("headers", [])
        if "throughput_rps" not in headers:
            continue
        at = headers.index("throughput_rps")
        for row in table.get("rows", []):
            if len(row) <= at:
                continue
            try:
                yield tuple(str(c) for c in row[:at]), float(row[at])
            except (TypeError, ValueError):
                continue


def diff_tables(base, fresh, section):
    base_map = dict(table_rows(base, section))
    rows = []
    for key, rps in table_rows(fresh, section):
        old = base_map.get(key)
        label = f"{section}[{', '.join(key)}]"
        if old is None:
            rows.append((label, "new row"))
        else:
            rows.append((label, fmt_delta(old, rps, True) + "  rps"))
    return rows


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    base = load(sys.argv[1])
    fresh = load(sys.argv[2])
    rows = diff_micro(base, fresh)
    for section in ("serving", "cluster"):
        rows.extend(diff_tables(base, fresh, section))
    if not rows:
        print("bench_diff: nothing comparable between the two snapshots")
        return
    width = max(len(name) for name, _ in rows)
    print(f"bench_diff: {sys.argv[2]} vs baseline {sys.argv[1]}")
    for name, delta in rows:
        print(f"  {name:<{width}}  {delta}")
    print("bench_diff: positive = fresh run is larger; (+)/(-) marks "
          ">=2% better/worse; informational only, never gates")


if __name__ == "__main__":
    main()
