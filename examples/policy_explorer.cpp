// policy_explorer — a small CLI for running any (policy, workload) cell of
// the design space.  The "downstream user" entry point: everything is a
// flag, defaults are sensible, output is one summary table.
//
//   $ ./policy_explorer                                  # defaults
//   $ ./policy_explorer --policy delayed-cuckoo --workload zipf \
//         --servers 4096 --steps 500 --g 16 --seed 3
//   $ ./policy_explorer --policy all --workload repeated
//
// Flags:
//   --policy    greedy | greedy-d1 | delayed-cuckoo | random-of-d |
//               per-step-greedy | round-robin | all        (default greedy)
//   --workload  repeated | fresh | zipf | churn | mixed    (default repeated)
//   --servers N (default 1024)   --steps N   (default 200)
//   --d N       (default 2)      --g N       (default 8)
//   --q N       (0 = theorem default; default 0)
//   --seed N    (default 1)
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "policies/factory.hpp"
#include "report/table.hpp"
#include "workloads/fresh_uniform.hpp"
#include "workloads/mixed.hpp"
#include "workloads/phased_churn.hpp"
#include "workloads/reappearance_profile.hpp"
#include "workloads/repeated_set.hpp"
#include "workloads/zipf_workload.hpp"

namespace {

using namespace rlb;

struct Options {
  std::string policy = "greedy";
  std::string workload = "repeated";
  std::size_t servers = 1024;
  std::size_t steps = 200;
  unsigned d = 2;
  unsigned g = 8;
  std::size_t q = 0;
  std::uint64_t seed = 1;
};

bool parse(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument("missing value: " + flag);
      return argv[++i];
    };
    if (flag == "--policy") {
      options.policy = value();
    } else if (flag == "--workload") {
      options.workload = value();
    } else if (flag == "--servers") {
      options.servers = std::stoull(value());
    } else if (flag == "--steps") {
      options.steps = std::stoull(value());
    } else if (flag == "--d") {
      options.d = static_cast<unsigned>(std::stoul(value()));
    } else if (flag == "--g") {
      options.g = static_cast<unsigned>(std::stoul(value()));
    } else if (flag == "--q") {
      options.q = std::stoull(value());
    } else if (flag == "--seed") {
      options.seed = std::stoull(value());
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::cerr << "unknown flag: " << flag << "\n";
      return false;
    }
  }
  return true;
}

std::unique_ptr<core::Workload> make_workload(const Options& options) {
  const std::size_t count = options.servers;
  const std::uint64_t seed = stats::derive_seed(options.seed, 100);
  if (options.workload == "repeated") {
    return std::make_unique<workloads::RepeatedSetWorkload>(count, 1ULL << 40,
                                                            seed);
  }
  if (options.workload == "fresh") {
    return std::make_unique<workloads::FreshUniformWorkload>(count);
  }
  if (options.workload == "zipf") {
    return std::make_unique<workloads::ZipfWorkload>(count, 8 * count, 0.99,
                                                     seed);
  }
  if (options.workload == "churn") {
    return std::make_unique<workloads::PhasedChurnWorkload>(count, 0.2, 4,
                                                            seed);
  }
  if (options.workload == "mixed") {
    return std::make_unique<workloads::MixedWorkload>(count, 0.5, seed);
  }
  throw std::invalid_argument("unknown workload: " + options.workload);
}

void run_one(const std::string& policy_name, const Options& options,
             report::Table& table) {
  policies::PolicyConfig config;
  config.servers = options.servers;
  config.replication = options.d;
  config.processing_rate = options.g;
  config.queue_capacity = options.q;
  config.seed = options.seed;
  auto balancer = policies::make_policy(policy_name, config);
  auto workload = make_workload(options);

  core::SimConfig sim;
  sim.steps = options.steps;
  sim.check_safety = true;
  const core::SimResult r = core::simulate(*balancer, *workload, sim);

  table.row()
      .cell(policy_name)
      .cell_sci(r.metrics.rejection_rate())
      .cell(r.metrics.average_latency(), 3)
      .cell(r.metrics.latency_quantile(0.99))
      .cell(r.metrics.max_latency())
      .cell(r.max_backlog)
      .cell(r.metrics.safety_violations());
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  try {
    if (!parse(argc, argv, options)) {
      std::cout << "usage: policy_explorer [--policy NAME|all] [--workload "
                   "repeated|fresh|zipf|churn|mixed]\n"
                   "                       [--servers N] [--steps N] [--d N] "
                   "[--g N] [--q N] [--seed N]\n";
      return 1;
    }

    std::cout << "policy_explorer: m=" << options.servers
              << " steps=" << options.steps << " d=" << options.d
              << " g=" << options.g << " q="
              << (options.q ? std::to_string(options.q) : "theorem-default")
              << " workload=" << options.workload << " seed=" << options.seed
              << "\n\n";

    // Characterize the chosen workload's reappearance dependence first.
    {
      auto probe = make_workload(options);
      const workloads::ReappearanceProfile profile =
          workloads::profile_workload(*probe,
                                      std::min<std::size_t>(options.steps, 100));
      std::cout << "workload profile: reappearance fraction "
                << profile.reappearance_fraction() << ", median reuse distance "
                << profile.reuse_distance.quantile(0.5)
                << ", working-set ratio " << profile.working_set_ratio()
                << "\n\n";
    }

    report::Table table({"policy", "rejection", "avg_lat", "p99_lat",
                         "max_lat", "max_backlog", "safety_violations"});
    if (options.policy == "all") {
      for (const std::string& name : policies::policy_names()) {
        run_one(name, options, table);
      }
    } else {
      run_one(options.policy, options, table);
    }
    table.print(std::cout);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
