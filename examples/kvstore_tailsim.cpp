// kvstore_tailsim — a distributed key-value store tail-latency study.
//
// The scenario the paper's introduction motivates: a KV store with skewed
// (Zipf) key popularity, where hot chunks are requested on nearly every
// step (heavy reappearance dependencies on the head of the distribution).
// We model a 2048-server cluster at ~85% utilization and compare the full
// latency distribution — p50 / p90 / p99 / p999 / max — across routing
// policies, the view an SRE would want before picking one.
//
//   $ ./kvstore_tailsim
#include <iostream>

#include "core/simulator.hpp"
#include "policies/factory.hpp"
#include "report/table.hpp"
#include "workloads/zipf_workload.hpp"

int main() {
  using namespace rlb;

  constexpr std::size_t kServers = 2048;
  // Tight capacity: g = 2 per server against a full m-requests-per-step
  // load (1 arrival per server per step on average) — the regime where
  // routing quality shows up in the tail.  (delayed-cuckoo runs at g = 4,
  // the minimum its four-queue discipline supports.)
  constexpr unsigned kProcessing = 2;
  const std::size_t kRequestsPerStep = kServers;
  constexpr std::size_t kSteps = 150;
  constexpr double kSkew = 0.99;  // YCSB-like
  constexpr std::uint64_t kSeed = 7;

  std::cout << "kvstore_tailsim — " << kServers << " servers, "
            << kRequestsPerStep << " requests/step (the m/step model ceiling), Zipf("
            << kSkew << ") keys, " << kSteps << " steps\n\n";

  report::Table table({"policy", "rejection", "p50", "p90", "p99", "p999",
                       "max", "mean backlog"});

  for (const std::string& name : policies::policy_names()) {
    policies::PolicyConfig config;
    config.servers = kServers;
    config.replication = 2;
    config.processing_rate = kProcessing;
    config.queue_capacity = 0;  // theorem default per policy
    config.seed = kSeed;
    auto balancer = policies::make_policy(name, config);

    workloads::ZipfWorkload workload(kRequestsPerStep, 8 * kServers * 4,
                                     kSkew, kSeed);
    core::SimConfig sim;
    sim.steps = kSteps;
    const core::SimResult r = core::simulate(*balancer, workload, sim);

    table.row()
        .cell(name)
        .cell_sci(r.metrics.rejection_rate())
        .cell(r.metrics.latency_quantile(0.50))
        .cell(r.metrics.latency_quantile(0.90))
        .cell(r.metrics.latency_quantile(0.99))
        .cell(r.metrics.latency_quantile(0.999))
        .cell(r.metrics.max_latency())
        .cell(r.metrics.backlog_stats().mean(), 3);
  }

  table.print(std::cout);
  std::cout << "\nHow to read this: latencies are in whole time steps (0 = "
               "served the step it arrived).\nBacklog-aware greedy and "
               "delayed-cuckoo hold the p99/p999 tail flat; the d = 1 and\n"
               "time-step-isolated rows show the tail (and rejections) an "
               "operator would suffer without\nreplication-aware, history-"
               "aware routing.\n";
  return 0;
}
