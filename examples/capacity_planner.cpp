// capacity_planner — how much server capacity does each policy need?
//
// The operator's question the paper answers in O-notation, answered in
// numbers: for a target workload, find the minimum processing rate g (at
// the policy's theorem-default queue size) that yields ZERO rejections
// across seeded trials, and report the average/max latency at that
// provisioning point.  Policies that fight reappearance dependencies well
// need less hardware.
//
//   $ ./capacity_planner                       # defaults: m=1024, repeated
//   $ ./capacity_planner --workload zipf --servers 4096
//
// Flags: --servers N, --steps N, --workload repeated|zipf|churn, --seed N
#include <iostream>
#include <memory>
#include <string>

#include "core/simulator.hpp"
#include "policies/factory.hpp"
#include "report/table.hpp"
#include "workloads/phased_churn.hpp"
#include "workloads/repeated_set.hpp"
#include "workloads/zipf_workload.hpp"

namespace {

using namespace rlb;

struct Options {
  std::size_t servers = 1024;
  std::size_t steps = 150;
  std::string workload = "repeated";
  std::uint64_t seed = 1;
};

std::unique_ptr<core::Workload> make_workload(const Options& options,
                                              std::uint64_t seed) {
  if (options.workload == "zipf") {
    return std::make_unique<workloads::ZipfWorkload>(
        options.servers, 8 * options.servers, 0.99, seed);
  }
  if (options.workload == "churn") {
    return std::make_unique<workloads::PhasedChurnWorkload>(options.servers,
                                                            0.25, 4, seed);
  }
  return std::make_unique<workloads::RepeatedSetWorkload>(
      options.servers, 1ULL << 40, seed);
}

/// Zero rejections across 3 seeds at processing rate g?
bool clean_at(const std::string& policy, unsigned g, const Options& options) {
  for (std::uint64_t trial = 0; trial < 3; ++trial) {
    policies::PolicyConfig config;
    config.servers = options.servers;
    config.replication = 2;
    // Delayed cuckoo needs multiples of 4; the factory rounds up, so probe
    // at the rounded value for every policy to keep rates comparable.
    config.processing_rate = g;
    config.queue_capacity = 0;
    config.seed = stats::derive_seed(options.seed, trial);
    auto balancer = policies::make_policy(policy, config);
    auto workload =
        make_workload(options, stats::derive_seed(options.seed, 90 + trial));
    core::SimConfig sim;
    sim.steps = options.steps;
    sim.sample_backlogs = false;
    if (core::simulate(*balancer, *workload, sim).metrics.rejected() > 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&] { return std::string(argv[++i]); };
    if (flag == "--servers" && i + 1 < argc) {
      options.servers = std::stoull(value());
    } else if (flag == "--steps" && i + 1 < argc) {
      options.steps = std::stoull(value());
    } else if (flag == "--workload" && i + 1 < argc) {
      options.workload = value();
    } else if (flag == "--seed" && i + 1 < argc) {
      options.seed = std::stoull(value());
    } else {
      std::cout << "usage: capacity_planner [--servers N] [--steps N] "
                   "[--workload repeated|zipf|churn] [--seed N]\n";
      return 1;
    }
  }

  std::cout << "capacity_planner — minimum g for zero rejections (m = "
            << options.servers << ", workload = " << options.workload
            << ", q = theorem default, 3 seeds x " << options.steps
            << " steps)\n\n";

  report::Table table({"policy", "min g (zero rejections)", "avg_lat @ min g",
                       "max_lat @ min g"});
  for (const std::string policy :
       {"greedy", "greedy-left", "sticky", "threshold", "batched-greedy",
        "delayed-cuckoo", "per-step-greedy", "round-robin", "random-of-d",
        "greedy-d1"}) {
    // Linear scan over small g (the interesting range is tiny).  Delayed
    // cuckoo's four-queue discipline only exists at multiples of 4, so
    // probe those directly to report the true effective rate.
    unsigned found = 0;
    for (unsigned g = 1; g <= 32; g == 1 ? g = 2 : g += (g < 8 ? 1 : 4)) {
      const bool is_cuckoo = policy == "delayed-cuckoo";
      if (is_cuckoo && g % 4 != 0) continue;
      if (clean_at(policy, g, options)) {
        found = g;
        break;
      }
    }
    if (found == 0) {
      table.row().cell(policy).cell("> 32 (cannot be provisioned)").cell("-")
          .cell("-");
      continue;
    }
    // Report latency at the provisioning point (first seed).
    policies::PolicyConfig config;
    config.servers = options.servers;
    config.replication = 2;
    config.processing_rate = found;
    config.queue_capacity = 0;
    config.seed = stats::derive_seed(options.seed, 0);
    auto balancer = policies::make_policy(policy, config);
    auto workload = make_workload(options, stats::derive_seed(options.seed, 90));
    core::SimConfig sim;
    sim.steps = options.steps;
    const core::SimResult result = core::simulate(*balancer, *workload, sim);
    table.row()
        .cell(policy)
        .cell(found)
        .cell(result.metrics.average_latency(), 3)
        .cell(result.metrics.max_latency());
  }
  table.print(std::cout);
  std::cout << "\nHow to read this: g is per-server capacity (requests per "
               "step) against an arrival rate of ~1 per server per step.  "
               "History-aware policies provision at the arrival-rate floor; "
               "the d = 1 and isolated baselines need multiples of it — or "
               "cannot reach zero rejections at all — which is the paper's "
               "guarantees translated into hardware.\n";
  return 0;
}
