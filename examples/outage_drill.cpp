// Outage drill: a scripted rack failure against the fault subsystem.
//
// Walks through the failure-injection API end to end: a
// ScriptedFailureSchedule takes one 32-server "rack" down at step 100 and
// brings it back at step 200, while greedy (d = 2) keeps routing the same
// repeated chunk set.  Per-window rejection shows the three regimes —
// clean, degraded (every chunk with a replica on the dead rack fails over
// to its survivor; the rare both-replicas-down chunk is rejected), and
// recovered.
//
//   $ ./outage_drill
#include <iostream>
#include <vector>

#include "core/failure.hpp"
#include "core/simulator.hpp"
#include "core/timeseries.hpp"
#include "harness/output.hpp"
#include "policies/greedy.hpp"
#include "report/table.hpp"
#include "workloads/repeated_set.hpp"

int main(int argc, char** argv) {
  using namespace rlb;
  harness::init_output(argc, argv);  // --trace/--probes work here too

  constexpr std::size_t kServers = 256;  // m
  constexpr std::size_t kRackSize = 32;
  constexpr core::Time kCrashStep = 100;
  constexpr core::Time kRecoverStep = 200;
  constexpr std::size_t kSteps = 300;
  // This seed places 6 of the 256 chunks with BOTH replicas on the doomed
  // rack, so the outage window shows real rejections (some seeds place 0).
  constexpr std::uint64_t kSeed = 7;

  // Script the outage: servers [0, 16) all crash at step 100 and all
  // recover at step 200.
  std::vector<core::ScriptedFailureSchedule::Event> events;
  for (std::size_t s = 0; s < kRackSize; ++s) {
    events.push_back({kCrashStep, static_cast<core::ServerId>(s), false});
    events.push_back({kRecoverStep, static_cast<core::ServerId>(s), true});
  }
  core::ScriptedFailureSchedule schedule(std::move(events));

  auto config = policies::GreedyBalancer::theorem_config(
      kServers, /*replication=*/2, /*processing_rate=*/4, kSeed);
  policies::GreedyBalancer greedy(config);
  workloads::RepeatedSetWorkload workload(kServers, /*universe=*/1ULL << 40,
                                          kSeed);

  core::SeriesRecorder recorder;
  core::SimConfig sim;
  sim.steps = kSteps;
  sim.failure_schedule = &schedule;
  sim.dump_queue_on_crash = true;  // crash loses the rack's queued work
  sim.recorder = &recorder;
  const core::SimResult r = core::simulate(greedy, workload, sim);

  std::cout << "rlb outage drill — " << kServers << " servers, one "
            << kRackSize << "-server rack down for steps [" << kCrashStep
            << ", " << kRecoverStep << ")\n\n";

  report::Table table({"window", "steps", "rejection rate"});
  table.row().cell("before outage").cell("0-99").cell_sci(
      recorder.windowed_rejection_rate(99, 100));
  table.row().cell("during outage").cell("100-199").cell_sci(
      recorder.windowed_rejection_rate(199, 100));
  table.row().cell("after recovery").cell("200-299").cell_sci(
      recorder.windowed_rejection_rate(299, 100));
  table.print(std::cout);

  std::cout << "\ncrashes: " << r.crashes << ", recoveries: " << r.recoveries
            << ", still down at end: " << r.down_at_end
            << "\ntotal rejected: " << r.metrics.rejected() << " of "
            << r.metrics.submitted()
            << " (any work queued on the rack at step " << kCrashStep
            << " was dumped)\n";
  std::cout << "\nDuring the outage every chunk with one replica on the dead "
               "rack fails over to\nits surviving replica; only chunks with "
               "BOTH replicas there are rejected.  After\nstep 200 the rack "
               "drains back to a clean steady state.\n";
  return 0;
}
