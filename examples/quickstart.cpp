// Quickstart: the 60-second tour of the rlb public API.
//
// Builds a 1024-server cluster, routes an adversarial repeated workload
// through the paper's two algorithms (greedy, Section 3; delayed cuckoo
// routing, Section 4), and prints the metrics the paper optimizes:
// rejection rate, average latency, max latency.
//
//   $ ./quickstart
#include <iostream>

#include "core/simulator.hpp"
#include "policies/delayed_cuckoo.hpp"
#include "policies/greedy.hpp"
#include "report/table.hpp"
#include "workloads/repeated_set.hpp"

int main() {
  using namespace rlb;

  constexpr std::size_t kServers = 1024;   // m
  constexpr std::size_t kSteps = 200;
  constexpr std::uint64_t kSeed = 2024;

  // The adversary: the same 1024 chunks requested every step — maximal
  // reappearance dependencies.
  workloads::RepeatedSetWorkload workload(kServers, /*universe=*/1ULL << 40,
                                          kSeed);

  // Algorithm 1 — greedy (Theorem 3.1): d = 4 replicas, g = 4, queues of
  // log2(m) + 1 = 11.
  auto greedy_config =
      policies::GreedyBalancer::theorem_config(kServers, /*replication=*/4,
                                               /*processing_rate=*/4, kSeed);
  policies::GreedyBalancer greedy(greedy_config);

  // Algorithm 2 — delayed cuckoo routing (Theorem 4.3): d = 2 replicas,
  // queues of Θ(log log m) ≈ 16, g = 16 split over four queues.
  policies::DelayedCuckooConfig cuckoo_config;
  cuckoo_config.servers = kServers;
  cuckoo_config.processing_rate = 16;
  cuckoo_config.seed = kSeed;
  policies::DelayedCuckooBalancer cuckoo(cuckoo_config);

  core::SimConfig sim;
  sim.steps = kSteps;
  sim.check_safety = true;  // verify Definition 3.2 each step

  report::Table table({"policy", "queue size", "rejection rate",
                       "avg latency (steps)", "max latency", "safety "
                       "violations"});

  {
    workloads::RepeatedSetWorkload fresh_copy(kServers, 1ULL << 40, kSeed);
    const core::SimResult r = core::simulate(greedy, fresh_copy, sim);
    table.row()
        .cell("greedy (Thm 3.1)")
        .cell(static_cast<std::uint64_t>(greedy_config.queue_capacity))
        .cell_sci(r.metrics.rejection_rate())
        .cell(r.metrics.average_latency(), 3)
        .cell(r.metrics.max_latency())
        .cell(r.metrics.safety_violations());
  }
  {
    workloads::RepeatedSetWorkload fresh_copy(kServers, 1ULL << 40, kSeed);
    const core::SimResult r = core::simulate(cuckoo, fresh_copy, sim);
    table.row()
        .cell("delayed cuckoo (Thm 4.3)")
        .cell(static_cast<std::uint64_t>(4 * cuckoo.queue_capacity()))
        .cell_sci(r.metrics.rejection_rate())
        .cell(r.metrics.average_latency(), 3)
        .cell(r.metrics.max_latency())
        .cell(r.metrics.safety_violations());
  }

  std::cout << "rlb quickstart — " << kServers << " servers, " << kSteps
            << " steps of a fully repeated (adversarial) workload\n\n";
  table.print(std::cout);
  std::cout << "\nBoth algorithms keep every request (rejection 0) with O(1) "
               "average latency,\ndespite every chunk reappearing with the "
               "same replica servers each step.\nSee bench/ for the full "
               "experiment suite and DESIGN.md for the map to the paper.\n";
  return 0;
}
