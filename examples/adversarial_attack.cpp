// adversarial_attack — watching the impossibility results happen.
//
// Narrative walk-through of the paper's negative results, step by step:
//
//   Act 1 (Section 1 / [34]): a d = 1 cluster under a repeated working set.
//          We print the backlog of the most-overloaded server every few
//          steps: it climbs linearly until the queue saturates, then the
//          server rejects a constant stream forever.  Growing q only delays
//          the inevitable.
//   Act 2 (Lemma 5.3): the same workload against a time-step-isolated
//          router (random-of-d).  Despite d = 2, some servers' queues
//          still fill — per-step randomness cannot cancel reappearance
//          dependencies.
//   Act 3 (Sections 3-4): greedy and delayed cuckoo routing on the very
//          same trace — flat backlogs, zero rejections.
//
//   $ ./adversarial_attack
#include <algorithm>
#include <iostream>

#include "core/simulator.hpp"
#include "policies/factory.hpp"
#include "report/table.hpp"
#include "workloads/repeated_set.hpp"
#include "workloads/trace.hpp"

namespace {

using namespace rlb;

constexpr std::size_t kServers = 512;
constexpr std::size_t kSteps = 120;
constexpr std::uint64_t kSeed = 99;

/// Step the balancer through the trace, printing the max backlog and
/// cumulative rejections at checkpoints.
void narrate(core::LoadBalancer& balancer, const workloads::Trace& trace,
             const std::string& title) {
  std::cout << "\n--- " << title << " ---\n";
  report::Table table(
      {"step", "max backlog", "rejected so far", "rejection rate"});
  core::Metrics metrics;
  for (std::size_t step = 0; step < kSteps; ++step) {
    balancer.step(static_cast<core::Time>(step), trace.step(step), metrics);
    if ((step + 1) % 20 == 0 || step == 0) {
      std::uint32_t max_backlog = 0;
      for (core::ServerId s = 0; s < kServers; ++s) {
        max_backlog = std::max(max_backlog, balancer.backlog(s));
      }
      table.row()
          .cell(static_cast<std::uint64_t>(step + 1))
          .cell(max_backlog)
          .cell(metrics.rejected())
          .cell_sci(metrics.rejection_rate());
    }
  }
  table.print(std::cout);
}

policies::PolicyConfig base_config() {
  policies::PolicyConfig config;
  config.servers = kServers;
  config.replication = 2;
  // g = 2 keeps the servers honest: a server needs > 2 arrivals per step to
  // drown, which is exactly what reappearance dependencies arrange for the
  // unlucky servers in Acts 1 and 2.
  config.processing_rate = 2;
  config.queue_capacity = 16;
  config.seed = kSeed;
  return config;
}

}  // namespace

int main() {
  std::cout << "adversarial_attack — the same " << kServers
            << "-chunk working set requested every step against four "
               "routers\n(m = "
            << kServers << ", g = 2, q = 16, identical trace)\n";

  workloads::RepeatedSetWorkload source(kServers, 1ULL << 40, kSeed,
                                        /*shuffle_each_step=*/false);
  const workloads::Trace trace = workloads::Trace::record(source, kSteps);

  {
    auto config = base_config();
    auto balancer = policies::make_policy("greedy-d1", config);
    narrate(*balancer,
            trace,
            "Act 1: no replication (d = 1) — the [34] impossibility");
  }
  {
    auto config = base_config();
    auto balancer = policies::make_policy("random-of-d", config);
    narrate(*balancer, trace,
            "Act 2: d = 2 but time-step-isolated routing — Lemma 5.3");
  }
  {
    auto config = base_config();
    auto balancer = policies::make_policy("greedy", config);
    narrate(*balancer, trace, "Act 3a: greedy (Theorem 3.1)");
  }
  {
    auto config = base_config();
    config.processing_rate = 16;  // delayed cuckoo needs g >= 16 for 4 queues
    auto balancer = policies::make_policy("delayed-cuckoo", config);
    narrate(*balancer, trace, "Act 3b: delayed cuckoo routing (Theorem 4.3)");
  }

  std::cout << "\nMoral: replication alone (Act 2) is not enough and no "
               "replication (Act 1) is hopeless —\novercoming reappearance "
               "dependencies needs routing that reacts across time steps,\n"
               "either through backlogs (greedy) or through the previous "
               "step's cuckoo assignment\n(delayed cuckoo routing).\n";
  return 0;
}
