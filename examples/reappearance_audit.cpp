// reappearance_audit — analyze a request trace and predict which routing
// policies can survive it.
//
// A tool-style example: feed it a trace file (one step per line, space-
// separated chunk ids — the format Trace::save emits) or let it generate
// a demo trace, and it reports:
//   1. the reappearance profile (how adversarial the traffic is);
//   2. the structural overload analysis of a random d = 2 placement under
//      this working set (the Theorem 5.2 witness);
//   3. a measured shakeout: every policy run on the trace at tight g.
//
//   $ ./reappearance_audit                 # built-in demo trace
//   $ ./reappearance_audit my_trace.txt    # audit your own
//   $ ./policy_explorer ... (to explore further)
#include <algorithm>
#include <iostream>
#include <string>

#include "core/placement.hpp"
#include "core/placement_graph.hpp"
#include "core/simulator.hpp"
#include "policies/factory.hpp"
#include "report/table.hpp"
#include "workloads/reappearance_profile.hpp"
#include "workloads/zipf_workload.hpp"
#include "workloads/trace.hpp"

namespace {

using namespace rlb;

workloads::Trace demo_trace() {
  // A skewed KV-store-like demo: 512 requests/step, Zipf(1.05) keys.
  workloads::ZipfWorkload workload(512, 4096, 1.05, 2026);
  return workloads::Trace::record(workload, 150);
}

}  // namespace

int main(int argc, char** argv) {
  workloads::Trace trace;
  if (argc > 1) {
    try {
      trace = workloads::Trace::load_file(argv[1]);
      std::cout << "reappearance_audit — " << argv[1] << "\n";
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  } else {
    trace = demo_trace();
    std::cout << "reappearance_audit — built-in demo trace "
                 "(512 Zipf(1.05) requests/step, 150 steps)\n";
  }
  if (trace.step_count() == 0) {
    std::cerr << "error: empty trace\n";
    return 1;
  }

  // 1. Reappearance profile.
  workloads::ReappearanceAnalyzer analyzer;
  std::size_t max_batch = 0;
  for (std::size_t step = 0; step < trace.step_count(); ++step) {
    analyzer.observe_step(static_cast<core::Time>(step), trace.step(step));
    max_batch = std::max(max_batch, trace.step(step).size());
  }
  const workloads::ReappearanceProfile& profile = analyzer.profile();
  std::cout << "\n1. Traffic profile\n";
  report::Table profile_table({"metric", "value"});
  profile_table.row().cell("steps").cell(trace.step_count());
  profile_table.row().cell("requests").cell(profile.total_requests);
  profile_table.row().cell("distinct chunks").cell(profile.distinct_chunks);
  profile_table.row()
      .cell("reappearance fraction")
      .cell(profile.reappearance_fraction(), 3);
  profile_table.row()
      .cell("median reuse distance (steps)")
      .cell(profile.reuse_distance.quantile(0.5));
  profile_table.row()
      .cell("p95 reuse distance")
      .cell(profile.reuse_distance.quantile(0.95));
  profile_table.print(std::cout);

  // 2. Structural overload under a d = 2 placement sized to the traffic.
  // The Theorem 5.2 witness concerns the PERSISTENT per-step load, so the
  // analysis takes the hottest max_batch chunks (the effective working
  // set), not every chunk ever seen.
  const std::size_t servers = std::max<std::size_t>(max_batch, 2);
  std::cout << "\n2. Placement-graph structure of the hot working set (m = "
            << servers << " servers, d = 2, g = 1 reference)\n";
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  {
    std::unordered_map<core::ChunkId, std::uint64_t> counts;
    for (std::size_t step = 0; step < trace.step_count(); ++step) {
      for (const core::ChunkId x : trace.step(step)) ++counts[x];
    }
    std::vector<std::pair<std::uint64_t, core::ChunkId>> ranked;
    ranked.reserve(counts.size());
    for (const auto& [chunk, count] : counts) ranked.emplace_back(count, chunk);
    std::sort(ranked.rbegin(), ranked.rend());
    if (ranked.size() > servers) ranked.resize(servers);

    const core::Placement placement(servers, 2, 4242);
    for (const auto& [count, chunk] : ranked) {
      const core::ChoiceList choices = placement.choices(chunk);
      edges.emplace_back(choices[0], choices[1]);
    }
  }
  const core::PlacementGraphStats graph =
      core::analyze_edge_list(edges, servers, 1);
  report::Table graph_table({"metric", "value"});
  graph_table.row().cell("components").cell(graph.components);
  graph_table.row().cell("largest component").cell(graph.largest_component);
  graph_table.row().cell("complex components").cell(graph.complex_components);
  graph_table.row()
      .cell("max overload excess (g=1)")
      .cell(static_cast<std::int64_t>(graph.max_overload_excess));
  graph_table.row()
      .cell("cuckoo feasible (1/server)")
      .cell(graph.cuckoo_feasible() ? "yes" : "no");
  graph_table.print(std::cout);

  // 3. Measured shakeout on the actual trace.
  std::cout << "\n3. Policy shakeout on this trace (g = 2, theorem-default "
               "queues)\n";
  report::Table shakeout({"policy", "rejection", "avg_lat", "p99_lat",
                          "max_backlog"});
  for (const std::string& name : policies::policy_names()) {
    policies::PolicyConfig config;
    config.servers = servers;
    config.replication = 2;
    config.processing_rate = name == "delayed-cuckoo" ? 8 : 2;
    config.queue_capacity = 0;
    config.seed = 99;
    auto balancer = policies::make_policy(name, config);
    workloads::TraceWorkload workload(trace);
    core::SimConfig sim;
    sim.steps = trace.step_count();
    const core::SimResult r = core::simulate(*balancer, workload, sim);
    shakeout.row()
        .cell(name)
        .cell_sci(r.metrics.rejection_rate())
        .cell(r.metrics.average_latency(), 3)
        .cell(r.metrics.latency_quantile(0.99))
        .cell(r.max_backlog);
  }
  shakeout.print(std::cout);
  std::cout << "\nInterpretation: high reappearance fraction + short reuse "
               "distance means routing must carry information across steps "
               "(paper §1); positive overload excess means NO d=2 policy "
               "at g=1 could keep every request (Theorem 5.2).\n";
  return 0;
}
