// rlb_stat — poll a running rlbd for its live metrics snapshot.
//
// Opens a dedicated admin connection (STATS frames never share a
// connection with request traffic), sends one STATS frame per poll, and
// renders the STATS_RESP snapshot: an aligned per-shard table plus the
// safe-set monitor by default, Prometheus text with --prom, one JSON line
// with --json, or a continuously refreshed view with --watch.
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "cluster/router.hpp"
#include "net/client.hpp"
#include "net/stats.hpp"
#include "report/table.hpp"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void handle_signal(int) { g_stop_requested = 1; }

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [flags]\n"
            << "  --host <addr>     daemon address (default 127.0.0.1)\n"
            << "  --port <p>        daemon port (default 4117)\n"
            << "  --watch [s]       refresh every s seconds (default 1)\n"
            << "  --prom            Prometheus text exposition\n"
            << "  --json            one JSON object per snapshot\n"
            << "  --cluster <host:port,...>\n"
            << "                    fan out: scrape every listed endpoint\n"
            << "                    (router + backends) and merge into one\n"
            << "                    per-node table (or a JSON document)\n";
}

void print_pretty(const rlb::net::StatsSnapshot& snapshot) {
  using rlb::report::Table;
  const rlb::net::ShardStats totals = snapshot.totals();

  std::cout << rlb::net::to_string(snapshot.role) << " " << snapshot.policy
            << " id=" << snapshot.backend_id << " m=" << snapshot.servers
            << " d=" << snapshot.replication << " g="
            << snapshot.processing_rate << " q=" << snapshot.queue_capacity
            << " shards=" << snapshot.shard_count << " uptime="
            << snapshot.uptime_ms / 1000 << "s\n";

  Table shards({"shard", "submitted", "completed", "rej_q", "rej_down",
                "rej_adm", "rej_drop", "inbound", "waiting", "inflight",
                "backlog", "down", "ticks"});
  for (const rlb::net::ShardStats& s : snapshot.shards) {
    shards.row()
        .cell(static_cast<std::uint64_t>(s.shard))
        .cell(s.submitted)
        .cell(s.completed)
        .cell(s.rejected_queue_full)
        .cell(s.rejected_all_down)
        .cell(s.rejected_admission)
        .cell(s.rejected_drop)
        .cell(s.inbound_depth)
        .cell(s.waiting_depth)
        .cell(s.inflight)
        .cell(s.backlog)
        .cell(s.servers_down)
        .cell(s.ticks);
  }
  shards.row()
      .cell("total")
      .cell(totals.submitted)
      .cell(totals.completed)
      .cell(totals.rejected_queue_full)
      .cell(totals.rejected_all_down)
      .cell(totals.rejected_admission)
      .cell(totals.rejected_drop)
      .cell(totals.inbound_depth)
      .cell(totals.waiting_depth)
      .cell(totals.inflight)
      .cell(totals.backlog)
      .cell(totals.servers_down)
      .cell(totals.ticks);
  shards.print(std::cout);

  std::cout << "latency_us: count=" << snapshot.latency.count
            << " p50=" << snapshot.latency.quantile_us(0.5)
            << " p95=" << snapshot.latency.quantile_us(0.95)
            << " p99=" << snapshot.latency.quantile_us(0.99)
            << " max=" << snapshot.latency.max_us << "\n";

  // Per-hop decomposition (v3): a router reports upstream RTTs, a backend
  // reports submit->drain-tick queue wait.  The counterpart stays empty.
  if (snapshot.hop_rtt.count > 0) {
    std::cout << "hop_rtt_us: count=" << snapshot.hop_rtt.count
              << " p50=" << snapshot.hop_rtt.quantile_us(0.5)
              << " p95=" << snapshot.hop_rtt.quantile_us(0.95)
              << " p99=" << snapshot.hop_rtt.quantile_us(0.99)
              << " max=" << snapshot.hop_rtt.max_us << "\n";
  }
  if (snapshot.queue_wait.count > 0) {
    std::cout << "queue_wait_us: count=" << snapshot.queue_wait.count
              << " p50=" << snapshot.queue_wait.quantile_us(0.5)
              << " p95=" << snapshot.queue_wait.quantile_us(0.95)
              << " p99=" << snapshot.queue_wait.quantile_us(0.99)
              << " max=" << snapshot.queue_wait.max_us << "\n";
  }

  // Repair plane (v4): epoch + migration counters, shown only once the
  // cluster has actually repaired (or is repairing) something.
  const rlb::net::RepairStats& r = snapshot.repair;
  if (snapshot.placement_epoch != 0 || r.migrations_done != 0 ||
      r.migrations_inflight != 0 || r.chunks_pending != 0 ||
      r.migrations_in != 0 || r.migrations_out != 0) {
    std::cout << "repair: epoch=" << snapshot.placement_epoch;
    if (snapshot.role == rlb::net::NodeRole::kRouter) {
      std::cout << " migrated=" << r.migrations_done
                << " failed=" << r.migrations_failed
                << " inflight=" << r.migrations_inflight
                << " pending=" << r.chunks_pending
                << " bytes_sent=" << r.bytes_sent;
    } else {
      std::cout << " migrations_in=" << r.migrations_in
                << " migrations_out=" << r.migrations_out
                << " bytes_in=" << r.migration_bytes_in
                << " bytes_out=" << r.migration_bytes_out;
    }
    std::cout << "\n";
  }

  std::cout << "safe-set (Def 3.2): worst_ratio=" << snapshot.safe_worst_ratio
            << (snapshot.safe_violated_level
                    ? " VIOLATED at level " +
                          std::to_string(snapshot.safe_violated_level)
                    : " (safe)")
            << "\n";
  if (!snapshot.safe_set.empty()) {
    Table levels({"level_j", "backlog_gt_j", "bound_m_2j", "ratio"});
    for (const rlb::net::SafeSetLevelStats& level : snapshot.safe_set) {
      levels.row()
          .cell(static_cast<std::uint64_t>(level.level))
          .cell(level.observed)
          .cell(level.bound, 2)
          .cell(level.ratio, 3);
    }
    levels.print(std::cout);
  }
}

/// One endpoint's contribution to the --cluster fan-out.
struct ClusterRow {
  rlb::cluster::BackendEndpoint endpoint;
  bool reachable = false;
  rlb::net::StatsSnapshot snapshot;
};

/// Scrape every endpoint once (one dedicated admin connection each).
std::vector<ClusterRow> scrape_cluster(
    const std::vector<rlb::cluster::BackendEndpoint>& endpoints) {
  std::vector<ClusterRow> rows;
  for (const rlb::cluster::BackendEndpoint& endpoint : endpoints) {
    ClusterRow row;
    row.endpoint = endpoint;
    try {
      rlb::net::Client client;
      client.connect(endpoint.host, endpoint.port);
      client.set_recv_timeout_ms(2000);
      client.send_stats_request();
      client.flush();
      row.reachable = client.read_stats_response(row.snapshot);
    } catch (const std::exception&) {
      row.reachable = false;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_cluster_pretty(const std::vector<ClusterRow>& rows) {
  using rlb::report::Table;
  Table table({"endpoint", "role", "id", "policy", "m", "submitted",
               "completed", "rejected", "errors", "backlog", "down", "epoch",
               "p99_us", "uptime_s"});
  rlb::net::ShardStats backend_totals;
  std::uint64_t backends_seen = 0;
  for (const ClusterRow& row : rows) {
    const std::string where =
        row.endpoint.host + ":" + std::to_string(row.endpoint.port);
    if (!row.reachable) {
      table.row().cell(where).cell("unreachable");
      continue;
    }
    const rlb::net::ShardStats t = row.snapshot.totals();
    table.row()
        .cell(where)
        .cell(rlb::net::to_string(row.snapshot.role))
        .cell(static_cast<std::uint64_t>(row.snapshot.backend_id))
        .cell(row.snapshot.policy)
        .cell(static_cast<std::uint64_t>(row.snapshot.servers))
        .cell(t.submitted)
        .cell(t.completed)
        .cell(t.rejected_total())
        .cell(t.errors)
        .cell(t.backlog)
        .cell(t.servers_down)
        .cell(row.snapshot.placement_epoch)
        .cell(row.snapshot.latency.quantile_us(0.99), 0)
        .cell(row.snapshot.uptime_ms / 1000);
    if (row.snapshot.role == rlb::net::NodeRole::kBackend) {
      ++backends_seen;
      backend_totals.submitted += t.submitted;
      backend_totals.completed += t.completed;
      backend_totals.rejected_queue_full += t.rejected_total();
      backend_totals.errors += t.errors;
      backend_totals.backlog += t.backlog;
      backend_totals.servers_down += t.servers_down;
    }
  }
  if (backends_seen > 0) {
    // Backends only: a router relays what backends serve, so summing the
    // two tiers would double-count completions.
    table.row()
        .cell("backends")
        .cell("total")
        .cell("")
        .cell("")
        .cell("")
        .cell(backend_totals.submitted)
        .cell(backend_totals.completed)
        .cell(backend_totals.rejected_queue_full)
        .cell(backend_totals.errors)
        .cell(backend_totals.backlog)
        .cell(backend_totals.servers_down)
        .cell("")
        .cell("")
        .cell("");
  }
  table.print(std::cout);
}

void print_cluster_json(const std::vector<ClusterRow>& rows) {
  std::cout << "{\"endpoints\":[";
  std::uint64_t backend_completed = 0;
  std::uint64_t backend_rejected = 0;
  std::uint64_t backend_errors = 0;
  bool first = true;
  for (const ClusterRow& row : rows) {
    if (!first) std::cout << ",";
    first = false;
    std::cout << "{\"endpoint\":\"" << row.endpoint.host << ":"
              << row.endpoint.port << "\",\"reachable\":"
              << (row.reachable ? "true" : "false");
    if (row.reachable) {
      std::cout << ",\"snapshot\":" << rlb::net::render_json(row.snapshot);
      if (row.snapshot.role == rlb::net::NodeRole::kBackend) {
        const rlb::net::ShardStats t = row.snapshot.totals();
        backend_completed += t.completed;
        backend_rejected += t.rejected_total();
        backend_errors += t.errors;
      }
    }
    std::cout << "}";
  }
  std::cout << "],\"backend_totals\":{\"completed\":" << backend_completed
            << ",\"rejected\":" << backend_rejected
            << ",\"errors\":" << backend_errors << "}}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rlb;

  std::string host = "127.0.0.1";
  std::uint16_t port = 4117;
  bool watch = false;
  bool prom = false;
  bool json = false;
  std::uint64_t interval_s = 1;
  std::vector<cluster::BackendEndpoint> cluster_endpoints;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return 0;
    } else if (flag == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (flag == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (flag == "--watch") {
      watch = true;
      // Optional numeric operand.
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        interval_s = std::strtoull(argv[++i], nullptr, 10);
        if (interval_s == 0) interval_s = 1;
      }
    } else if (flag == "--prom") {
      prom = true;
    } else if (flag == "--json") {
      json = true;
    } else if (flag == "--cluster" && i + 1 < argc) {
      try {
        cluster_endpoints = cluster::parse_backend_list(argv[++i]);
      } catch (const std::exception& e) {
        std::cerr << "rlb_stat: " << e.what() << "\n";
        return 2;
      }
    } else {
      std::cerr << "rlb_stat: unknown flag '" << flag << "'\n";
      usage(argv[0]);
      return 2;
    }
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  if (!cluster_endpoints.empty()) {
    if (prom) {
      std::cerr << "rlb_stat: --cluster does not support --prom (scrape each "
                   "endpoint directly)\n";
      return 2;
    }
    do {
      const std::vector<ClusterRow> rows = scrape_cluster(cluster_endpoints);
      if (json) {
        print_cluster_json(rows);
      } else {
        if (watch) std::cout << "\033[H\033[2J";
        print_cluster_pretty(rows);
      }
      std::cout.flush();
      if (watch) {
        for (std::uint64_t s = 0; s < interval_s * 10 && !g_stop_requested;
             ++s) {
          ::usleep(100 * 1000);
        }
      }
    } while (watch && !g_stop_requested);
    return 0;
  }

  net::Client client;
  try {
    client.connect(host, port);
  } catch (const std::exception& e) {
    std::cerr << "rlb_stat: " << e.what() << "\n";
    return 1;
  }

  do {
    net::StatsSnapshot snapshot;
    try {
      client.send_stats_request();
      client.flush();
      if (!client.read_stats_response(snapshot)) {
        std::cerr << "rlb_stat: daemon closed the connection\n";
        return 1;
      }
    } catch (const std::exception& e) {
      std::cerr << "rlb_stat: " << e.what() << "\n";
      return 1;
    }
    if (prom) {
      std::cout << net::render_prometheus(snapshot);
    } else if (json) {
      std::cout << net::render_json(snapshot) << "\n";
    } else {
      if (watch) std::cout << "\033[H\033[2J";  // clear screen per refresh
      print_pretty(snapshot);
    }
    std::cout.flush();
    if (watch) {
      for (std::uint64_t s = 0; s < interval_s * 10 && !g_stop_requested;
           ++s) {
        ::usleep(100 * 1000);
      }
    }
  } while (watch && !g_stop_requested);

  return 0;
}
