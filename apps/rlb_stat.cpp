// rlb_stat — poll a running rlbd for its live metrics snapshot.
//
// Opens a dedicated admin connection (STATS frames never share a
// connection with request traffic), sends one STATS frame per poll, and
// renders the STATS_RESP snapshot: an aligned per-shard table plus the
// safe-set monitor by default, Prometheus text with --prom, one JSON line
// with --json, or a continuously refreshed view with --watch (which also
// shows per-interval deltas between scrapes next to lifetime counters).
//
// --events switches to the health plane's control-plane journal: every
// endpoint (the single --host/--port target, or the --cluster list) is
// drained over the EVENTS opcode and the per-process journals are merged
// into one clock-aligned timeline, using the same RTT-midpoint anchor
// correction as rlb_trace.  --follow keeps tailing new events.
#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "cluster/router.hpp"
#include "net/client.hpp"
#include "net/events_wire.hpp"
#include "net/stats.hpp"
#include "obs/journal.hpp"
#include "obs/span.hpp"
#include "report/table.hpp"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void handle_signal(int) { g_stop_requested = 1; }

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [flags]\n"
            << "  --host <addr>     daemon address (default 127.0.0.1)\n"
            << "  --port <p>        daemon port (default 4117)\n"
            << "  --watch [s]       refresh every s seconds (default 1)\n"
            << "  --prom            Prometheus text exposition\n"
            << "  --json            one JSON object per snapshot\n"
            << "  --cluster <host:port,...>\n"
            << "                    fan out: scrape every listed endpoint\n"
            << "                    (router + backends) and merge into one\n"
            << "                    per-node table (or a JSON document)\n"
            << "  --events          drain the control-plane journal (EVENTS)\n"
            << "                    from the target -- or every --cluster\n"
            << "                    endpoint -- into one clock-aligned merged\n"
            << "                    timeline (--json for machine output)\n"
            << "  --follow          with --events: keep tailing new events\n"
            << "                    every --watch interval (default 1s)\n";
}

/// Per-interval deltas between two consecutive --watch scrapes.
struct WatchDelta {
  double seconds = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
};

void print_pretty(const rlb::net::StatsSnapshot& snapshot,
                  const WatchDelta* delta = nullptr) {
  using rlb::report::Table;
  const rlb::net::ShardStats totals = snapshot.totals();

  std::cout << rlb::net::to_string(snapshot.role) << " " << snapshot.policy
            << " id=" << snapshot.backend_id << " m=" << snapshot.servers
            << " d=" << snapshot.replication << " g="
            << snapshot.processing_rate << " q=" << snapshot.queue_capacity
            << " shards=" << snapshot.shard_count << " uptime="
            << snapshot.uptime_ms / 1000 << "s\n";

  Table shards({"shard", "submitted", "completed", "rej_q", "rej_down",
                "rej_adm", "rej_drop", "inbound", "waiting", "inflight",
                "backlog", "down", "ticks"});
  for (const rlb::net::ShardStats& s : snapshot.shards) {
    shards.row()
        .cell(static_cast<std::uint64_t>(s.shard))
        .cell(s.submitted)
        .cell(s.completed)
        .cell(s.rejected_queue_full)
        .cell(s.rejected_all_down)
        .cell(s.rejected_admission)
        .cell(s.rejected_drop)
        .cell(s.inbound_depth)
        .cell(s.waiting_depth)
        .cell(s.inflight)
        .cell(s.backlog)
        .cell(s.servers_down)
        .cell(s.ticks);
  }
  shards.row()
      .cell("total")
      .cell(totals.submitted)
      .cell(totals.completed)
      .cell(totals.rejected_queue_full)
      .cell(totals.rejected_all_down)
      .cell(totals.rejected_admission)
      .cell(totals.rejected_drop)
      .cell(totals.inbound_depth)
      .cell(totals.waiting_depth)
      .cell(totals.inflight)
      .cell(totals.backlog)
      .cell(totals.servers_down)
      .cell(totals.ticks);
  shards.print(std::cout);

  std::cout << "latency_us: count=" << snapshot.latency.count
            << " p50=" << snapshot.latency.quantile_us(0.5)
            << " p95=" << snapshot.latency.quantile_us(0.95)
            << " p99=" << snapshot.latency.quantile_us(0.99)
            << " max=" << snapshot.latency.max_us << "\n";

  // Health plane (v5): the trailing-window view.  Windowed quantiles sit
  // next to their lifetime counterparts so an incident's p99 spike is
  // visible even after hours of uptime have diluted the lifetime
  // histogram.
  if (snapshot.window_span_ms > 0) {
    const double span_s =
        static_cast<double>(snapshot.window_span_ms) / 1000.0;
    std::cout << "window (" << span_s << "s): submitted="
              << snapshot.win_submitted << " completed="
              << snapshot.win_completed << " rejected="
              << snapshot.win_rejected << " rps="
              << static_cast<std::uint64_t>(
                     static_cast<double>(snapshot.win_completed) / span_s)
              << "\n";
    if (snapshot.win_latency.count > 0) {
      std::cout << "  win_latency_us: p50="
                << snapshot.win_latency.quantile_us(0.5)
                << " p99=" << snapshot.win_latency.quantile_us(0.99)
                << " (lifetime p50=" << snapshot.latency.quantile_us(0.5)
                << " p99=" << snapshot.latency.quantile_us(0.99) << ")\n";
    }
    if (snapshot.win_hop_rtt.count > 0) {
      std::cout << "  win_hop_rtt_us: p50="
                << snapshot.win_hop_rtt.quantile_us(0.5)
                << " p99=" << snapshot.win_hop_rtt.quantile_us(0.99)
                << " (lifetime p50=" << snapshot.hop_rtt.quantile_us(0.5)
                << " p99=" << snapshot.hop_rtt.quantile_us(0.99) << ")\n";
    }
    if (snapshot.win_queue_wait.count > 0) {
      std::cout << "  win_queue_wait_us: p50="
                << snapshot.win_queue_wait.quantile_us(0.5)
                << " p99=" << snapshot.win_queue_wait.quantile_us(0.99)
                << " (lifetime p50=" << snapshot.queue_wait.quantile_us(0.5)
                << " p99=" << snapshot.queue_wait.quantile_us(0.99) << ")\n";
    }
  }

  // --watch: deltas between this scrape and the previous one.
  if (delta != nullptr && delta->seconds > 0.0) {
    const double rps = static_cast<double>(delta->completed) / delta->seconds;
    const std::uint64_t offered = delta->submitted + delta->rejected;
    const double reject_pct =
        offered > 0 ? 100.0 * static_cast<double>(delta->rejected) /
                          static_cast<double>(offered)
                    : 0.0;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "interval (%.1fs): rps=%.0f submitted=%llu rejected=%llu "
                  "(%.2f%%)",
                  delta->seconds, rps,
                  static_cast<unsigned long long>(delta->submitted),
                  static_cast<unsigned long long>(delta->rejected),
                  reject_pct);
    std::cout << line << "\n";
  }

  if (!snapshot.active_alerts.empty()) {
    std::cout << "ALERTS:";
    for (const std::string& rule : snapshot.active_alerts) {
      std::cout << " " << rule;
    }
    std::cout << "\n";
  }

  // Per-hop decomposition (v3): a router reports upstream RTTs, a backend
  // reports submit->drain-tick queue wait.  The counterpart stays empty.
  if (snapshot.hop_rtt.count > 0) {
    std::cout << "hop_rtt_us: count=" << snapshot.hop_rtt.count
              << " p50=" << snapshot.hop_rtt.quantile_us(0.5)
              << " p95=" << snapshot.hop_rtt.quantile_us(0.95)
              << " p99=" << snapshot.hop_rtt.quantile_us(0.99)
              << " max=" << snapshot.hop_rtt.max_us << "\n";
  }
  if (snapshot.queue_wait.count > 0) {
    std::cout << "queue_wait_us: count=" << snapshot.queue_wait.count
              << " p50=" << snapshot.queue_wait.quantile_us(0.5)
              << " p95=" << snapshot.queue_wait.quantile_us(0.95)
              << " p99=" << snapshot.queue_wait.quantile_us(0.99)
              << " max=" << snapshot.queue_wait.max_us << "\n";
  }

  // Repair plane (v4): epoch + migration counters, shown only once the
  // cluster has actually repaired (or is repairing) something.
  const rlb::net::RepairStats& r = snapshot.repair;
  if (snapshot.placement_epoch != 0 || r.migrations_done != 0 ||
      r.migrations_inflight != 0 || r.chunks_pending != 0 ||
      r.migrations_in != 0 || r.migrations_out != 0) {
    std::cout << "repair: epoch=" << snapshot.placement_epoch;
    if (snapshot.role == rlb::net::NodeRole::kRouter) {
      std::cout << " migrated=" << r.migrations_done
                << " failed=" << r.migrations_failed
                << " inflight=" << r.migrations_inflight
                << " pending=" << r.chunks_pending
                << " bytes_sent=" << r.bytes_sent;
    } else {
      std::cout << " migrations_in=" << r.migrations_in
                << " migrations_out=" << r.migrations_out
                << " bytes_in=" << r.migration_bytes_in
                << " bytes_out=" << r.migration_bytes_out;
    }
    std::cout << "\n";
  }

  std::cout << "safe-set (Def 3.2): worst_ratio=" << snapshot.safe_worst_ratio
            << (snapshot.safe_violated_level
                    ? " VIOLATED at level " +
                          std::to_string(snapshot.safe_violated_level)
                    : " (safe)")
            << "\n";
  if (!snapshot.safe_set.empty()) {
    Table levels({"level_j", "backlog_gt_j", "bound_m_2j", "ratio"});
    for (const rlb::net::SafeSetLevelStats& level : snapshot.safe_set) {
      levels.row()
          .cell(static_cast<std::uint64_t>(level.level))
          .cell(level.observed)
          .cell(level.bound, 2)
          .cell(level.ratio, 3);
    }
    levels.print(std::cout);
  }
}

/// One endpoint's contribution to the --cluster fan-out.
struct ClusterRow {
  rlb::cluster::BackendEndpoint endpoint;
  bool reachable = false;
  /// The node answered with a well-formed snapshot of a different STATS
  /// version (a mid-upgrade daemon): reported as its own row state, not
  /// folded into "unreachable", so a rolling upgrade stays diagnosable.
  bool version_mismatch = false;
  std::uint32_t peer_version = 0;
  rlb::net::StatsSnapshot snapshot;
};

/// Scrape every endpoint once (one dedicated admin connection each).
std::vector<ClusterRow> scrape_cluster(
    const std::vector<rlb::cluster::BackendEndpoint>& endpoints) {
  std::vector<ClusterRow> rows;
  for (const rlb::cluster::BackendEndpoint& endpoint : endpoints) {
    ClusterRow row;
    row.endpoint = endpoint;
    try {
      rlb::net::Client client;
      client.connect(endpoint.host, endpoint.port);
      client.set_recv_timeout_ms(2000);
      client.send_stats_request();
      client.flush();
      row.reachable = client.read_stats_response(row.snapshot);
    } catch (const rlb::net::StatsVersionMismatch& e) {
      row.reachable = true;
      row.version_mismatch = true;
      row.peer_version = e.peer_version();
    } catch (const std::exception&) {
      row.reachable = false;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_cluster_pretty(const std::vector<ClusterRow>& rows) {
  using rlb::report::Table;
  Table table({"endpoint", "role", "id", "policy", "m", "submitted",
               "completed", "rejected", "errors", "backlog", "down", "epoch",
               "p99_us", "uptime_s"});
  rlb::net::ShardStats backend_totals;
  std::uint64_t backends_seen = 0;
  for (const ClusterRow& row : rows) {
    const std::string where =
        row.endpoint.host + ":" + std::to_string(row.endpoint.port);
    if (!row.reachable) {
      table.row().cell(where).cell("unreachable");
      continue;
    }
    if (row.version_mismatch) {
      table.row().cell(where).cell("version mismatch (v" +
                                   std::to_string(row.peer_version) + ")");
      continue;
    }
    const rlb::net::ShardStats t = row.snapshot.totals();
    table.row()
        .cell(where)
        .cell(rlb::net::to_string(row.snapshot.role))
        .cell(static_cast<std::uint64_t>(row.snapshot.backend_id))
        .cell(row.snapshot.policy)
        .cell(static_cast<std::uint64_t>(row.snapshot.servers))
        .cell(t.submitted)
        .cell(t.completed)
        .cell(t.rejected_total())
        .cell(t.errors)
        .cell(t.backlog)
        .cell(t.servers_down)
        .cell(row.snapshot.placement_epoch)
        .cell(row.snapshot.latency.quantile_us(0.99), 0)
        .cell(row.snapshot.uptime_ms / 1000);
    if (row.snapshot.role == rlb::net::NodeRole::kBackend) {
      ++backends_seen;
      backend_totals.submitted += t.submitted;
      backend_totals.completed += t.completed;
      backend_totals.rejected_queue_full += t.rejected_total();
      backend_totals.errors += t.errors;
      backend_totals.backlog += t.backlog;
      backend_totals.servers_down += t.servers_down;
    }
  }
  if (backends_seen > 0) {
    // Backends only: a router relays what backends serve, so summing the
    // two tiers would double-count completions.
    table.row()
        .cell("backends")
        .cell("total")
        .cell("")
        .cell("")
        .cell("")
        .cell(backend_totals.submitted)
        .cell(backend_totals.completed)
        .cell(backend_totals.rejected_queue_full)
        .cell(backend_totals.errors)
        .cell(backend_totals.backlog)
        .cell(backend_totals.servers_down)
        .cell("")
        .cell("")
        .cell("");
  }
  table.print(std::cout);
}

void print_cluster_json(const std::vector<ClusterRow>& rows) {
  std::cout << "{\"endpoints\":[";
  std::uint64_t backend_completed = 0;
  std::uint64_t backend_rejected = 0;
  std::uint64_t backend_errors = 0;
  bool first = true;
  for (const ClusterRow& row : rows) {
    if (!first) std::cout << ",";
    first = false;
    std::cout << "{\"endpoint\":\"" << row.endpoint.host << ":"
              << row.endpoint.port << "\",\"reachable\":"
              << (row.reachable ? "true" : "false");
    if (row.version_mismatch) {
      std::cout << ",\"version_mismatch\":true,\"peer_version\":"
                << row.peer_version << "}";
      continue;
    }
    if (row.reachable) {
      std::cout << ",\"snapshot\":" << rlb::net::render_json(row.snapshot);
      if (row.snapshot.role == rlb::net::NodeRole::kBackend) {
        const rlb::net::ShardStats t = row.snapshot.totals();
        backend_completed += t.completed;
        backend_rejected += t.rejected_total();
        backend_errors += t.errors;
      }
    }
    std::cout << "}";
  }
  std::cout << "],\"backend_totals\":{\"completed\":" << backend_completed
            << ",\"rejected\":" << backend_rejected
            << ",\"errors\":" << backend_errors << "}}\n";
}

// ---------------------------------------------------------------------------
// --events: merged control-plane timeline.

/// One journal event mapped onto the scraper's wall clock.
struct AlignedEvent {
  std::string source;  ///< "router" / "backend-<id>" / "host:port"
  std::uint64_t wall_ns = 0;
  rlb::net::EventRecord record;
};

/// Per-endpoint drain state for --events [--follow].
struct EventsSource {
  rlb::cluster::BackendEndpoint endpoint;
  std::string label;
  std::uint64_t cursor = 0;
  std::uint64_t dropped = 0;  ///< cumulative ring overflow at this source
  bool reachable = false;
};

/// Drain everything past `src.cursor` from one endpoint, aligning each
/// event's peer-steady timestamp onto this process's wall clock via the
/// response anchor and the RTT-midpoint skew estimate (the same correction
/// rlb_trace applies to merged spans).
void poll_events(EventsSource& src, std::vector<AlignedEvent>& out) {
  try {
    rlb::net::Client client;
    client.connect(src.endpoint.host, src.endpoint.port);
    client.set_recv_timeout_ms(2000);
    for (;;) {
      const std::uint64_t sent_wall = rlb::obs::wall_now_ns();
      client.send_events_request(src.cursor);
      client.flush();
      rlb::net::EventsSnapshot snap;
      if (!client.read_events_response(snap)) break;
      const std::uint64_t recv_wall = rlb::obs::wall_now_ns();
      // The peer stamped its anchor (steady_ns, wall_ns) while answering —
      // locally that instant is best estimated as the request's RTT
      // midpoint.  Mapping peer-steady onto local-wall through the anchor
      // cancels the peer's wall-clock skew entirely.
      const std::int64_t anchor_local =
          static_cast<std::int64_t>(sent_wall) +
          static_cast<std::int64_t>(recv_wall - sent_wall) / 2;
      const std::int64_t offset =
          anchor_local - static_cast<std::int64_t>(snap.steady_ns);
      src.label = snap.role == rlb::net::NodeRole::kRouter
                      ? "router"
                      : "backend-" + std::to_string(snap.backend_id);
      src.reachable = true;
      src.dropped += snap.dropped;
      src.cursor = snap.next_cursor;
      for (rlb::net::EventRecord& rec : snap.events) {
        AlignedEvent ev;
        ev.source = src.label;
        ev.wall_ns = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(rec.steady_ns) + offset);
        ev.record = std::move(rec);
        out.push_back(std::move(ev));
      }
      if (snap.remaining == 0) break;
    }
  } catch (const std::exception&) {
    src.reachable = false;
  }
}

/// Oldest-first by aligned wall time; per-source seq breaks ties.
void sort_events(std::vector<AlignedEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const AlignedEvent& a, const AlignedEvent& b) {
                     if (a.wall_ns != b.wall_ns) return a.wall_ns < b.wall_ns;
                     return a.record.seq < b.record.seq;
                   });
}

std::string format_wall(std::uint64_t wall_ns) {
  const std::time_t secs = static_cast<std::time_t>(wall_ns / 1000000000ULL);
  const unsigned ms = static_cast<unsigned>((wall_ns / 1000000ULL) % 1000);
  std::tm tm_buf{};
  localtime_r(&secs, &tm_buf);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d.%03u", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec, ms);
  return buf;
}

void print_events_pretty(const std::vector<AlignedEvent>& events) {
  for (const AlignedEvent& ev : events) {
    const rlb::net::EventRecord& r = ev.record;
    std::cout << format_wall(ev.wall_ns) << "  ";
    char src[32];
    std::snprintf(src, sizeof(src), "%-11s", ev.source.c_str());
    std::cout << src << " #" << r.seq << " "
              << rlb::obs::to_string(
                     static_cast<rlb::obs::JournalType>(r.type))
              << " a0=" << r.a0 << " a1=" << r.a1;
    if (!r.detail.empty()) std::cout << " " << r.detail;
    std::cout << "\n";
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  return out;
}

void print_event_json(const AlignedEvent& ev) {
  const rlb::net::EventRecord& r = ev.record;
  std::cout << "{\"source\":\"" << json_escape(ev.source) << "\",\"seq\":"
            << r.seq << ",\"wall_ns\":" << ev.wall_ns << ",\"steady_ns\":"
            << r.steady_ns << ",\"type\":\""
            << rlb::obs::to_string(static_cast<rlb::obs::JournalType>(r.type))
            << "\",\"a0\":" << r.a0 << ",\"a1\":" << r.a1 << ",\"detail\":\""
            << json_escape(r.detail) << "\"}";
}

void print_events_json(const std::vector<EventsSource>& sources,
                       const std::vector<AlignedEvent>& events) {
  std::cout << "{\"sources\":[";
  bool first = true;
  for (const EventsSource& src : sources) {
    if (!first) std::cout << ",";
    first = false;
    std::cout << "{\"endpoint\":\"" << src.endpoint.host << ":"
              << src.endpoint.port << "\",\"source\":\""
              << json_escape(src.label) << "\",\"reachable\":"
              << (src.reachable ? "true" : "false")
              << ",\"dropped\":" << src.dropped
              << ",\"next_cursor\":" << src.cursor << "}";
  }
  std::cout << "],\"events\":[";
  first = true;
  for (const AlignedEvent& ev : events) {
    if (!first) std::cout << ",";
    first = false;
    print_event_json(ev);
  }
  std::cout << "]}\n";
}

/// The --events entry point: one merged drain, or a --follow tail loop.
int run_events(const std::vector<rlb::cluster::BackendEndpoint>& endpoints,
               bool json, bool follow, std::uint64_t interval_s) {
  std::vector<EventsSource> sources;
  for (const rlb::cluster::BackendEndpoint& endpoint : endpoints) {
    EventsSource src;
    src.endpoint = endpoint;
    src.label = endpoint.host + ":" + std::to_string(endpoint.port);
    sources.push_back(std::move(src));
  }

  bool any_reachable = false;
  do {
    std::vector<AlignedEvent> events;
    for (EventsSource& src : sources) poll_events(src, events);
    sort_events(events);
    for (const EventsSource& src : sources) {
      any_reachable = any_reachable || src.reachable;
      if (!src.reachable && !json && !follow) {
        std::cerr << "rlb_stat: " << src.endpoint.host << ":"
                  << src.endpoint.port << " unreachable\n";
      }
      if (src.dropped > 0 && !json) {
        std::cerr << "rlb_stat: " << src.label << " dropped " << src.dropped
                  << " events (ring wrapped past the cursor)\n";
      }
    }
    if (json) {
      if (follow) {
        // JSONL in follow mode: one self-contained line per event.
        for (const AlignedEvent& ev : events) {
          print_event_json(ev);
          std::cout << "\n";
        }
      } else {
        print_events_json(sources, events);
      }
    } else {
      print_events_pretty(events);
    }
    std::cout.flush();
    if (follow) {
      for (std::uint64_t s = 0; s < interval_s * 10 && !g_stop_requested;
           ++s) {
        ::usleep(100 * 1000);
      }
    }
  } while (follow && !g_stop_requested);
  return any_reachable ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rlb;

  std::string host = "127.0.0.1";
  std::uint16_t port = 4117;
  bool watch = false;
  bool prom = false;
  bool json = false;
  bool events = false;
  bool follow = false;
  std::uint64_t interval_s = 1;
  std::vector<cluster::BackendEndpoint> cluster_endpoints;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return 0;
    } else if (flag == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (flag == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (flag == "--watch") {
      watch = true;
      // Optional numeric operand.
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        interval_s = std::strtoull(argv[++i], nullptr, 10);
        if (interval_s == 0) interval_s = 1;
      }
    } else if (flag == "--prom") {
      prom = true;
    } else if (flag == "--json") {
      json = true;
    } else if (flag == "--events") {
      events = true;
    } else if (flag == "--follow") {
      follow = true;
    } else if (flag == "--cluster" && i + 1 < argc) {
      try {
        cluster_endpoints = cluster::parse_backend_list(argv[++i]);
      } catch (const std::exception& e) {
        std::cerr << "rlb_stat: " << e.what() << "\n";
        return 2;
      }
    } else {
      std::cerr << "rlb_stat: unknown flag '" << flag << "'\n";
      usage(argv[0]);
      return 2;
    }
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  if (events) {
    std::vector<cluster::BackendEndpoint> endpoints = cluster_endpoints;
    if (endpoints.empty()) {
      cluster::BackendEndpoint endpoint;
      endpoint.host = host;
      endpoint.port = port;
      endpoints.push_back(std::move(endpoint));
    }
    return run_events(endpoints, json, follow, interval_s);
  }
  if (follow) {
    std::cerr << "rlb_stat: --follow requires --events\n";
    return 2;
  }

  if (!cluster_endpoints.empty()) {
    if (prom) {
      std::cerr << "rlb_stat: --cluster does not support --prom (scrape each "
                   "endpoint directly)\n";
      return 2;
    }
    do {
      const std::vector<ClusterRow> rows = scrape_cluster(cluster_endpoints);
      if (json) {
        print_cluster_json(rows);
      } else {
        if (watch) std::cout << "\033[H\033[2J";
        print_cluster_pretty(rows);
      }
      std::cout.flush();
      if (watch) {
        for (std::uint64_t s = 0; s < interval_s * 10 && !g_stop_requested;
             ++s) {
          ::usleep(100 * 1000);
        }
      }
    } while (watch && !g_stop_requested);
    return 0;
  }

  net::Client client;
  try {
    client.connect(host, port);
  } catch (const std::exception& e) {
    std::cerr << "rlb_stat: " << e.what() << "\n";
    return 1;
  }

  // --watch keeps the previous scrape's totals so each refresh can show
  // per-interval deltas (rps / reject rate) next to the lifetime counters.
  bool have_prev = false;
  net::ShardStats prev_totals;
  std::uint64_t prev_wall_ns = 0;
  do {
    net::StatsSnapshot snapshot;
    try {
      client.send_stats_request();
      client.flush();
      if (!client.read_stats_response(snapshot)) {
        std::cerr << "rlb_stat: daemon closed the connection\n";
        return 1;
      }
    } catch (const std::exception& e) {
      std::cerr << "rlb_stat: " << e.what() << "\n";
      return 1;
    }
    if (prom) {
      std::cout << net::render_prometheus(snapshot);
    } else if (json) {
      std::cout << net::render_json(snapshot) << "\n";
    } else {
      if (watch) std::cout << "\033[H\033[2J";  // clear screen per refresh
      const net::ShardStats totals = snapshot.totals();
      const std::uint64_t now_wall = obs::wall_now_ns();
      WatchDelta delta;
      bool have_delta = false;
      if (watch && have_prev && now_wall > prev_wall_ns) {
        delta.seconds =
            static_cast<double>(now_wall - prev_wall_ns) / 1e9;
        delta.submitted = totals.submitted - prev_totals.submitted;
        delta.completed = totals.completed - prev_totals.completed;
        delta.rejected =
            totals.rejected_total() - prev_totals.rejected_total();
        have_delta = true;
      }
      prev_totals = totals;
      prev_wall_ns = now_wall;
      have_prev = true;
      print_pretty(snapshot, have_delta ? &delta : nullptr);
    }
    std::cout.flush();
    if (watch) {
      for (std::uint64_t s = 0; s < interval_s * 10 && !g_stop_requested;
           ++s) {
        ::usleep(100 * 1000);
      }
    }
  } while (watch && !g_stop_requested);

  return 0;
}
