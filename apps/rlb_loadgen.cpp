// rlb_loadgen — load generator for rlbd (and rlb_router).
//
// Closed loop (default): opens C connections (one thread each); every
// connection keeps a window of K requests outstanding (send K, then one new
// request per response) until its share of --requests completes.
//
// Open loop (--rate R): each connection sends its share of R requests/sec
// on a fixed schedule regardless of responses, the way the paper's model
// offers lambda*m*g load per step whether or not queues are keeping up.
// Latency is measured from the *intended* send time, so a stalled server
// shows up as tail latency instead of being silently absorbed by the
// pacing gap (coordinated-omission-safe).  After the schedule completes
// the worker keeps listening for --drain-ms; anything still unanswered is
// reported separately.
//
// Keys come from any core::Workload (the simulator's generators, flattened
// into a key stream) or from a recorded workloads::Trace — run rlbd with
// `--mapper range --chunks <universe>` for the identity key->chunk map and
// the engine sees exactly the model's chunk sequence.
//
// Reports throughput, rejection/error rates, and end-to-end latency
// quantiles (p50/p95/p99, microseconds, via stats::CountingHistogram), plus
// the server-assigned wait_steps distribution.  --json <path> additionally
// writes the summary as a machine-readable JSON object.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "harness/output.hpp"
#include "net/client.hpp"
#include "net/wire.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "stats/histogram.hpp"
#include "stats/rng.hpp"
#include "workloads/fresh_uniform.hpp"
#include "workloads/repeated_set.hpp"
#include "workloads/trace.hpp"
#include "workloads/zipf_workload.hpp"

namespace {

using namespace rlb;

// SIGINT/SIGTERM: stop sending, let workers drain out of their loops, and
// reach the normal exit path so trace/span sinks get their atomic flush.
volatile std::sig_atomic_t g_stop_requested = 0;

void handle_signal(int) { g_stop_requested = 1; }

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 4117;
  std::size_t connections = 4;
  std::size_t concurrency = 32;  // outstanding requests per connection
  std::uint64_t requests = 100000;
  // uniform | fresh | repeated-set | zipf | trace
  std::string workload = "uniform";
  std::uint64_t keys = 1 << 20;  // key universe / repeated-set size source
  std::size_t set_size = 0;      // repeated-set |S|; 0 = keys per batch cap
  double zipf_s = 0.99;
  std::string trace_path;
  std::uint64_t seed = 1;
  std::string json_path;
  std::size_t latency_cap_us = 200000;  // histogram exact range
  double rate = 0.0;                    // total offered req/s; 0 = closed loop
  std::uint64_t drain_ms = 2000;        // open-loop post-schedule listen window
  // Distributed tracing: > 0 puts a TraceContext on every REQUEST frame and
  // marks this fraction of them head-sampled (the rest survive only via
  // tail sampling at each hop's recorder: slow or rejected).
  double trace_sample = 0.0;
  std::string span_file;  // client.request root spans land here as JSONL
};

struct WorkerResult {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;  // every is_reject() status, causes below
  std::uint64_t rejected_upstream_down = 0;
  std::uint64_t rejected_upstream_timeout = 0;
  std::uint64_t errors = 0;
  std::uint64_t unanswered = 0;  // open loop: still in flight at drain end
  std::uint64_t protocol_errors = 0;
  stats::CountingHistogram latency_us{0};
  stats::CountingHistogram wait_steps{1024};
};

// Statuses 0..2 come from a backend's balancer; 3..4 are hop-level verdicts
// a router adds when no live replica could take the chunk.  All rejects are
// answered outcomes (the paper's bounded queue saying no), so they keep
// their latency sample; only transport failures count as errors.
void classify(const net::ResponseMsg& response, std::uint64_t us,
              WorkerResult& result) {
  if (response.status == net::Status::kOk) {
    ++result.ok;
    result.latency_us.add(us);
    result.wait_steps.add(response.wait_steps);
  } else if (net::is_reject(response.status)) {
    ++result.rejected;
    if (response.status == net::Status::kRejectUpstreamDown) {
      ++result.rejected_upstream_down;
    } else if (response.status == net::Status::kRejectUpstreamTimeout) {
      ++result.rejected_upstream_timeout;
    }
    result.latency_us.add(us);
  } else {
    ++result.errors;
  }
}

// Per-request trace bookkeeping: the originated context (whose parent span
// id is the client.request root span) plus the steady-clock start so the
// root span can be recorded when the response lands.
struct FlightTrace {
  std::uint64_t trace_id = 0;  // 0 = untraced request
  std::uint64_t root_span_id = 0;
  std::uint64_t start_ns = 0;
  std::uint8_t flags = 0;
};

// Originate a trace context for one request.  Every request carries a
// context when --trace-sample > 0; only the sampled fraction sets the
// head-sampling flag — the rest are still eligible for tail sampling
// (slow/rejected) at every hop's recorder.
obs::TraceContext originate_trace(const Options& options, stats::Rng& rng,
                                  FlightTrace& flight) {
  if (options.trace_sample <= 0.0) return {};
  obs::TraceContext ctx;
  ctx.trace_id = obs::next_span_id();
  flight.root_span_id = obs::next_span_id();
  ctx.parent_span_id = flight.root_span_id;
  if (rng.next_bernoulli(options.trace_sample)) ctx.flags = obs::kSpanSampled;
  flight.trace_id = ctx.trace_id;
  flight.flags = ctx.flags;
  flight.start_ns = obs::now_ns();
  return ctx;
}

void record_client_span(const FlightTrace& flight, std::size_t worker,
                        net::Status status, std::uint64_t outstanding) {
  if (flight.trace_id == 0 || !obs::span_recording_enabled()) return;
  obs::Span span;
  span.trace_id = flight.trace_id;
  span.span_id = flight.root_span_id;
  span.parent_span_id = 0;
  span.start_ns = flight.start_ns;
  span.end_ns = obs::now_ns();
  span.queue_depth = outstanding;
  span.name = "client.request";
  span.shard = static_cast<std::uint32_t>(worker);
  span.tid = static_cast<std::uint32_t>(obs::thread_index());
  span.flags = flight.flags;
  span.cause = static_cast<std::uint8_t>(status);
  obs::SpanRecorder::instance().record(span);
}

// Flattens a Workload's per-step batches into an endless key stream.
class KeyStream {
 public:
  explicit KeyStream(std::unique_ptr<core::Workload> source)
      : source_(std::move(source)) {}

  std::uint64_t next() {
    while (cursor_ >= batch_.size()) {
      source_->fill_step(t_++, batch_);
      cursor_ = 0;
      if (batch_.empty() && ++empty_streak_ > 1024) {
        // A pathological workload that emits nothing would spin forever;
        // fall back to the step counter as a key.
        return t_;
      }
      if (!batch_.empty()) empty_streak_ = 0;
    }
    return batch_[cursor_++];
  }

 private:
  std::unique_ptr<core::Workload> source_;
  std::vector<core::ChunkId> batch_;
  std::size_t cursor_ = 0;
  core::Time t_ = 0;
  std::size_t empty_streak_ = 0;
};

std::unique_ptr<KeyStream> make_stream(const Options& options,
                                       std::size_t worker,
                                       const workloads::Trace* trace) {
  const std::uint64_t seed =
      stats::derive_seed(options.seed, 0x10ull + worker);
  std::unique_ptr<core::Workload> source;
  if (options.workload == "uniform") {
    // Uniform keys: fresh ids hashed over the key universe via zipf s=0
    // would work, but a plain seeded Rng stream is cheaper.
    class UniformWorkload final : public core::Workload {
     public:
      UniformWorkload(std::uint64_t keys, std::uint64_t seed)
          : keys_(keys), rng_(seed) {}
      void fill_step(core::Time, std::vector<core::ChunkId>& out) override {
        out.clear();
        for (int i = 0; i < 64; ++i) {
          out.push_back(static_cast<core::ChunkId>(rng_.next_below(keys_)));
        }
      }
      std::size_t max_requests_per_step() const override { return 64; }

     private:
      std::uint64_t keys_;
      stats::Rng rng_;
    };
    source = std::make_unique<UniformWorkload>(options.keys, seed);
  } else if (options.workload == "fresh") {
    // Disjoint id ranges per worker so keys stay globally fresh.
    source = std::make_unique<workloads::FreshUniformWorkload>(
        64, static_cast<std::uint64_t>(worker) << 48);
  } else if (options.workload == "repeated-set") {
    const std::size_t count =
        options.set_size ? options.set_size
                         : static_cast<std::size_t>(
                               std::min<std::uint64_t>(options.keys, 4096));
    // Same seed on every worker: all connections request the same set S —
    // the paper's hardest reappearance pattern.
    source = std::make_unique<workloads::RepeatedSetWorkload>(
        count, options.keys, stats::derive_seed(options.seed, 0x5e7ull));
  } else if (options.workload == "zipf") {
    const std::size_t count = static_cast<std::size_t>(
        std::min<std::uint64_t>(options.keys / 2, 256));
    source = std::make_unique<workloads::ZipfWorkload>(
        std::max<std::size_t>(count, 1), options.keys, options.zipf_s, seed);
  } else if (options.workload == "trace") {
    if (trace == nullptr) return nullptr;
    source = std::make_unique<workloads::TraceWorkload>(*trace);
  } else {
    return nullptr;
  }
  return std::make_unique<KeyStream>(std::move(source));
}

void run_worker(const Options& options, std::size_t worker,
                std::uint64_t quota, const workloads::Trace* trace,
                WorkerResult& result) {
  result.latency_us = stats::CountingHistogram(options.latency_cap_us);
  std::unique_ptr<KeyStream> stream = make_stream(options, worker, trace);
  net::Client client;
  try {
    client.connect(options.host, options.port);
  } catch (const std::exception& e) {
    std::cerr << "rlb_loadgen: worker " << worker << ": " << e.what() << "\n";
    result.errors += quota;
    return;
  }

  using Clock = std::chrono::steady_clock;
  struct InFlight {
    Clock::time_point sent_at;
    FlightTrace trace;
  };
  std::unordered_map<std::uint64_t, InFlight> in_flight;
  in_flight.reserve(options.concurrency * 2);
  std::uint64_t next_id = (static_cast<std::uint64_t>(worker) << 40) + 1;
  std::uint64_t completed = 0;
  stats::Rng trace_rng(stats::derive_seed(options.seed, 0x7ace0ull + worker));

  auto send_one = [&] {
    const std::uint64_t id = next_id++;
    InFlight flight{Clock::now(), {}};
    const obs::TraceContext ctx =
        originate_trace(options, trace_rng, flight.trace);
    in_flight.emplace(id, flight);
    client.send_request(id, stream->next(), ctx);
    ++result.sent;
  };

  try {
    const std::uint64_t window =
        std::min<std::uint64_t>(options.concurrency, quota);
    for (std::uint64_t i = 0; i < window; ++i) send_one();
    client.flush();

    net::ResponseMsg response;
    while (completed < quota && !g_stop_requested) {
      if (!client.read_response(response)) {
        // Server went away mid-run; everything still in flight is lost.
        result.errors += quota - completed;
        break;
      }
      const auto it = in_flight.find(response.request_id);
      if (it == in_flight.end()) {
        ++result.protocol_errors;
        break;
      }
      const auto now = Clock::now();
      const std::uint64_t us =
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  now - it->second.sent_at)
                  .count());
      const FlightTrace flight = it->second.trace;
      in_flight.erase(it);
      record_client_span(flight, worker, response.status, in_flight.size());
      ++completed;
      classify(response, us, result);
      if (result.sent < quota) {
        send_one();
        client.flush();
      }
    }
  } catch (const net::ProtocolError& e) {
    std::cerr << "rlb_loadgen: worker " << worker << ": " << e.what() << "\n";
    ++result.protocol_errors;
  } catch (const std::exception& e) {
    std::cerr << "rlb_loadgen: worker " << worker << ": " << e.what() << "\n";
    result.errors += quota - completed;
  }
  client.close();
}

// Open-loop worker: request i's intended send time is start + i/rate_share.
// Sends catch up in a burst when the loop falls behind (the schedule, not
// the loop, defines offered load); receives interleave under a 1ms receive
// timeout so pacing never blocks on a slow server.
void run_worker_open_loop(const Options& options, std::size_t worker,
                          std::uint64_t quota, double rate_share,
                          const workloads::Trace* trace, WorkerResult& result) {
  result.latency_us = stats::CountingHistogram(options.latency_cap_us);
  std::unique_ptr<KeyStream> stream = make_stream(options, worker, trace);
  net::Client client;
  try {
    client.connect(options.host, options.port);
  } catch (const std::exception& e) {
    std::cerr << "rlb_loadgen: worker " << worker << ": " << e.what() << "\n";
    result.errors += quota;
    return;
  }
  client.set_recv_timeout_ms(1);

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const std::chrono::nanoseconds interval(
      static_cast<std::uint64_t>(1e9 / std::max(rate_share, 1e-6)));
  const std::chrono::milliseconds drain(options.drain_ms);
  struct InFlight {
    Clock::time_point sent_at;
    FlightTrace trace;
  };
  std::unordered_map<std::uint64_t, InFlight> in_flight;
  in_flight.reserve(1024);
  std::uint64_t next_id = (static_cast<std::uint64_t>(worker) << 40) + 1;
  stats::Rng trace_rng(stats::derive_seed(options.seed, 0x7ace0ull + worker));
  Clock::time_point drain_deadline{};

  try {
    net::ResponseMsg response;
    while ((result.sent < quota || !in_flight.empty()) && !g_stop_requested) {
      const auto now = Clock::now();
      if (result.sent < quota) {
        const auto intended = start + interval * result.sent;
        if (now >= intended) {
          const std::uint64_t id = next_id++;
          // Latency clock starts at the *intended* time: queueing caused by
          // our own pacing loop falling behind is server-visible delay too.
          InFlight flight{intended, {}};
          const obs::TraceContext ctx =
              originate_trace(options, trace_rng, flight.trace);
          in_flight.emplace(id, flight);
          client.send_request(id, stream->next(), ctx);
          client.flush();
          ++result.sent;
          if (result.sent == quota) drain_deadline = Clock::now() + drain;
          continue;  // burst until back on schedule
        }
      } else if (now >= drain_deadline) {
        break;
      }
      const net::ReadOutcome outcome = client.try_read_response(response);
      if (outcome == net::ReadOutcome::kTimeout) continue;
      if (outcome == net::ReadOutcome::kEof) {
        // Server went away; the schedule's remainder has nowhere to go.
        result.errors += in_flight.size() + (quota - result.sent);
        in_flight.clear();
        break;
      }
      const auto it = in_flight.find(response.request_id);
      if (it == in_flight.end()) {
        ++result.protocol_errors;
        break;
      }
      const std::uint64_t us = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - it->second.sent_at)
              .count());
      const FlightTrace flight = it->second.trace;
      in_flight.erase(it);
      record_client_span(flight, worker, response.status, in_flight.size());
      classify(response, us, result);
    }
  } catch (const net::ProtocolError& e) {
    std::cerr << "rlb_loadgen: worker " << worker << ": " << e.what() << "\n";
    ++result.protocol_errors;
  } catch (const std::exception& e) {
    std::cerr << "rlb_loadgen: worker " << worker << ": " << e.what() << "\n";
    result.errors += quota - result.sent;
  }
  result.unanswered += in_flight.size();
  client.close();
}

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [flags]\n"
      << "  --host <addr>          server address (default 127.0.0.1)\n"
      << "  --port <p>             server port (default 4117)\n"
      << "  --connections <c>      client connections/threads (default 4)\n"
      << "  --concurrency <k>      outstanding requests per connection\n"
      << "                         (closed loop only)\n"
      << "  --requests <n>         total requests across connections\n"
      << "  --rate <rps>           open loop: offered load in req/s, split\n"
      << "                         across connections; latency is measured\n"
      << "                         from each request's scheduled send time\n"
      << "  --drain-ms <ms>        open loop: wait this long for stragglers\n"
      << "                         after the schedule ends (default 2000)\n"
      << "  --workload <name>      uniform|fresh|repeated-set|zipf|trace\n"
      << "  --keys <n>             key universe (default 2^20)\n"
      << "  --set-size <n>         repeated-set size |S|\n"
      << "  --zipf-s <s>           zipf exponent (default 0.99)\n"
      << "  --trace-file <path>    trace for --workload trace (text or\n"
      << "                         binary format, auto-detected)\n"
      << "  --seed <s>             master seed (default 1)\n"
      << "  --json <path>          also write the summary as JSON\n"
      << "  --trace-sample <p>     put a trace context on every request and\n"
      << "                         head-sample this fraction of them [0,1]\n"
      << "  --span-file <path>     write client.request root spans (JSONL\n"
      << "                         with a clock anchor) for rlb_trace\n"
      << "  (plus --probes / --trace <path> from the obs layer)\n";
}

bool parse_u64_flag(const char* name, const std::string& value,
                    std::uint64_t& out) {
  try {
    std::size_t pos = 0;
    const unsigned long long parsed = std::stoull(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    out = parsed;
    return true;
  } catch (const std::exception&) {
    std::cerr << "rlb_loadgen: bad value for " << name << ": '" << value
              << "'\n";
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Route through the shared obs init path (--trace / --probes /
  // RLB_TRACE...) like rlbd, but hide our own --json from it: the loadgen
  // writes its summary JSON itself, and the harness's at-exit document
  // would clobber it.
  {
    std::vector<char*> obs_argv;
    obs_argv.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        ++i;
        continue;
      }
      obs_argv.push_back(argv[i]);
    }
    harness::init_output(static_cast<int>(obs_argv.size()), obs_argv.data());
  }

  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const bool has_value = i + 1 < argc;
    auto value = [&]() -> std::string { return argv[++i]; };
    std::uint64_t u64 = 0;
    if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return 0;
    } else if (flag == "--host" && has_value) {
      options.host = value();
    } else if (flag == "--port" && has_value) {
      if (!parse_u64_flag("--port", value(), u64) || u64 > 65535) return 2;
      options.port = static_cast<std::uint16_t>(u64);
    } else if (flag == "--connections" && has_value) {
      if (!parse_u64_flag("--connections", value(), u64) || u64 == 0) return 2;
      options.connections = static_cast<std::size_t>(u64);
    } else if (flag == "--concurrency" && has_value) {
      if (!parse_u64_flag("--concurrency", value(), u64) || u64 == 0) return 2;
      options.concurrency = static_cast<std::size_t>(u64);
    } else if (flag == "--requests" && has_value) {
      if (!parse_u64_flag("--requests", value(), u64)) return 2;
      options.requests = u64;
    } else if (flag == "--rate" && has_value) {
      try {
        options.rate = std::stod(value());
      } catch (const std::exception&) {
        options.rate = -1.0;
      }
      if (options.rate <= 0.0) {
        std::cerr << "rlb_loadgen: --rate needs a positive req/s value\n";
        return 2;
      }
    } else if (flag == "--drain-ms" && has_value) {
      if (!parse_u64_flag("--drain-ms", value(), u64)) return 2;
      options.drain_ms = u64;
    } else if (flag == "--workload" && has_value) {
      options.workload = value();
    } else if (flag == "--keys" && has_value) {
      if (!parse_u64_flag("--keys", value(), u64) || u64 == 0) return 2;
      options.keys = u64;
    } else if (flag == "--set-size" && has_value) {
      if (!parse_u64_flag("--set-size", value(), u64)) return 2;
      options.set_size = static_cast<std::size_t>(u64);
    } else if (flag == "--zipf-s" && has_value) {
      try {
        options.zipf_s = std::stod(value());
      } catch (const std::exception&) {
        std::cerr << "rlb_loadgen: bad --zipf-s\n";
        return 2;
      }
    } else if (flag == "--trace-file" && has_value) {
      options.trace_path = value();
    } else if (flag == "--seed" && has_value) {
      if (!parse_u64_flag("--seed", value(), u64)) return 2;
      options.seed = u64;
    } else if (flag == "--json" && has_value) {
      options.json_path = value();
    } else if (flag == "--trace-sample" && has_value) {
      try {
        options.trace_sample = std::stod(value());
      } catch (const std::exception&) {
        options.trace_sample = -1.0;
      }
      if (options.trace_sample < 0.0 || options.trace_sample > 1.0) {
        std::cerr << "rlb_loadgen: --trace-sample needs a value in [0,1]\n";
        return 2;
      }
    } else if (flag == "--span-file" && has_value) {
      options.span_file = value();
    } else if (flag == "--format" || flag == "--trace") {
      ++i;  // consumed by init_output
    } else if (flag == "--probes" || flag == "--trace-detail") {
      // consumed by init_output
    } else {
      std::cerr << "rlb_loadgen: unknown flag '" << flag << "'\n";
      usage(argv[0]);
      return 2;
    }
  }

  if (!options.span_file.empty()) {
    // Enables span recording and registers an at-exit flush; we also flush
    // explicitly below so the file exists before the summary is printed.
    obs::set_span_file(options.span_file);
  }

  std::unique_ptr<workloads::Trace> trace;
  if (options.workload == "trace") {
    if (options.trace_path.empty()) {
      std::cerr << "rlb_loadgen: --workload trace needs --trace-file\n";
      return 2;
    }
    try {
      trace = std::make_unique<workloads::Trace>(
          workloads::Trace::load_auto_file(options.trace_path));
    } catch (const std::exception& e) {
      std::cerr << "rlb_loadgen: " << e.what() << "\n";
      return 2;
    }
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);

  const std::size_t workers = options.connections;
  std::vector<WorkerResult> results(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);

  const bool open_loop = options.rate > 0.0;
  const double rate_share = options.rate / static_cast<double>(workers);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t w = 0; w < workers; ++w) {
    const std::uint64_t quota =
        options.requests / workers + (w < options.requests % workers ? 1 : 0);
    threads.emplace_back(
        [&options, w, quota, &results, &trace, open_loop, rate_share] {
          if (open_loop) {
            run_worker_open_loop(options, w, quota, rate_share, trace.get(),
                                 results[w]);
          } else {
            run_worker(options, w, quota, trace.get(), results[w]);
          }
        });
  }
  for (auto& thread : threads) thread.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  WorkerResult total;
  total.latency_us = stats::CountingHistogram(options.latency_cap_us);
  for (const WorkerResult& r : results) {
    total.sent += r.sent;
    total.ok += r.ok;
    total.rejected += r.rejected;
    total.rejected_upstream_down += r.rejected_upstream_down;
    total.rejected_upstream_timeout += r.rejected_upstream_timeout;
    total.errors += r.errors;
    total.unanswered += r.unanswered;
    total.protocol_errors += r.protocol_errors;
    total.latency_us.merge(r.latency_us);
    total.wait_steps.merge(r.wait_steps);
  }
  const std::uint64_t answered = total.ok + total.rejected;
  const double reject_rate =
      answered ? static_cast<double>(total.rejected) /
                     static_cast<double>(answered)
               : 0.0;
  const double throughput = elapsed > 0.0
                                ? static_cast<double>(answered) / elapsed
                                : 0.0;

  std::cout << "rlb_loadgen: " << answered << " answered in " << elapsed
            << "s (" << static_cast<std::uint64_t>(throughput) << " req/s";
  if (open_loop) {
    std::cout << ", offered " << static_cast<std::uint64_t>(options.rate)
              << " req/s open loop";
  }
  std::cout << ")\n"
            << "  ok=" << total.ok << " rejected=" << total.rejected
            << " (rate=" << reject_rate << ", upstream_down="
            << total.rejected_upstream_down << ", upstream_timeout="
            << total.rejected_upstream_timeout << ")"
            << " errors=" << total.errors
            << " unanswered=" << total.unanswered
            << " protocol_errors=" << total.protocol_errors << "\n"
            << "  latency_us p50=" << total.latency_us.quantile(0.50)
            << " p95=" << total.latency_us.quantile(0.95)
            << " p99=" << total.latency_us.quantile(0.99)
            << " max=" << total.latency_us.max_observed() << "\n"
            << "  wait_steps p50=" << total.wait_steps.quantile(0.50)
            << " p99=" << total.wait_steps.quantile(0.99)
            << " max=" << total.wait_steps.max_observed() << std::endl;

  if (!options.json_path.empty()) {
    std::ofstream os(options.json_path);
    if (!os) {
      std::cerr << "rlb_loadgen: cannot write " << options.json_path << "\n";
      return 1;
    }
    os << "{\n"
       << "  \"mode\": \"" << (open_loop ? "open" : "closed") << "\",\n"
       << "  \"offered_rps\": " << options.rate << ",\n"
       << "  \"answered\": " << answered << ",\n"
       << "  \"ok\": " << total.ok << ",\n"
       << "  \"rejected\": " << total.rejected << ",\n"
       << "  \"rejected_upstream_down\": " << total.rejected_upstream_down
       << ",\n"
       << "  \"rejected_upstream_timeout\": " << total.rejected_upstream_timeout
       << ",\n"
       << "  \"errors\": " << total.errors << ",\n"
       << "  \"unanswered\": " << total.unanswered << ",\n"
       << "  \"protocol_errors\": " << total.protocol_errors << ",\n"
       << "  \"elapsed_seconds\": " << elapsed << ",\n"
       << "  \"throughput_rps\": " << throughput << ",\n"
       << "  \"rejection_rate\": " << reject_rate << ",\n"
       << "  \"latency_us\": {\"p50\": " << total.latency_us.quantile(0.50)
       << ", \"p95\": " << total.latency_us.quantile(0.95) << ", \"p99\": "
       << total.latency_us.quantile(0.99) << ", \"max\": "
       << total.latency_us.max_observed() << "},\n"
       << "  \"wait_steps\": {\"p50\": " << total.wait_steps.quantile(0.50)
       << ", \"p99\": " << total.wait_steps.quantile(0.99) << ", \"max\": "
       << total.wait_steps.max_observed() << "}\n"
       << "}\n";
  }

  // Flush trace sinks before exit (atomic tmp+rename — a consumer racing
  // with shutdown never reads a truncated JSONL file).
  obs::flush_trace();
  obs::flush_spans();

  return total.protocol_errors == 0 ? 0 : 1;
}
