// rlbd — the live serving daemon.
//
// Wires the three layers of the serving stack together:
//   net::NetServer    — loopback TCP listener + wire protocol framing
//   engine::ServingEngine — sharded workers embedding a core::LoadBalancer
//   store::KeyMapper  — GET(key) -> chunk (inside the engine)
// Every REQUEST frame becomes engine.submit(); every balancer outcome comes
// back through the RequestSink path as a RESPONSE frame (OK with the
// serving server id and queueing delay, or REJECT when the paper's bounded
// queue — or the engine's admission control — says no).
//
// SIGINT/SIGTERM triggers a graceful drain: the engine stops admitting,
// answers everything queued, then the listener flushes and closes.
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include <unistd.h>

#include "engine/engine.hpp"
#include "harness/output.hpp"
#include "net/events_wire.hpp"
#include "net/server.hpp"
#include "net/stats.hpp"
#include "net/trace_wire.hpp"
#include "net/wire.hpp"
#include "obs/health.hpp"
#include "obs/journal.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "repair/migrate_agent.hpp"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;
volatile std::sig_atomic_t g_dump_requested = 0;

void handle_signal(int) { g_stop_requested = 1; }

void handle_dump_signal(int) { g_dump_requested = 1; }

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [flags]\n"
      << "  --policy <name>        routing policy (default greedy)\n"
      << "  --m <servers>          total servers (default 64)\n"
      << "  --d <replication>      replicas per chunk (default 2)\n"
      << "  --g <rate>             service per server per tick (default 2)\n"
      << "  --q <capacity>         queue bound; 0 = theorem default\n"
      << "  --shards <n>           worker threads (default 1)\n"
      << "  --chunks <n>           chunk count (default 2^20)\n"
      << "  --mapper <hash|range>  key->chunk scheme (default hash)\n"
      << "  --key-space <n>        range-mapper key space; 0 = chunks\n"
      << "  --port <p>             listen port; 0 = ephemeral (default 4117)\n"
      << "  --host <addr>          bind address (default 127.0.0.1)\n"
      << "  --seed <s>             master seed (default 1)\n"
      << "  --max-batch <n>        distinct chunks per tick per shard\n"
      << "  --waiting-limit <n>    per-shard admission bound\n"
      << "  --tick-us <us>         minimum tick period; 0 = free-running\n"
      << "  --failure-schedule <spec>\n"
      << "                         script:t,s,down|up;...  bernoulli:p,mttr\n"
      << "                         rack:racks,p,mttr (ticks as the clock)\n"
      << "  --dump-on-crash        reject a crashed server's queue\n"
      << "  --backend-id <n>       cluster identity echoed in STATS\n"
      << "                         snapshots (rlb_router / rlb_stat --cluster)\n"
      << "  --span-slow-us <us>    keep unsampled spans slower than this\n"
      << "                         (tail sampling; 0 = sampled/failed only)\n"
      << "  --stats-interval <s>   print live stats every s seconds (0=off)\n"
      << "  --safe-set-log <path>  append one safe-set JSONL record per\n"
      << "                         stats interval (forces 1s when unset)\n"
      << "  --flight-recorder <path>\n"
      << "                         flight-record JSON dump target for\n"
      << "                         SIGQUIT / drain (default rlbd_flight.json;\n"
      << "                         empty string disables)\n"
      << "  (plus --probes / --trace <path> from the obs layer)\n"
      << "rlb_stat polls the STATS admin opcode on the same port;\n"
      << "rlb_stat --events drains the control-plane journal (EVENTS).\n";
}

bool parse_u64_flag(const char* name, const std::string& value,
                    std::uint64_t& out) {
  try {
    std::size_t pos = 0;
    const unsigned long long parsed = std::stoull(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    out = parsed;
    return true;
  } catch (const std::exception&) {
    std::cerr << "rlbd: bad value for " << name << ": '" << value << "'\n";
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rlb;

  harness::init_output(argc, argv);

  engine::EngineConfig config;
  net::ServerConfig net_config;
  net_config.port = 4117;
  std::uint64_t stats_interval_s = 0;
  std::string safe_set_log_path;
  std::string flight_recorder_path = "rlbd_flight.json";

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const bool has_value = i + 1 < argc;
    auto value = [&]() -> std::string { return argv[++i]; };
    std::uint64_t u64 = 0;
    if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return 0;
    } else if (flag == "--policy" && has_value) {
      config.policy = value();
    } else if (flag == "--m" && has_value) {
      if (!parse_u64_flag("--m", value(), u64)) return 2;
      config.servers = static_cast<std::size_t>(u64);
    } else if (flag == "--d" && has_value) {
      if (!parse_u64_flag("--d", value(), u64)) return 2;
      config.replication = static_cast<unsigned>(u64);
    } else if (flag == "--g" && has_value) {
      if (!parse_u64_flag("--g", value(), u64)) return 2;
      config.processing_rate = static_cast<unsigned>(u64);
    } else if (flag == "--q" && has_value) {
      if (!parse_u64_flag("--q", value(), u64)) return 2;
      config.queue_capacity = static_cast<std::size_t>(u64);
    } else if (flag == "--shards" && has_value) {
      if (!parse_u64_flag("--shards", value(), u64)) return 2;
      config.shards = static_cast<std::size_t>(u64);
    } else if (flag == "--chunks" && has_value) {
      if (!parse_u64_flag("--chunks", value(), u64)) return 2;
      config.chunks = static_cast<std::size_t>(u64);
    } else if (flag == "--mapper" && has_value) {
      config.mapper = value();
    } else if (flag == "--key-space" && has_value) {
      if (!parse_u64_flag("--key-space", value(), u64)) return 2;
      config.key_space = u64;
    } else if (flag == "--port" && has_value) {
      if (!parse_u64_flag("--port", value(), u64) || u64 > 65535) return 2;
      net_config.port = static_cast<std::uint16_t>(u64);
    } else if (flag == "--host" && has_value) {
      net_config.host = value();
    } else if (flag == "--seed" && has_value) {
      if (!parse_u64_flag("--seed", value(), u64)) return 2;
      config.seed = u64;
    } else if (flag == "--max-batch" && has_value) {
      if (!parse_u64_flag("--max-batch", value(), u64)) return 2;
      config.max_batch = static_cast<std::size_t>(u64);
    } else if (flag == "--waiting-limit" && has_value) {
      if (!parse_u64_flag("--waiting-limit", value(), u64)) return 2;
      config.waiting_limit = static_cast<std::size_t>(u64);
    } else if (flag == "--tick-us" && has_value) {
      if (!parse_u64_flag("--tick-us", value(), u64)) return 2;
      config.tick_interval_us = u64;
    } else if (flag == "--failure-schedule" && has_value) {
      config.failure_spec = value();
    } else if (flag == "--dump-on-crash") {
      config.dump_queue_on_crash = true;
    } else if (flag == "--backend-id" && has_value) {
      if (!parse_u64_flag("--backend-id", value(), u64) || u64 > 0xFFFFFFFFULL) {
        return 2;
      }
      config.backend_id = static_cast<std::uint32_t>(u64);
    } else if (flag == "--stats-interval" && has_value) {
      if (!parse_u64_flag("--stats-interval", value(), u64)) return 2;
      stats_interval_s = u64;
    } else if (flag == "--safe-set-log" && has_value) {
      safe_set_log_path = value();
    } else if (flag == "--flight-recorder" && has_value) {
      flight_recorder_path = value();
    } else if (flag == "--span-slow-us" && has_value) {
      if (!parse_u64_flag("--span-slow-us", value(), u64)) return 2;
      rlb::obs::SpanRecorder::instance().set_slow_budget_ns(u64 * 1000);
    } else if (flag == "--format" || flag == "--trace" ||
               flag == "--fail-rate" || flag == "--mttr") {
      ++i;  // consumed by init_output / reserved
    } else if (flag == "--probes" || flag == "--trace-detail") {
      // consumed by init_output
    } else {
      std::cerr << "rlbd: unknown flag '" << flag << "'\n";
      usage(argv[0]);
      return 2;
    }
  }

  // Server and engine reference each other (requests flow down, responses
  // flow back up); both lambdas capture through pointers filled in below.
  engine::ServingEngine* engine_raw = nullptr;
  net::NetServer server(
      net_config, [&engine_raw, &server](std::uint64_t conn_token,
                                         const net::RequestMsg& request) {
        if (!engine_raw->submit(conn_token, request.request_id, request.key,
                                request.trace)) {
          net::ResponseMsg msg;
          msg.request_id = request.request_id;
          msg.status = net::Status::kError;
          server.send_response(conn_token, msg);
        }
      });
  std::unique_ptr<engine::ServingEngine> engine_ptr;
  try {
    engine_ptr = std::make_unique<engine::ServingEngine>(
        config, [&server](const engine::EngineResponse& r) {
          net::ResponseMsg msg;
          msg.request_id = r.request_id;
          msg.status = static_cast<net::Status>(r.status);
          msg.server = static_cast<std::uint32_t>(r.server);
          msg.wait_steps = r.wait_steps;
          server.send_response(r.conn_token, msg);
        });
  } catch (const std::exception& e) {
    std::cerr << "rlbd: " << e.what() << "\n";
    return 2;
  }
  engine::ServingEngine& engine = *engine_ptr;
  engine_raw = engine_ptr.get();

  // Batched submit: the server hands over each wakeup's worth of decoded
  // REQUEST frames in one call, and the engine groups them by shard so a
  // burst costs one shard-lock + notify per shard instead of one per
  // request (the per-request handler above stays as the fallback path).
  server.set_request_batch_handler(
      [&engine_raw, &server](const net::ServerRequest* batch,
                             std::size_t count) {
        thread_local std::vector<engine::ServingEngine::SubmitItem> items;
        thread_local std::vector<std::size_t> rejected;
        items.clear();
        rejected.clear();
        items.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          items.push_back({batch[i].conn_token, batch[i].msg.request_id,
                           batch[i].msg.key, batch[i].msg.trace});
        }
        engine_raw->submit_batch(items.data(), count, rejected);
        for (const std::size_t i : rejected) {
          net::ResponseMsg msg;
          msg.request_id = batch[i].msg.request_id;
          msg.status = net::Status::kError;
          server.send_response(batch[i].conn_token, msg);
        }
      });

  // STATS admin frames answer from the event-loop thread: snapshot() is a
  // lock-free merge of shard atomics, so no worker tick ever blocks on it.
  // A router heartbeat piggybacks its placement epoch on the request; the
  // engine records it so the snapshot echoes cluster cutover progress.
  server.set_stats_handler(
      [&engine, &server](std::uint64_t conn_token,
                         const net::StatsRequestMsg& msg) {
        if (msg.epoch != 0) engine.set_placement_epoch(msg.epoch);
        server.send_stats(conn_token, engine.snapshot());
      });

  // Repair plane: MIGRATE orders from a repair coordinator stream chunk
  // state between backends without touching the serving path (the agent's
  // worker thread does the blocking I/O).
  repair::MigrationAgent migration_agent(server);
  migration_agent.set_on_migration_in(
      [&engine](std::uint64_t bytes) { engine.note_migration_in(bytes); });
  migration_agent.set_on_migration_out(
      [&engine](std::uint64_t bytes) { engine.note_migration_out(bytes); });
  migration_agent.install();

  // TRACE drains the span flight recorder; span recording is on by default
  // (zero cost until a request actually carries a wire context).
  obs::set_span_recording(true);
  const std::uint32_t backend_id = config.backend_id;
  server.set_trace_handler(
      [&server, backend_id](std::uint64_t conn_token,
                            const net::TraceRequestMsg&) {
        server.send_trace(conn_token, net::make_trace_snapshot(
                                          net::NodeRole::kBackend, backend_id));
      });

  // EVENTS drains the control-plane journal by cursor (non-destructive, so
  // any number of rlb_stat --events scrapers coexist).
  server.set_events_handler(
      [&server, backend_id](std::uint64_t conn_token,
                            const net::EventsRequestMsg& msg) {
        server.send_events(conn_token,
                           net::make_events_snapshot(net::NodeRole::kBackend,
                                                     backend_id, msg.cursor));
      });

  std::ofstream safe_set_log;
  if (!safe_set_log_path.empty()) {
    safe_set_log.open(safe_set_log_path, std::ios::app);
    if (!safe_set_log) {
      std::cerr << "rlbd: cannot open --safe-set-log path '"
                << safe_set_log_path << "'\n";
      return 2;
    }
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGQUIT, handle_dump_signal);
  std::signal(SIGPIPE, SIG_IGN);

  // Flight recorder: journal tail + current snapshot as one atomic JSON
  // document.  Not async-signal-safe, so SIGQUIT only flags and the main
  // loop calls this from ordinary context.
  auto dump_flight_record = [&](const char* why) {
    if (flight_recorder_path.empty()) return;
    if (obs::write_flight_record(flight_recorder_path, "backend",
                                 config.backend_id,
                                 net::render_json(engine.snapshot()))) {
      std::cout << "rlbd: flight record (" << why << ") -> "
                << flight_recorder_path << std::endl;
    } else {
      std::cerr << "rlbd: flight record write failed: "
                << flight_recorder_path << "\n";
    }
  };

  // The alerting watchdog: one evaluation per second over this backend's
  // own windowed signals; active rule names feed the STATS snapshot via
  // obs::set_active_alerts().
  obs::HealthWatchdog watchdog;

  engine.start();
  migration_agent.start();
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "rlbd: " << e.what() << "\n";
    migration_agent.stop();
    engine.stop();
    return 1;
  }

  std::cout << "rlbd: serving policy=" << config.policy
            << " backend=" << config.backend_id
            << " m=" << config.servers << " d=" << config.replication
            << " g=" << config.processing_rate
            << " shards=" << config.shards << " on " << net_config.host << ":"
            << server.port() << std::endl;

  // One loop iteration = 200ms.  The safe-set log samples every
  // stats-interval (1s when --stats-interval is unset).
  const std::uint64_t log_period =
      5 * (stats_interval_s > 0 ? stats_interval_s : 1);
  std::uint64_t iterations = 0;
  while (!g_stop_requested) {
    ::usleep(200 * 1000);
    ++iterations;
    if (g_dump_requested) {
      g_dump_requested = 0;
      dump_flight_record("SIGQUIT");
    }
    if (iterations % 5 == 0) {
      const net::StatsSnapshot snap = engine.snapshot();
      obs::HealthSample sample;
      sample.safe_worst_ratio = snap.safe_worst_ratio;
      sample.win_p99_us =
          static_cast<std::uint64_t>(snap.win_latency.quantile_us(0.99));
      sample.down_count = snap.totals().servers_down;
      sample.slow_consumer_drops = server.stats().slow_consumer_drops;
      watchdog.evaluate(sample);
      obs::set_active_alerts(watchdog.active());
    }
    if (safe_set_log.is_open() && iterations % log_period == 0) {
      safe_set_log << net::render_json(engine.snapshot()) << "\n";
      safe_set_log.flush();
    }
    if (stats_interval_s > 0 && iterations % (5 * stats_interval_s) == 0) {
      const engine::EngineStats s = engine.stats();
      const net::ServerStats n = server.stats();
      std::cout << "rlbd: submitted=" << s.submitted
                << " completed=" << s.completed << " rejected=" << s.rejected
                << " overload=" << s.overload_rejected
                << " backlog=" << s.backlog << " ticks=" << s.ticks
                << " down=" << s.servers_down
                << " conns=" << (n.connections_accepted - n.connections_closed)
                << " proto_errors=" << n.protocol_errors << std::endl;
    }
  }

  std::cout << "rlbd: draining..." << std::endl;
  // Capture the post-mortem before the engine stops: the snapshot still
  // shows the state the incident left behind.
  dump_flight_record("drain");
  // Drain order matters: the engine answers everything in flight first
  // (responses land in the listener's outbound buffers), then the listener
  // flushes those buffers and closes.  The migration agent goes first so
  // no new repair stream starts against a draining peer.
  migration_agent.stop();
  engine.stop();
  server.stop();
  // Flush trace sinks as part of the drain (atomic tmp+rename) so a SIGTERM
  // never leaves a truncated --trace / span JSONL behind.
  obs::flush_trace();
  obs::flush_spans();

  const engine::EngineStats s = engine.stats();
  const net::ServerStats n = server.stats();
  std::cout << "rlbd: done. submitted=" << s.submitted
            << " completed=" << s.completed << " rejected=" << s.rejected
            << " overload=" << s.overload_rejected
            << " crashes=" << s.crashes << " recoveries=" << s.recoveries
            << " bytes_in=" << n.bytes_in << " bytes_out=" << n.bytes_out
            << " proto_errors=" << n.protocol_errors << std::endl;
  harness::emit_probes();
  return 0;
}
