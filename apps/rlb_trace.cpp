// rlb_trace — scrape span flight recorders across a cluster and merge them
// into one causal timeline.
//
// Each process in the data path (rlb_loadgen -> rlb_router -> rlbd) records
// spans into its own in-memory flight recorder with timestamps on its own
// steady clock.  This tool makes them one trace:
//
//   1. scrape: poll the TRACE admin opcode on every --endpoints entry
//      (router and backends), looping until each recorder drains
//      (`remaining == 0`); read loadgen root spans from --span-file JSONL.
//   2. align: every TRACE_RESP carries a (steady_ns, wall_ns) clock anchor
//      sampled at encode time.  Span time maps onto the wall clock as
//      wall(ts) = ts + (wall_ns - steady_ns), and the residual skew between
//      the daemon's wall clock and ours is estimated from the scrape RTT:
//      the anchor was taken between our send and receive, so it should read
//      our midpoint — the difference is subtracted (the same RTT/2 midpoint
//      scheme the router's heartbeat RTT EMA feeds).  Span files carry an
//      anchor line instead and are trusted as-is (no RTT to measure).
//   3. merge: group spans by trace id, reconstruct parent/child trees
//      (client.request -> router.request -> router.hop per attempt ->
//      engine.request), and emit JSONL (--out), a Chrome trace file
//      (--chrome, load in chrome://tracing or Perfetto), and a span-tree
//      summary on stdout.
//
// The final summary line is machine-parseable (cluster_smoke.sh asserts on
// it): traces with >= 2 router.hop spans count as `retried`, traces with
// spans from >= 2 processes count as `cross_process`.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/router.hpp"
#include "net/client.hpp"
#include "net/trace_wire.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace {

using namespace rlb;

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [flags]\n"
      << "  --endpoints <host:port,...>\n"
      << "                    TRACE-scrape these daemons (router + backends)\n"
      << "  --span-file <path>\n"
      << "                    merge a span JSONL file too (rlb_loadgen\n"
      << "                    --span-file output); repeatable\n"
      << "  --out <path>      write merged spans as JSONL (wall-clock ns)\n"
      << "  --chrome <path>   write a Chrome trace (chrome://tracing,\n"
      << "                    Perfetto)\n"
      << "  --print <n>       print n span trees, retried traces first\n"
      << "                    (default 3; 0 = summary only)\n";
}

/// One process's contribution: spans plus the offset that maps their
/// steady-clock timestamps onto this tool's wall clock.
struct Source {
  std::string label;  // "router", "backend-<id>", "file:<path>"
  std::vector<obs::Span> spans;
  std::int64_t wall_offset_ns = 0;
  std::uint64_t dropped = 0;
  bool anchored = true;
};

/// Drain one daemon's recorder: TRACE until `remaining == 0`.  Every chunk
/// gets its own anchor/skew estimate (its own Source entry).
bool scrape_endpoint(const cluster::BackendEndpoint& endpoint,
                     std::vector<Source>& out, std::string& error) {
  try {
    net::Client client;
    client.connect(endpoint.host, endpoint.port);
    client.set_recv_timeout_ms(2000);
    for (;;) {
      const std::uint64_t sent_wall = obs::wall_now_ns();
      client.send_trace_request();
      client.flush();
      net::TraceSnapshot snapshot;
      if (!client.read_trace_response(snapshot)) {
        error = "connection closed";
        return false;
      }
      const std::uint64_t recv_wall = obs::wall_now_ns();
      // The daemon stamped its anchor somewhere inside our RTT window; it
      // should read our midpoint, so any difference is clock skew.
      const std::int64_t skew =
          static_cast<std::int64_t>(snapshot.wall_ns) -
          static_cast<std::int64_t>(sent_wall + (recv_wall - sent_wall) / 2);
      Source source;
      source.label = snapshot.role == net::NodeRole::kRouter
                         ? "router"
                         : "backend-" + std::to_string(snapshot.backend_id);
      source.wall_offset_ns = static_cast<std::int64_t>(snapshot.wall_ns) -
                              static_cast<std::int64_t>(snapshot.steady_ns) -
                              skew;
      source.dropped = snapshot.dropped;
      source.spans = std::move(snapshot.spans);
      const bool more = snapshot.remaining > 0 && !source.spans.empty();
      if (!source.spans.empty()) out.push_back(std::move(source));
      if (!more) return true;
    }
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
}

bool load_span_file(const std::string& path, std::vector<Source>& out,
                    std::string& error) {
  std::ifstream is(path);
  if (!is) {
    error = "cannot open";
    return false;
  }
  std::uint64_t anchor_steady = 0;
  std::uint64_t anchor_wall = 0;
  Source source;
  source.spans = obs::parse_spans_jsonl(is, anchor_steady, anchor_wall);
  source.label = "client";
  if (anchor_wall != 0) {
    source.wall_offset_ns = static_cast<std::int64_t>(anchor_wall) -
                            static_cast<std::int64_t>(anchor_steady);
  } else {
    source.anchored = false;  // timestamps stay process-relative
  }
  if (!source.spans.empty()) out.push_back(std::move(source));
  return true;
}

/// A span placed on the shared wall-clock axis.
struct Placed {
  obs::Span span;
  std::int64_t wall_start_ns = 0;
  std::int64_t wall_end_ns = 0;
  std::uint32_t source = 0;  // index into source labels
};

std::string json_escape(const char* s) {
  std::string out;
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}

void write_jsonl(const std::vector<Placed>& placed,
                 const std::vector<std::string>& labels, std::ostream& os) {
  for (const Placed& p : placed) {
    os << "{\"trace_id\":" << p.span.trace_id
       << ",\"span_id\":" << p.span.span_id
       << ",\"parent_span_id\":" << p.span.parent_span_id << ",\"name\":\""
       << json_escape(p.span.name) << "\",\"proc\":\"" << labels[p.source]
       << "\",\"wall_start_ns\":" << p.wall_start_ns
       << ",\"wall_end_ns\":" << p.wall_end_ns
       << ",\"shard\":" << p.span.shard << ",\"tid\":" << p.span.tid
       << ",\"queue_depth\":" << p.span.queue_depth
       << ",\"flags\":" << static_cast<unsigned>(p.span.flags)
       << ",\"cause\":" << static_cast<unsigned>(p.span.cause) << "}\n";
  }
}

void write_chrome(const std::vector<Placed>& placed,
                  const std::vector<std::string>& labels, std::ostream& os) {
  std::int64_t base = 0;
  for (const Placed& p : placed) {
    if (base == 0 || p.wall_start_ns < base) base = p.wall_start_ns;
  }
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << i + 1
       << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(labels[i].c_str())
       << "\"}}";
  }
  for (const Placed& p : placed) {
    const double ts =
        static_cast<double>(p.wall_start_ns - base) / 1000.0;  // us
    const double dur =
        static_cast<double>(p.wall_end_ns - p.wall_start_ns) / 1000.0;
    os << ",{\"name\":\"" << json_escape(p.span.name)
       << "\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":" << ts
       << ",\"dur\":" << dur << ",\"pid\":" << p.source + 1
       << ",\"tid\":" << p.span.tid << ",\"args\":{\"trace_id\":\""
       << p.span.trace_id << "\",\"span_id\":\"" << p.span.span_id
       << "\",\"parent\":\"" << p.span.parent_span_id
       << "\",\"shard\":" << p.span.shard
       << ",\"queue_depth\":" << p.span.queue_depth
       << ",\"cause\":" << static_cast<unsigned>(p.span.cause) << "}}";
  }
  os << "]}\n";
}

/// Per-trace rollup used by the summary and tree printer.
struct Trace {
  std::vector<std::size_t> spans;  // indices into placed, start-time order
  std::set<std::uint32_t> sources;
  std::size_t hops = 0;
  bool sampled = false;
  bool failed = false;
};

void print_tree(const std::vector<Placed>& placed,
                const std::vector<std::string>& labels, const Trace& trace,
                std::uint64_t trace_id) {
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> children;
  std::unordered_map<std::uint64_t, bool> present;
  for (const std::size_t i : trace.spans) present[placed[i].span.span_id] = 1;
  std::vector<std::size_t> roots;
  for (const std::size_t i : trace.spans) {
    const obs::Span& s = placed[i].span;
    if (s.parent_span_id != 0 && present.count(s.parent_span_id)) {
      children[s.parent_span_id].push_back(i);
    } else {
      roots.push_back(i);  // true root, or parent lost to sampling/drop
    }
  }
  std::cout << "trace " << std::hex << trace_id << std::dec << " ("
            << trace.spans.size() << " spans, " << trace.hops << " hops"
            << (trace.sampled ? ", sampled" : "")
            << (trace.failed ? ", failed" : "") << ")\n";
  struct Frame {
    std::size_t index;
    unsigned depth;
  };
  std::vector<Frame> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back({*it, 1});
  }
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Placed& p = placed[frame.index];
    std::cout << std::string(frame.depth * 2, ' ') << p.span.name << " "
              << (p.wall_end_ns - p.wall_start_ns) / 1000 << "us ["
              << labels[p.source];
    if (p.span.shard != 0 || std::string(p.span.name) == "engine.request") {
      std::cout << " shard=" << p.span.shard;
    }
    std::cout << "]";
    if (p.span.queue_depth != 0) std::cout << " depth=" << p.span.queue_depth;
    if (p.span.cause != 0) {
      std::cout << " cause="
                << net::to_string(static_cast<net::Status>(p.span.cause));
    }
    std::cout << "\n";
    const auto kids = children.find(p.span.span_id);
    if (kids != children.end()) {
      for (auto it = kids->second.rbegin(); it != kids->second.rend(); ++it) {
        stack.push_back({*it, frame.depth + 1});
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<cluster::BackendEndpoint> endpoints;
  std::vector<std::string> span_files;
  std::string out_path;
  std::string chrome_path;
  std::uint64_t print_trees = 3;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const bool has_value = i + 1 < argc;
    if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return 0;
    } else if (flag == "--endpoints" && has_value) {
      try {
        endpoints = cluster::parse_backend_list(argv[++i]);
      } catch (const std::exception& e) {
        std::cerr << "rlb_trace: " << e.what() << "\n";
        return 2;
      }
    } else if (flag == "--span-file" && has_value) {
      span_files.emplace_back(argv[++i]);
    } else if (flag == "--out" && has_value) {
      out_path = argv[++i];
    } else if (flag == "--chrome" && has_value) {
      chrome_path = argv[++i];
    } else if (flag == "--print" && has_value) {
      print_trees = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::cerr << "rlb_trace: unknown flag '" << flag << "'\n";
      usage(argv[0]);
      return 2;
    }
  }
  if (endpoints.empty() && span_files.empty()) {
    std::cerr << "rlb_trace: nothing to merge (need --endpoints and/or "
                 "--span-file)\n";
    usage(argv[0]);
    return 2;
  }

  // -- scrape --------------------------------------------------------------
  std::vector<Source> sources;
  std::size_t scraped_ok = 0;
  for (const cluster::BackendEndpoint& endpoint : endpoints) {
    std::string error;
    const std::size_t before = sources.size();
    if (!scrape_endpoint(endpoint, sources, error)) {
      std::cerr << "rlb_trace: " << endpoint.host << ":" << endpoint.port
                << ": " << error << "\n";
      continue;
    }
    ++scraped_ok;
    std::size_t spans = 0;
    std::uint64_t dropped = 0;
    for (std::size_t i = before; i < sources.size(); ++i) {
      spans += sources[i].spans.size();
      dropped = std::max(dropped, sources[i].dropped);
    }
    std::cout << "rlb_trace: " << endpoint.host << ":" << endpoint.port
              << " -> "
              << (sources.size() > before ? sources[before].label
                                          : std::string("(no spans)"))
              << " spans=" << spans << " dropped=" << dropped << "\n";
  }
  for (const std::string& path : span_files) {
    std::string error;
    const std::size_t before = sources.size();
    if (!load_span_file(path, sources, error)) {
      std::cerr << "rlb_trace: " << path << ": " << error << "\n";
      continue;
    }
    ++scraped_ok;
    const std::size_t spans =
        sources.size() > before ? sources[before].spans.size() : 0;
    std::cout << "rlb_trace: " << path << " -> client spans=" << spans;
    if (sources.size() > before && !sources[before].anchored) {
      std::cout << " (no clock anchor: timestamps stay process-relative)";
    }
    std::cout << "\n";
  }
  if (scraped_ok == 0) {
    std::cerr << "rlb_trace: every source failed\n";
    return 1;
  }

  // -- align ---------------------------------------------------------------
  // Collapse chunk sources into one label list; place every span on the
  // shared wall clock via its chunk's anchor offset.
  std::vector<std::string> labels;
  std::unordered_map<std::string, std::uint32_t> label_index;
  std::vector<Placed> placed;
  for (const Source& source : sources) {
    auto it = label_index.find(source.label);
    if (it == label_index.end()) {
      it = label_index.emplace(source.label,
                               static_cast<std::uint32_t>(labels.size()))
               .first;
      labels.push_back(source.label);
    }
    for (const obs::Span& span : source.spans) {
      Placed p;
      p.span = span;
      p.wall_start_ns =
          static_cast<std::int64_t>(span.start_ns) + source.wall_offset_ns;
      p.wall_end_ns =
          static_cast<std::int64_t>(span.end_ns) + source.wall_offset_ns;
      p.source = it->second;
      placed.push_back(p);
    }
  }
  std::sort(placed.begin(), placed.end(), [](const Placed& a, const Placed& b) {
    return a.wall_start_ns < b.wall_start_ns;
  });

  // -- merge ---------------------------------------------------------------
  std::map<std::uint64_t, Trace> traces;
  for (std::size_t i = 0; i < placed.size(); ++i) {
    const obs::Span& span = placed[i].span;
    Trace& trace = traces[span.trace_id];
    trace.spans.push_back(i);
    trace.sources.insert(placed[i].source);
    if (std::string(span.name) == "router.hop") ++trace.hops;
    if (span.flags & obs::kSpanSampled) trace.sampled = true;
    if (span.cause != 0) trace.failed = true;
  }
  std::size_t cross_process = 0;
  std::size_t retried = 0;
  std::size_t failed = 0;
  for (const auto& [id, trace] : traces) {
    if (trace.sources.size() >= 2) ++cross_process;
    if (trace.hops >= 2) ++retried;
    if (trace.failed) ++failed;
  }

  if (!out_path.empty()) {
    std::ofstream os(out_path);
    if (!os) {
      std::cerr << "rlb_trace: cannot write " << out_path << "\n";
      return 1;
    }
    write_jsonl(placed, labels, os);
  }
  if (!chrome_path.empty()) {
    std::ofstream os(chrome_path);
    if (!os) {
      std::cerr << "rlb_trace: cannot write " << chrome_path << "\n";
      return 1;
    }
    write_chrome(placed, labels, os);
  }

  // Retried traces make the most interesting trees; show them first.
  if (print_trees > 0) {
    std::vector<std::pair<std::uint64_t, const Trace*>> order;
    order.reserve(traces.size());
    for (const auto& [id, trace] : traces) order.emplace_back(id, &trace);
    std::stable_sort(order.begin(), order.end(),
                     [](const auto& a, const auto& b) {
                       if (a.second->hops != b.second->hops) {
                         return a.second->hops > b.second->hops;
                       }
                       return a.second->spans.size() > b.second->spans.size();
                     });
    for (std::size_t i = 0; i < order.size() && i < print_trees; ++i) {
      print_tree(placed, labels, *order[i].second, order[i].first);
    }
  }

  std::cout << "rlb_trace: merged traces=" << traces.size()
            << " spans=" << placed.size() << " processes=" << labels.size()
            << " cross_process=" << cross_process << " retried=" << retried
            << " failed=" << failed << std::endl;
  return 0;
}
