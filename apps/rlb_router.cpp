// rlb_router — the cluster front-end.
//
// Speaks the ordinary wire protocol to clients (rlb_loadgen works
// unchanged) and forwards every request to one of its chunk's d candidate
// rlbd backends — least estimated backlog among the live ones, estimates
// refreshed by heartbeat STATS pings, liveness by the membership state
// machine in src/cluster/membership.hpp.  See docs/CLUSTER.md.
//
// SIGINT/SIGTERM rejects in-flight hops and drains the client listener.
#include <csignal>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>

#include <unistd.h>

#include "cluster/router.hpp"
#include "harness/output.hpp"
#include "net/stats.hpp"
#include "obs/health.hpp"
#include "obs/journal.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;
volatile std::sig_atomic_t g_dump_requested = 0;

void handle_signal(int) { g_stop_requested = 1; }

void handle_dump_signal(int) { g_dump_requested = 1; }

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --backends <host:port,...> [flags]\n"
      << "  --backends <list>      rlbd endpoints, comma separated (required)\n"
      << "  --d <replication>      candidate backends per chunk (default 2)\n"
      << "  --chunks <n>           chunk count for the key hash (default 2^16)\n"
      << "  --seed <s>             placement seed (default 1)\n"
      << "  --port <p>             listen port; 0 = ephemeral (default 4116)\n"
      << "  --host <addr>          bind address (default 127.0.0.1)\n"
      << "  --heartbeat-ms <ms>    STATS ping period per backend (default 100)\n"
      << "  --heartbeat-timeout-ms <ms>\n"
      << "                         ping reply deadline (default 100)\n"
      << "  --miss-threshold <n>   consecutive misses -> mark-down (default 3)\n"
      << "  --probation <n>        consecutive successes -> mark-up (default 2)\n"
      << "  --timeout-ms <ms>      per-hop response deadline (default 2000)\n"
      << "  --max-attempts <n>     forward attempts per request; 0 = d\n"
      << "  --repair               enable the self-healing repair plane\n"
      << "  --repair-concurrent <n>    max concurrent migrations (default 2)\n"
      << "  --repair-bytes-per-sec <n> repair byte budget; 0=unthrottled\n"
      << "                             (default 8 MiB/s)\n"
      << "  --repair-chunk-bytes <n>   nominal state per chunk (default 4096)\n"
      << "  --repair-grace-ms <ms>     down time before repair starts\n"
      << "                             (default 300)\n"
      << "  --repair-timeout-ms <ms>   per-migration deadline (default 2000)\n"
      << "  --repair-scan-ms <ms>      planner scan period (default 100)\n"
      << "  --span-slow-us <us>    keep unsampled spans slower than this\n"
      << "                         (tail sampling; 0 = sampled/failed only)\n"
      << "  --stats-interval <s>   print live stats every s seconds (0=off)\n"
      << "  --flight-recorder <path>\n"
      << "                         flight-record JSON dump target for\n"
      << "                         SIGQUIT / drain (default\n"
      << "                         rlb_router_flight.json; empty disables)\n"
      << "  (plus --probes / --trace <path> from the obs layer)\n"
      << "rlb_stat polls the STATS admin opcode on the router port; add\n"
      << "--cluster to scrape the backends too, --events for the journal.\n";
}

bool parse_u64_flag(const char* name, const std::string& value,
                    std::uint64_t& out) {
  try {
    std::size_t pos = 0;
    const unsigned long long parsed = std::stoull(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    out = parsed;
    return true;
  } catch (const std::exception&) {
    std::cerr << "rlb_router: bad value for " << name << ": '" << value
              << "'\n";
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rlb;

  harness::init_output(argc, argv);

  cluster::RouterConfig config;
  config.port = 4116;
  std::uint64_t stats_interval_s = 0;
  std::string flight_recorder_path = "rlb_router_flight.json";

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const bool has_value = i + 1 < argc;
    auto value = [&]() -> std::string { return argv[++i]; };
    std::uint64_t u64 = 0;
    if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return 0;
    } else if (flag == "--backends" && has_value) {
      try {
        config.backends = cluster::parse_backend_list(value());
      } catch (const std::exception& e) {
        std::cerr << "rlb_router: " << e.what() << "\n";
        return 2;
      }
    } else if (flag == "--d" && has_value) {
      if (!parse_u64_flag("--d", value(), u64)) return 2;
      config.replication = static_cast<unsigned>(u64);
    } else if (flag == "--chunks" && has_value) {
      if (!parse_u64_flag("--chunks", value(), u64)) return 2;
      config.chunks = u64;
    } else if (flag == "--seed" && has_value) {
      if (!parse_u64_flag("--seed", value(), u64)) return 2;
      config.seed = u64;
    } else if (flag == "--port" && has_value) {
      if (!parse_u64_flag("--port", value(), u64) || u64 > 65535) return 2;
      config.port = static_cast<std::uint16_t>(u64);
    } else if (flag == "--host" && has_value) {
      config.host = value();
    } else if (flag == "--heartbeat-ms" && has_value) {
      if (!parse_u64_flag("--heartbeat-ms", value(), u64) || u64 == 0) {
        return 2;
      }
      config.heartbeat_interval_ms = u64;
    } else if (flag == "--heartbeat-timeout-ms" && has_value) {
      if (!parse_u64_flag("--heartbeat-timeout-ms", value(), u64) || u64 == 0) {
        return 2;
      }
      config.heartbeat_timeout_ms = u64;
    } else if (flag == "--miss-threshold" && has_value) {
      if (!parse_u64_flag("--miss-threshold", value(), u64) || u64 == 0) {
        return 2;
      }
      config.membership.miss_threshold = static_cast<unsigned>(u64);
    } else if (flag == "--probation" && has_value) {
      if (!parse_u64_flag("--probation", value(), u64) || u64 == 0) return 2;
      config.membership.probation_successes = static_cast<unsigned>(u64);
    } else if (flag == "--timeout-ms" && has_value) {
      if (!parse_u64_flag("--timeout-ms", value(), u64) || u64 == 0) return 2;
      config.request_timeout_ms = u64;
    } else if (flag == "--max-attempts" && has_value) {
      if (!parse_u64_flag("--max-attempts", value(), u64)) return 2;
      config.max_attempts = static_cast<unsigned>(u64);
    } else if (flag == "--repair") {
      config.repair.enabled = true;
    } else if (flag == "--repair-concurrent" && has_value) {
      if (!parse_u64_flag("--repair-concurrent", value(), u64) || u64 == 0) {
        return 2;
      }
      config.repair.max_concurrent = static_cast<unsigned>(u64);
    } else if (flag == "--repair-bytes-per-sec" && has_value) {
      if (!parse_u64_flag("--repair-bytes-per-sec", value(), u64)) return 2;
      config.repair.bytes_per_sec = u64;
    } else if (flag == "--repair-chunk-bytes" && has_value) {
      if (!parse_u64_flag("--repair-chunk-bytes", value(), u64)) return 2;
      config.repair.bytes_per_chunk = u64;
    } else if (flag == "--repair-grace-ms" && has_value) {
      if (!parse_u64_flag("--repair-grace-ms", value(), u64)) return 2;
      config.repair.down_grace_ms = u64;
    } else if (flag == "--repair-timeout-ms" && has_value) {
      if (!parse_u64_flag("--repair-timeout-ms", value(), u64) || u64 == 0) {
        return 2;
      }
      config.repair.migrate_timeout_ms = u64;
    } else if (flag == "--repair-scan-ms" && has_value) {
      if (!parse_u64_flag("--repair-scan-ms", value(), u64) || u64 == 0) {
        return 2;
      }
      config.repair.scan_interval_ms = u64;
    } else if (flag == "--span-slow-us" && has_value) {
      if (!parse_u64_flag("--span-slow-us", value(), u64)) return 2;
      rlb::obs::SpanRecorder::instance().set_slow_budget_ns(u64 * 1000);
    } else if (flag == "--stats-interval" && has_value) {
      if (!parse_u64_flag("--stats-interval", value(), u64)) return 2;
      stats_interval_s = u64;
    } else if (flag == "--flight-recorder" && has_value) {
      flight_recorder_path = value();
    } else if (flag == "--format" || flag == "--trace") {
      ++i;  // consumed by init_output
    } else if (flag == "--probes" || flag == "--trace-detail") {
      // consumed by init_output
    } else {
      std::cerr << "rlb_router: unknown flag '" << flag << "'\n";
      usage(argv[0]);
      return 2;
    }
  }

  if (config.backends.empty()) {
    std::cerr << "rlb_router: --backends is required\n";
    usage(argv[0]);
    return 2;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGQUIT, handle_dump_signal);
  std::signal(SIGPIPE, SIG_IGN);

  // Span recording on by default: zero cost until a request carries a wire
  // context, and the TRACE scrape channel (rlb_trace) expects spans.
  obs::set_span_recording(true);

  std::unique_ptr<cluster::Router> router;
  try {
    router = std::make_unique<cluster::Router>(config);
    router->start();
  } catch (const std::exception& e) {
    std::cerr << "rlb_router: " << e.what() << "\n";
    return 1;
  }

  std::cout << "rlb_router: routing to " << config.backends.size()
            << " backends (d=" << config.replication
            << ", heartbeat=" << config.heartbeat_interval_ms << "ms"
            << ", timeout=" << config.request_timeout_ms << "ms"
            << (config.repair.enabled ? ", repair=on" : "") << ") on "
            << config.host << ":" << router->port() << std::endl;

  // Flight recorder: journal tail + cluster-view snapshot, written from
  // ordinary context (SIGQUIT only flags).
  auto dump_flight_record = [&](const char* why) {
    if (flight_recorder_path.empty()) return;
    if (obs::write_flight_record(flight_recorder_path, "router", 0,
                                 net::render_json(router->snapshot()))) {
      std::cout << "rlb_router: flight record (" << why << ") -> "
                << flight_recorder_path << std::endl;
    } else {
      std::cerr << "rlb_router: flight record write failed: "
                << flight_recorder_path << "\n";
    }
  };

  // The alerting watchdog: one evaluation per second over the cluster-view
  // windowed signals (down backends, heartbeat flaps, windowed hop-RTT p99,
  // repair progress).
  obs::HealthWatchdog watchdog;

  std::uint64_t iterations = 0;
  while (!g_stop_requested) {
    ::usleep(200 * 1000);
    ++iterations;
    if (g_dump_requested) {
      g_dump_requested = 0;
      dump_flight_record("SIGQUIT");
    }
    if (iterations % 5 == 0) {
      const net::StatsSnapshot snap = router->snapshot();
      const net::ShardStats totals = snap.totals();
      obs::HealthSample sample;
      sample.safe_worst_ratio = snap.safe_worst_ratio;
      sample.win_p99_us =
          static_cast<std::uint64_t>(snap.win_hop_rtt.quantile_us(0.99));
      sample.down_count = totals.servers_down;
      // totals() keeps the max of max_batch; the flap rule needs the SUM of
      // per-backend mark-down counts (row.max_batch carries them).
      sample.transitions_down = 0;
      for (const net::ShardStats& row : snap.shards) {
        sample.transitions_down += row.max_batch;
      }
      sample.repair_pending = snap.repair.chunks_pending;
      sample.repair_done = snap.repair.migrations_done;
      watchdog.evaluate(sample);
      obs::set_active_alerts(watchdog.active());
    }
    if (stats_interval_s > 0 && iterations % (5 * stats_interval_s) == 0) {
      const cluster::RouterStats s = router->stats();
      std::cout << "rlb_router: received=" << s.received
                << " forwarded=" << s.forwarded << " ok=" << s.relayed_ok
                << " rejected="
                << (s.relayed_reject + s.rejected_upstream_down +
                    s.rejected_upstream_timeout)
                << " retries=" << s.retries << " drops=" << s.backend_drops
                << " live=" << router->membership().live_count() << "/"
                << config.backends.size() << std::endl;
      if (config.repair.enabled) {
        const net::RepairStats r = router->repair_stats();
        std::cout << "rlb_router: repair epoch=" << router->placement_epoch()
                  << " migrated=" << r.migrations_done
                  << " failed=" << r.migrations_failed
                  << " inflight=" << r.migrations_inflight
                  << " pending=" << r.chunks_pending
                  << " bytes=" << r.bytes_sent << std::endl;
      }
    }
  }

  std::cout << "rlb_router: draining..." << std::endl;
  // Capture the post-mortem before stop() tears down the upstream view.
  dump_flight_record("drain");
  router->stop();
  // Flush trace sinks during the drain (atomic tmp+rename): no truncated
  // --trace / span JSONL on SIGTERM.
  obs::flush_trace();
  obs::flush_spans();

  const cluster::RouterStats s = router->stats();
  std::cout << "rlb_router: done. received=" << s.received
            << " forwarded=" << s.forwarded << " ok=" << s.relayed_ok
            << " backend_rejects=" << s.relayed_reject
            << " upstream_down=" << s.rejected_upstream_down
            << " upstream_timeout=" << s.rejected_upstream_timeout
            << " retries=" << s.retries << " timeouts=" << s.timeouts
            << " late=" << s.late_responses << " drops=" << s.backend_drops
            << std::endl;
  if (config.repair.enabled) {
    const net::RepairStats r = router->repair_stats();
    std::cout << "rlb_router: repair done. epoch=" << router->placement_epoch()
              << " migrated=" << r.migrations_done
              << " failed=" << r.migrations_failed
              << " bytes=" << r.bytes_sent << std::endl;
  }
  harness::emit_probes();
  return 0;
}
