// Experiment E10 — the balls-and-bins context the paper builds on
// ([9] Berenbrink et al.; [5] Bansal–Kuszmaul; used in Lemma 4.4).
//
// Part A (the [9] positive result, the engine inside Lemma 4.4): the
// two-choice gap stays O(log log m) no matter how heavily loaded the bins
// are — we sweep k from m to 64m and show the gap column is flat while
// one-choice's gap grows like sqrt(k/m · log m).
//
// Part B (the reappearance-dependency process of [5]): insert/delete/
// REINSERT churn where reinserted balls keep their original two hashes.
// Under stochastic churn the process remains well-behaved (the paper's
// point is that the FAILURE needs an adversarial schedule, which is why
// delayed cuckoo routing can still win); we show fixed-id and fresh-id
// churn trajectories side by side.
#include <cmath>
#include <iostream>

#include "ballsbins/heavily_loaded.hpp"
#include "ballsbins/strategies.hpp"
#include "common.hpp"
#include "parallel/trial_runner.hpp"
#include "report/table.hpp"
#include "stats/summary.hpp"

namespace {

using namespace rlb;

void part_a() {
  std::cout << "\nPart A: gap vs load factor (m = 1024 bins).\n";
  constexpr std::size_t kBins = 1024;
  constexpr std::size_t kTrials = 10;
  report::Table table({"k (balls)", "k/m", "one-choice gap", "two-choice gap",
                       "sqrt(k/m*ln m) ref"});
  for (const std::size_t factor : {1u, 4u, 16u, 64u}) {
    const std::size_t balls = factor * kBins;
    struct Gaps {
      double one = 0, two = 0;
    };
    const std::function<Gaps(std::uint64_t, std::size_t)> trial =
        [balls](std::uint64_t seed, std::size_t) {
          stats::Rng rng(seed);
          Gaps gaps;
          gaps.one = ballsbins::load_gap(
              ballsbins::one_choice(kBins, balls, rng));
          gaps.two = ballsbins::load_gap(
              ballsbins::d_choice_greedy(kBins, balls, 2, rng));
          return gaps;
        };
    const auto outcomes = parallel::run_trials<Gaps>(
        parallel::default_pool(), kTrials, 9000 + factor, trial);
    stats::OnlineStats one, two;
    for (const Gaps& g : outcomes) {
      one.add(g.one);
      two.add(g.two);
    }
    table.row()
        .cell(static_cast<std::uint64_t>(balls))
        .cell(static_cast<std::uint64_t>(factor))
        .cell(one.mean(), 2)
        .cell(two.mean(), 2)
        .cell(std::sqrt(static_cast<double>(factor) *
                        std::log(static_cast<double>(kBins))),
              2);
  }
  bench::emit(table);
}

void part_b() {
  std::cout << "\nPart B: churn with reappearance dependencies (m = 1024, "
               "k = 8m, churn m per round).\n";
  constexpr std::size_t kBins = 1024;
  constexpr std::size_t kBalls = 8 * kBins;
  constexpr std::size_t kRounds = 60;
  constexpr std::size_t kTrials = 6;

  struct Trajectories {
    std::vector<double> fixed, fresh;
  };
  const std::function<Trajectories(std::uint64_t, std::size_t)> trial =
      [](std::uint64_t seed, std::size_t) {
        Trajectories out;
        {
          ballsbins::HeavilyLoadedProcess process(kBins, 2, seed);
          stats::Rng rng(stats::derive_seed(seed, 1));
          out.fixed = ballsbins::fixed_id_churn_gaps(process, kBalls, kBins,
                                                     kRounds, rng);
        }
        {
          ballsbins::HeavilyLoadedProcess process(kBins, 2, seed);
          stats::Rng rng(stats::derive_seed(seed, 1));
          out.fresh = ballsbins::fresh_id_churn_gaps(process, kBalls, kBins,
                                                     kRounds, rng);
        }
        return out;
      };
  const auto outcomes = parallel::run_trials<Trajectories>(
      parallel::default_pool(), kTrials, 9500, trial);

  report::Table table({"round", "fixed-id gap (reappearance)",
                       "fresh-id gap (baseline)"});
  for (const std::size_t round : {0u, 9u, 19u, 39u, 59u}) {
    stats::OnlineStats fixed, fresh;
    for (const Trajectories& t : outcomes) {
      fixed.add(t.fixed[round]);
      fresh.add(t.fresh[round]);
    }
    table.row()
        .cell(static_cast<std::uint64_t>(round + 1))
        .cell(fixed.mean(), 2)
        .cell(fresh.mean(), 2);
  }
  bench::emit(table);
  std::cout << "\nReading guide: both trajectories stay flat under "
               "stochastic churn — Bansal–Kuszmaul's k^Omega(1) blow-up "
               "needs an adversarially crafted schedule.  The load-balancing "
               "analogue of that adversarial failure is what the paper's "
               "algorithms provably avoid (E1, E4).\n";
}

void part_c() {
  std::cout << "\nPart C: b-batched GREEDY[2] (Los & Sauerwald [21]) — gap "
               "vs batch size (m = 1024 bins, k = 16m balls).\n";
  constexpr std::size_t kBins = 1024;
  constexpr std::size_t kBalls = 16 * kBins;
  constexpr std::size_t kTrials = 8;
  report::Table table({"batch", "batch/m", "gap (mean)",
                       "vs sequential (batch 1)"});
  double sequential_gap = 0.0;
  for (const std::size_t batch : {1u, 64u, 1024u, 4096u, 16384u}) {
    const std::function<double(std::uint64_t, std::size_t)> trial =
        [batch](std::uint64_t seed, std::size_t) {
          stats::Rng rng(seed);
          return ballsbins::load_gap(ballsbins::batched_d_choice_greedy(
              kBins, kBalls, 2, batch, rng));
        };
    const auto gaps = parallel::run_trials<double>(parallel::default_pool(),
                                                   kTrials, 9700 + batch,
                                                   trial);
    stats::OnlineStats stat;
    for (const double g : gaps) stat.add(g);
    if (batch == 1) sequential_gap = stat.mean();
    table.row()
        .cell(static_cast<std::uint64_t>(batch))
        .cell(static_cast<double>(batch) / kBins, 2)
        .cell(stat.mean(), 2)
        .cell(sequential_gap > 0 ? stat.mean() / sequential_gap : 1.0, 2);
  }
  bench::emit(table);
  std::cout << "  The batch snapshot is exactly what delayed information "
               "costs: at batch = m the within-batch process is one-choice, "
               "and the gap climbs accordingly — context for why the "
               "paper's P-queues precompute with a FULL step of hindsight "
               "instead of routing on stale counters.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  bench::print_banner(
      "E10 / bench_heavily_loaded_gap (Berenbrink et al. [9]; Bansal-"
      "Kuszmaul [5]; Los-Sauerwald [21])",
      "two-choice gap is O(log log m) even with k >> m balls; reinsertion "
      "keeps hashes fixed (reappearance dependencies); batching degrades "
      "the gap gracefully",
      "two-choice gap flat in k while one-choice grows ~sqrt(k); churn "
      "trajectories bounded; batched gap grows with batch/m");
  part_a();
  part_b();
  part_c();
  return 0;
}
