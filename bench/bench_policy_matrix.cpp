// Experiment E11 — the head-to-head policy matrix ("Table 1" of the
// reproduction).
//
// Every policy × every workload family, identical traces per cell row
// group, matched m / g, each policy with its theorem-recommended queue
// size.  This is the summary table a systems reader would look for: who
// rejects, who keeps latency flat, and on which traffic.
//
// Expected shape (paper Sections 1, 3, 4, 5):
//   * greedy (d=2, q=log m+1)      — clean everywhere.
//   * delayed-cuckoo (q~4loglog m) — clean everywhere with far smaller q.
//   * greedy-d1                    — collapses on repeated/zipf (the [34]
//                                    impossibility), fine on fresh.
//   * random-of-d / per-step-greedy — reject on repeated traffic
//                                    (Lemma 5.3), fine on fresh.
//   * round-robin                  — intermediate: spreads each chunk but
//                                    is blind to placement collisions.
#include <iostream>

#include "common.hpp"
#include "policies/factory.hpp"
#include "report/table.hpp"
#include "workloads/fresh_uniform.hpp"
#include "workloads/mixed.hpp"
#include "workloads/phased_churn.hpp"
#include "workloads/reappearance_profile.hpp"
#include "workloads/repeated_set.hpp"
#include "workloads/sliding_window.hpp"
#include "workloads/zipf_workload.hpp"

namespace {

using namespace rlb;

constexpr std::size_t kM = 1024;
// Each algorithm's theorem assumes "g a sufficiently large constant" for
// THAT algorithm; the matrix therefore runs each policy at its design
// point: g = 2 for the single-queue disciplines (tight: arrival rate is 1
// per server per step) and g = 8 for delayed cuckoo (2 per queue across
// its four queues).  Both are O(1) — the comparison is about guarantees
// achievable with constant resources, and the g column records the cost.
constexpr unsigned kGSingleQueue = 2;
constexpr unsigned kGCuckoo = 8;
constexpr std::size_t kSteps = 250;
constexpr std::size_t kTrials = 5;

bench::WorkloadFactory workload_factory(const std::string& name) {
  if (name == "repeated") {
    return [](std::uint64_t seed) -> std::unique_ptr<core::Workload> {
      return std::make_unique<workloads::RepeatedSetWorkload>(
          kM, 1ULL << 40, stats::derive_seed(seed, 1),
          /*shuffle_each_step=*/false);
    };
  }
  if (name == "fresh") {
    return [](std::uint64_t) -> std::unique_ptr<core::Workload> {
      return std::make_unique<workloads::FreshUniformWorkload>(kM);
    };
  }
  if (name == "zipf-0.99") {
    return [](std::uint64_t seed) -> std::unique_ptr<core::Workload> {
      return std::make_unique<workloads::ZipfWorkload>(
          kM, 8 * kM, 0.99, stats::derive_seed(seed, 2));
    };
  }
  if (name == "churn-20%") {
    return [](std::uint64_t seed) -> std::unique_ptr<core::Workload> {
      return std::make_unique<workloads::PhasedChurnWorkload>(
          kM, 0.2, 4, stats::derive_seed(seed, 3));
    };
  }
  if (name == "sliding-25%") {
    return [](std::uint64_t seed) -> std::unique_ptr<core::Workload> {
      return std::make_unique<workloads::SlidingWindowWorkload>(
          kM, kM / 4, stats::derive_seed(seed, 5));
    };
  }
  return [](std::uint64_t seed) -> std::unique_ptr<core::Workload> {
    return std::make_unique<workloads::MixedWorkload>(
        kM, 0.5, stats::derive_seed(seed, 4));
  };
}

void run() {
  bench::print_banner(
      "E11 / bench_policy_matrix (summary table)",
      "all policies x all workload families at matched m, g",
      "greedy & delayed-cuckoo clean everywhere; d=1 and the isolated "
      "strategies collapse exactly on reappearance-heavy traffic");

  // Characterize each workload's reappearance dependence first — the knob
  // the whole paper is about.
  std::cout << "\nWorkload reappearance profiles (over " << kSteps
            << " steps):\n";
  report::Table profiles({"workload", "reappearance fraction",
                          "median reuse distance", "working-set ratio"});
  for (const std::string workload_name :
       {"repeated", "zipf-0.99", "churn-20%", "sliding-25%", "mixed-50%", "fresh"}) {
    auto workload = workload_factory(workload_name)(11000);
    const workloads::ReappearanceProfile profile =
        workloads::profile_workload(*workload, kSteps);
    profiles.row()
        .cell(workload_name)
        .cell(profile.reappearance_fraction(), 3)
        .cell(profile.reuse_distance.quantile(0.5))
        .cell(profile.working_set_ratio(), 4);
  }
  bench::emit(profiles);
  std::cout << '\n';

  report::Table table({"workload", "policy", "g", "q", "rejection(pooled)",
                       "avg_lat", "p99_lat", "max_lat", "max_backlog"});

  for (const std::string workload_name :
       {"repeated", "zipf-0.99", "churn-20%", "sliding-25%", "mixed-50%", "fresh"}) {
    for (const std::string& policy_name : policies::policy_names()) {
      const unsigned g =
          policy_name == "delayed-cuckoo" ? kGCuckoo : kGSingleQueue;
      policies::PolicyConfig config;
      config.servers = kM;
      config.replication = 2;
      config.processing_rate = g;
      config.queue_capacity = 0;  // theorem defaults per policy
      const bench::BalancerFactory make_balancer =
          [policy_name, config](std::uint64_t seed) {
            policies::PolicyConfig c = config;
            c.seed = seed;
            return policies::make_policy(policy_name, c);
          };
      core::SimConfig sim;
      sim.steps = kSteps;

      // p99 latency needs per-trial histograms; run one representative
      // seed for the quantile column and the aggregate for the rest.
      const bench::TrialAggregate agg =
          bench::run_trials(kTrials, 11000, make_balancer,
                            workload_factory(workload_name), sim);
      auto representative = make_balancer(stats::derive_seed(11000, 0));
      auto workload = workload_factory(workload_name)(
          stats::derive_seed(11000, 0));
      const core::SimResult rep = core::simulate(*representative, *workload,
                                                 sim);

      // Report the queue capacity the policy actually derived.
      std::string q_label = "log2m+1";
      if (policy_name == "delayed-cuckoo") q_label = "4x~2loglogm";
      table.row()
          .cell(workload_name)
          .cell(policy_name)
          .cell(g)
          .cell(q_label)
          .cell_sci(agg.pooled_rejection_rate())
          .cell(agg.average_latency.mean(), 2)
          .cell(rep.metrics.latency_quantile(0.99))
          .cell(agg.max_latency.mean(), 1)
          .cell(agg.max_backlog.mean(), 1);
    }
    table.row().cell("");  // visual separator between workload groups
  }
  bench::emit(table);
  std::cout << "\nReading guide: the separations to check are (a) greedy-d1 "
               "and the isolated policies rejecting on repeated/zipf but "
               "not fresh, and (b) delayed-cuckoo matching greedy's "
               "cleanliness with an exponentially smaller queue budget.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  run();
  return 0;
}
