// Experiment E6 — Theorem 5.2: rejection rate is at least 1/poly m.
//
// The proof idea: with probability 1/m^{O(1)}, the random placement wires a
// set of chunks onto a set of servers whose combined processing capacity is
// below the set's per-step demand; those requests are then rejected on
// every step, forever.  The EXPECTED rejection rate is therefore
// polynomially — not exponentially — small, for any d, g = O(1).
//
// Setup: d = 2, g = 1, repeated working set of a FIXED k = 16 chunks while
// m grows, so the system is ever further from congestion and the only
// rejection mechanism left is the placement collision.  The overload event
// is a connected component of the placement graph with MORE CHUNKS THAN
// SERVERS (capacity j servers × g = 1 < arrivals); its dominant form is 3
// chunks sharing one server pair, P ≈ C(k,3)·(2/m²)² = Θ(m⁻⁴).  We detect
// the event exactly with a union-find, measure greedy's realized rejection
// rate, and fit both against m on a log-log scale — both slopes should be
// negative constants near -4 (polynomial, exactly as Theorem 5.2's floor
// predicts; an "exponentially safe" system would fall off a cliff instead).
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/placement.hpp"
#include "core/placement_graph.hpp"
#include "parallel/trial_runner.hpp"
#include "policies/greedy.hpp"
#include "report/table.hpp"
#include "stats/fit.hpp"
#include "workloads/repeated_set.hpp"

namespace {

using namespace rlb;

/// Does the placement graph of `chunks` chunks (edges) over m servers
/// (vertices) contain a component with more edges than g·vertices?  Such a
/// component's servers are over-subscribed every step at g = 1 — the
/// Theorem 5.2 overload event.
bool has_overloaded_component(std::size_t m, std::size_t chunks,
                              std::uint64_t seed) {
  const core::Placement placement(m, 2, seed);
  const core::PlacementGraphStats stats =
      core::analyze_placement_graph(placement, chunks, /*g=*/1);
  return stats.max_overload_excess > 0;
}

void run() {
  bench::print_banner(
      "E6 / bench_rejection_lower_bound (Theorem 5.2)",
      "any d,g = O(1) system has expected rejection rate >= 1/poly(m)",
      "overload-event probability and realized rejection both decay with "
      "POLYNOMIAL (negative-constant) log-log slopes, not exponentially");

  constexpr unsigned kEventTrials = 400000;
  constexpr std::size_t kSteps = 200;
  constexpr std::size_t kChunks = 16;  // fixed working set

  std::vector<double> ms, rejections, event_probs;
  report::Table table({"m", "working set", "P[overload component]",
                       "rejection(pooled)", "sim trials"});

  for (const std::size_t m : {16u, 24u, 32u, 48u, 64u}) {
    const std::size_t chunks = kChunks;

    const std::function<int(std::uint64_t, std::size_t)> event_trial =
        [m, chunks](std::uint64_t seed, std::size_t) {
          return has_overloaded_component(m, chunks, seed) ? 1 : 0;
        };
    const auto events = parallel::run_trials<int>(
        parallel::default_pool(), kEventTrials, 6000 + m, event_trial);
    std::size_t hits = 0;
    for (const int e : events) hits += static_cast<std::size_t>(e);
    const double event_probability =
        static_cast<double>(hits) / static_cast<double>(kEventTrials);

    const std::size_t sim_trials = m <= 32 ? 8192 : 32768;
    const bench::BalancerFactory make_balancer = [m](std::uint64_t seed) {
      policies::SingleQueueConfig config;
      config.servers = m;
      config.replication = 2;
      config.processing_rate = 1;
      config.queue_capacity = 4;
      config.seed = seed;
      return std::make_unique<policies::GreedyBalancer>(config);
    };
    const bench::WorkloadFactory make_workload =
        [chunks](std::uint64_t seed) {
          return std::make_unique<workloads::RepeatedSetWorkload>(
              chunks, 1ULL << 40, stats::derive_seed(seed, 9));
        };
    core::SimConfig sim;
    sim.steps = kSteps;
    sim.sample_backlogs = false;
    const bench::TrialAggregate agg = bench::run_trials(
        sim_trials, 6500 + m, make_balancer, make_workload, sim);

    ms.push_back(static_cast<double>(m));
    rejections.push_back(agg.pooled_rejection_rate());
    event_probs.push_back(event_probability);
    table.row()
        .cell(static_cast<std::uint64_t>(m))
        .cell(static_cast<std::uint64_t>(chunks))
        .cell_sci(event_probability)
        .cell_sci(agg.pooled_rejection_rate())
        .cell(static_cast<std::uint64_t>(sim_trials));
  }
  bench::emit(table);

  auto loglog_fit = [](const std::vector<double>& xs,
                       const std::vector<double>& ys) {
    std::vector<double> lx, ly;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (ys[i] <= 0.0) continue;
      lx.push_back(std::log2(xs[i]));
      ly.push_back(std::log2(ys[i]));
    }
    return stats::fit_linear(lx, ly);
  };
  const stats::LinearFit event_fit = loglog_fit(ms, event_probs);
  const stats::LinearFit rej_fit = loglog_fit(ms, rejections);
  std::cout << "\nLog-log fits vs m:\n"
            << "  P[overload]  ~ m^" << event_fit.slope
            << "  (R^2 = " << event_fit.r_squared << ")\n"
            << "  rejection    ~ m^" << rej_fit.slope
            << "  (R^2 = " << rej_fit.r_squared << ")\n";
  std::cout << "Reading guide: finite negative slopes are Theorem 5.2's "
               "floor — rejections decay polynomially in m and cannot be "
               "driven to zero by ANY d, g = O(1) policy.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  run();
  return 0;
}
