// Experiment E5 — Theorem 5.1: queues must be Ω(log log m).
//
// The proof routes through Vöcking's balls-and-bins lower bound: in a
// single step of m requests to fresh random chunks, ANY online d-choice
// strategy leaves some server with Ω(log log m) arrivals — so queues of
// o(log log m) force rejections.
//
// We measure the single-step max load of one-choice, GREEDY[d] and LEFT[d]
// over m from 2^10 to 2^20 and fit the growth: one-choice fits log m /
// log log m scale (fast growth), the d-choice curves fit a + b·log2 log2 m
// with b ≈ 1/log2(d) — growing, unbounded, but doubly-logarithmically.
#include <cmath>
#include <iostream>

#include "ballsbins/strategies.hpp"
#include "common.hpp"
#include "parallel/trial_runner.hpp"
#include "report/table.hpp"
#include "stats/fit.hpp"
#include "stats/summary.hpp"

namespace {

using namespace rlb;

struct Row {
  double one = 0, d2 = 0, d3 = 0, left2 = 0;
};

void run() {
  bench::print_banner(
      "E5 / bench_queue_lower_bound (Theorem 5.1, via Voecking [33])",
      "one step of m fresh requests: some server receives Omega(log log m) "
      "arrivals under any d = O(1) strategy -> queues need Omega(log log m)",
      "d-choice max-load columns grow with m and fit c1 + c2*log2log2(m) "
      "with R^2 close to 1; one-choice grows much faster");

  constexpr std::size_t kTrials = 12;
  std::vector<double> ms, one_means, d2_means, d3_means, left2_means;

  report::Table table({"m", "log2log2(m)", "one-choice", "greedy[2]",
                       "greedy[3]", "left[2]"});
  for (unsigned k = 10; k <= 20; k += 2) {
    const std::size_t m = 1ULL << k;
    const std::function<Row(std::uint64_t, std::size_t)> trial =
        [m](std::uint64_t seed, std::size_t) {
          stats::Rng rng(seed);
          Row row;
          row.one = ballsbins::max_load(ballsbins::one_choice(m, m, rng));
          row.d2 =
              ballsbins::max_load(ballsbins::d_choice_greedy(m, m, 2, rng));
          row.d3 =
              ballsbins::max_load(ballsbins::d_choice_greedy(m, m, 3, rng));
          row.left2 =
              ballsbins::max_load(ballsbins::always_go_left(m, m, 2, rng));
          return row;
        };
    const auto rows = parallel::run_trials<Row>(parallel::default_pool(),
                                                kTrials, 5000 + k, trial);
    stats::OnlineStats one, d2, d3, left2;
    for (const Row& row : rows) {
      one.add(row.one);
      d2.add(row.d2);
      d3.add(row.d3);
      left2.add(row.left2);
    }
    ms.push_back(static_cast<double>(m));
    one_means.push_back(one.mean());
    d2_means.push_back(d2.mean());
    d3_means.push_back(d3.mean());
    left2_means.push_back(left2.mean());

    table.row()
        .cell(static_cast<std::uint64_t>(m))
        .cell(std::log2(std::log2(static_cast<double>(m))), 3)
        .cell(one.mean(), 2)
        .cell(d2.mean(), 2)
        .cell(d3.mean(), 2)
        .cell(left2.mean(), 2);
  }
  bench::emit(table);

  std::cout << "\nFits of mean max load against log2(log2 m):\n";
  report::Table fits({"strategy", "slope", "intercept", "R^2",
                      "theory slope ~ 1/log2(d)"});
  const auto d2_fit = stats::fit_against_loglog2(ms, d2_means);
  const auto d3_fit = stats::fit_against_loglog2(ms, d3_means);
  const auto left2_fit = stats::fit_against_loglog2(ms, left2_means);
  const auto one_fit = stats::fit_against_loglog2(ms, one_means);
  fits.row().cell("greedy[2]").cell(d2_fit.slope, 3).cell(d2_fit.intercept, 3)
      .cell(d2_fit.r_squared, 4).cell(1.0 / std::log2(2.0), 3);
  fits.row().cell("greedy[3]").cell(d3_fit.slope, 3).cell(d3_fit.intercept, 3)
      .cell(d3_fit.r_squared, 4).cell(1.0 / std::log2(3.0), 3);
  fits.row().cell("left[2]").cell(left2_fit.slope, 3)
      .cell(left2_fit.intercept, 3).cell(left2_fit.r_squared, 4).cell("-");
  fits.row().cell("one-choice").cell(one_fit.slope, 3)
      .cell(one_fit.intercept, 3).cell(one_fit.r_squared, 4)
      .cell("(not loglog-scale)");
  bench::emit(fits);

  std::cout << "\nReading guide: the positive, near-linear-in-loglog slopes "
               "for d-choice strategies are the Omega(log log m) floor of "
               "Theorem 5.1: any o(log log m) queue rejects in step one.  "
               "One-choice's much larger slope shows it is on a different "
               "(log m / log log m) scale entirely.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  run();
  return 0;
}
