// Experiment E15 — parallel harness scaling (engineering).
//
// The experiment suite's wall-clock is bounded by how fast the trial
// runner fans independent seeded simulations across cores.  This bench
// measures trials/second vs pool size for a fixed greedy workload, and
// verifies that results are bit-identical regardless of parallelism (the
// determinism contract every experiment relies on).
#include <iostream>

#include "common.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/trial_runner.hpp"
#include "policies/greedy.hpp"
#include "report/table.hpp"
#include "workloads/repeated_set.hpp"

namespace {

using namespace rlb;

std::uint64_t one_trial(std::uint64_t seed) {
  auto config = policies::GreedyBalancer::theorem_config(1024, 4, 4, seed);
  policies::GreedyBalancer balancer(config);
  workloads::RepeatedSetWorkload workload(1024, 1ULL << 30, seed);
  core::SimConfig sim;
  sim.steps = 100;
  const core::SimResult result = core::simulate(balancer, workload, sim);
  // Digest a few outcome fields so the compiler cannot elide work and so
  // determinism can be compared across pool sizes.
  return result.metrics.completed() * 1000003ULL +
         result.max_backlog * 101ULL + result.metrics.rejected();
}

void run() {
  bench::print_banner(
      "E15 / bench_trial_scaling (engineering)",
      "Monte-Carlo trial runner: throughput vs threads; determinism across "
      "parallelism",
      "near-linear scaling to physical cores; identical digests at every "
      "pool size");

  constexpr std::size_t kTrialCount = 64;
  const std::function<std::uint64_t(std::uint64_t, std::size_t)> trial =
      [](std::uint64_t seed, std::size_t) { return one_trial(seed); };

  std::uint64_t reference_digest = 0;
  report::Table table({"threads", "seconds", "trials/s", "speedup",
                       "digest matches serial?"});
  double serial_seconds = 0.0;
  const unsigned hardware =
      std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> pool_sizes = {1, 2, 4};
  if (hardware > 4) pool_sizes.push_back(hardware);

  for (const unsigned threads : pool_sizes) {
    parallel::ThreadPool pool(threads);
    obs::ObsTimer timer("bench.trial_batch", nullptr, threads);
    const auto results = parallel::run_trials<std::uint64_t>(
        pool, kTrialCount, /*master_seed=*/15, trial);
    const double seconds = timer.stop();
    std::uint64_t digest = 0;
    for (const std::uint64_t r : results) digest = digest * 31 + r;
    if (threads == 1) {
      reference_digest = digest;
      serial_seconds = seconds;
    }
    table.row()
        .cell(threads)
        .cell(seconds, 3)
        .cell(static_cast<double>(kTrialCount) / seconds, 1)
        .cell(serial_seconds > 0 ? serial_seconds / seconds : 1.0, 2)
        .cell(digest == reference_digest ? "yes" : "NO");
  }
  bench::emit(table);
  std::cout << "\nDetected hardware threads: " << hardware
            << ".  Speedup is bounded by physical cores — on a single-core "
               "host the table verifies only the determinism contract.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  run();
  return 0;
}
