// Experiment E16 — migration vs replication (the paper vs its predecessor
// [34], PPoPP '23).
//
// Three ways out of the d = 1 impossibility:
//   1. none        — static d = 1: rejects a constant fraction forever.
//   2. migration   — [34]'s relaxation: keep d = 1 but move chunks from
//                    overloaded to underloaded servers.  Rejections decay
//                    to ~0 over a convergence period that shrinks as the
//                    migration budget grows; every migration is real data
//                    movement in a production store.
//   3. replication — this paper's approach (greedy, d = 2): clean from
//                    step one, zero data movement, at the cost of 2x
//                    storage.
//
// Part A shows the windowed rejection-rate trajectories side by side.
// Part B sweeps the migration budget: steady-state rejection and total
// chunks moved — the storage-vs-bandwidth trade-off frontier against the
// replication row.
#include <iostream>
#include <memory>

#include "common.hpp"
#include "core/timeseries.hpp"
#include "policies/factory.hpp"
#include "policies/migrating.hpp"
#include "report/table.hpp"
#include "workloads/repeated_set.hpp"
#include "workloads/trace.hpp"

namespace {

using namespace rlb;

constexpr std::size_t kM = 1024;
constexpr unsigned kG = 2;
constexpr std::size_t kSteps = 400;

struct Run {
  core::SeriesRecorder series;
  std::uint64_t migrations = 0;
};

Run run_policy(const std::string& name, std::size_t budget,
               const workloads::Trace& trace) {
  policies::PolicyConfig config;
  config.servers = kM;
  config.replication = 2;
  config.processing_rate = kG;
  config.queue_capacity = 11;
  config.migration_budget = budget;
  config.seed = 16001;
  auto balancer = policies::make_policy(name, config);

  workloads::TraceWorkload workload(trace);
  Run run;
  core::SimConfig sim;
  sim.steps = kSteps;
  sim.recorder = &run.series;
  (void)core::simulate(*balancer, workload, sim);
  if (const auto* migrating =
          dynamic_cast<const policies::MigratingBalancer*>(balancer.get())) {
    run.migrations = migrating->migrations_performed();
  }
  return run;
}

void run() {
  bench::print_banner(
      "E16 / bench_migration (the [34] relaxation vs this paper)",
      "d = 1 is hopeless statically; movable chunks ([34]) converge to low "
      "rejection; replication (this paper) is clean immediately with zero "
      "data movement",
      "static row flat and high; migration rows decay toward 0 faster with "
      "budget; greedy d = 2 row at ~0 from the first window");

  workloads::RepeatedSetWorkload source(kM, 1ULL << 40, 16000,
                                        /*shuffle_each_step=*/false);
  const workloads::Trace trace = workloads::Trace::record(source, kSteps);

  std::cout << "\nA: rejection rate per 50-step window (identical trace).\n";
  struct Row {
    std::string label;
    Run run;
  };
  std::vector<Row> rows;
  rows.push_back({"d=1 static", run_policy("migrating-d1", 0, trace)});
  rows.push_back({"d=1 + migration (budget 1)",
                  run_policy("migrating-d1", 1, trace)});
  rows.push_back({"d=1 + migration (budget 4)",
                  run_policy("migrating-d1", 4, trace)});
  rows.push_back({"d=1 + migration (budget 32)",
                  run_policy("migrating-d1", 32, trace)});
  rows.push_back({"d=2 greedy (this paper)", run_policy("greedy", 0, trace)});

  std::vector<std::string> headers = {"policy"};
  for (std::size_t end = 49; end < kSteps; end += 50) {
    headers.push_back("steps " + std::to_string(end - 49) + "-" +
                      std::to_string(end));
  }
  headers.push_back("migrations");
  report::Table table(headers);
  for (const Row& row : rows) {
    table.row().cell(row.label);
    for (std::size_t end = 49; end < kSteps; end += 50) {
      table.cell_sci(row.run.series.windowed_rejection_rate(end, 50));
    }
    table.cell(row.run.migrations);
  }
  bench::emit(table);

  std::cout << "\nB: migration budget sweep — steady state (last 100 steps) "
               "vs data moved.\n";
  report::Table sweep({"budget/step", "steady-state rejection",
                       "total migrations", "migrations per chunk"});
  for (const std::size_t budget : {0u, 1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const Run run = run_policy("migrating-d1", budget, trace);
    sweep.row()
        .cell(static_cast<std::uint64_t>(budget))
        .cell_sci(run.series.windowed_rejection_rate(kSteps - 1, 100))
        .cell(run.migrations)
        .cell(static_cast<double>(run.migrations) / static_cast<double>(kM),
              2);
  }
  bench::emit(sweep);
  std::cout << "\nReading guide: migration buys its rejections back with "
               "data movement and a warm-up window; replication (row 4 of "
               "part A) needs neither — the trade the paper's introduction "
               "frames.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  run();
  return 0;
}
