// Experiment E13 — ablations of the design choices DESIGN.md calls out.
//
// A: delayed cuckoo routing with its mechanisms removed (no P-routing, no
//    carry-over queues, stash sweep), at and below the design point.  The
//    honest headline: BELOW the design point (per-queue drain 1/step) the
//    Q-only variant — which is just backlog-greedy — rejects LESS, because
//    adaptivity beats a precomputed assignment when drain is scarce; AT the
//    design point both are clean and only the cuckoo variant carries the
//    deterministic per-step burst cap (Lemma 4.5) and the q = Θ(log log m)
//    guarantee.  This is exactly the paper's trade: a stronger worst-case
//    promise bought with a constant-factor larger g.
// B: greedy overflow semantics — the §3 "dump the queue" rule vs rejecting
//    only the arrival, measured where overflows actually occur (d = 1).
// C: Lemma 4.2's three-group split vs direct capacitated matching — max
//    per-server load, stash use, construction time.
// D: threshold routing probe cost vs guarantee, sweeping T.
// E: LEFT[d] grouped placement vs plain greedy — max backlog across m.
// F: the §2 "third knob" — the periodic flush's latency-vs-rejection trade,
//    made visible by running at criticality (g = 1).
#include <iostream>

#include "common.hpp"
#include "cuckoo/capacitated.hpp"
#include "cuckoo/offline_assignment.hpp"
#include "obs/obs.hpp"
#include "policies/delayed_cuckoo.hpp"
#include "policies/factory.hpp"
#include "report/table.hpp"
#include "workloads/repeated_set.hpp"

namespace {

using namespace rlb;

constexpr std::size_t kM = 1024;
constexpr std::size_t kSteps = 200;
constexpr std::size_t kTrials = 6;

void part_a() {
  std::cout << "\nA: delayed cuckoo variants (m = " << kM
            << ", repeated workload).\n";
  report::Table table({"variant", "g", "q/queue", "rejection(pooled)",
                       "avg_latency", "max_backlog"});
  struct Variant {
    const char* name;
    unsigned g;
    bool cuckoo;
    bool carry;
    std::size_t stash;
  };
  const Variant variants[] = {
      {"full (paper)", 8, true, true, 4},
      {"full, tight g", 4, true, true, 4},
      {"no P-routing (Q-only)", 8, false, true, 4},
      {"no P-routing, tight g", 4, false, true, 4},
      {"no carry-over", 8, true, false, 4},
      {"stash 0", 8, true, true, 0},
      {"stash 1", 8, true, true, 1},
  };
  for (const Variant& variant : variants) {
    const bench::BalancerFactory make_balancer =
        [variant](std::uint64_t seed) {
          policies::DelayedCuckooConfig config;
          config.servers = kM;
          config.processing_rate = variant.g;
          config.use_cuckoo_routing = variant.cuckoo;
          config.carry_over_queues = variant.carry;
          config.stash_per_group = variant.stash;
          config.seed = seed;
          return std::make_unique<policies::DelayedCuckooBalancer>(config);
        };
    const bench::WorkloadFactory make_workload = [](std::uint64_t seed) {
      return std::make_unique<workloads::RepeatedSetWorkload>(
          kM, 1ULL << 40, stats::derive_seed(seed, 1));
    };
    core::SimConfig sim;
    sim.steps = kSteps;
    const bench::TrialAggregate agg = bench::run_trials(
        kTrials, 13000 + variant.g + (variant.cuckoo ? 100 : 0),
        make_balancer, make_workload, sim);
    // Probe one instance for the derived q.
    policies::DelayedCuckooConfig probe;
    probe.servers = kM;
    probe.processing_rate = variant.g;
    probe.use_cuckoo_routing = variant.cuckoo;
    probe.carry_over_queues = variant.carry;
    probe.seed = 1;
    const std::size_t q =
        policies::DelayedCuckooBalancer(probe).queue_capacity();
    table.row()
        .cell(variant.name)
        .cell(variant.g)
        .cell(static_cast<std::uint64_t>(q))
        .cell_sci(agg.pooled_rejection_rate())
        .cell(agg.average_latency.mean())
        .cell(agg.max_backlog.mean(), 1);
  }
  bench::emit(table);
  std::cout << "  Note the tight-g inversion: Q-only (greedy) out-rejects "
               "the full algorithm when drain is scarce — the cuckoo "
               "machinery buys worst-case structure, not raw throughput.\n";
}

void part_b() {
  std::cout << "\nB: greedy overflow semantics at d = 1 (where overflows "
               "happen), m = "
            << kM << ", g = 2, q = 8.\n";
  report::Table table({"overflow rule", "rejection(pooled)", "avg_latency",
                       "dropped-from-queue share"});
  for (const auto mode : {policies::OverflowPolicy::kRejectArrival,
                          policies::OverflowPolicy::kDumpQueue}) {
    const bench::BalancerFactory make_balancer = [mode](std::uint64_t seed) {
      policies::PolicyConfig config;
      config.servers = kM;
      config.processing_rate = 2;
      config.queue_capacity = 8;
      config.overflow = mode;
      config.seed = seed;
      return policies::make_policy("greedy-d1", config);
    };
    const bench::WorkloadFactory make_workload = [](std::uint64_t seed) {
      return std::make_unique<workloads::RepeatedSetWorkload>(
          kM, 1ULL << 40, stats::derive_seed(seed, 2));
    };
    core::SimConfig sim;
    sim.steps = kSteps;
    const bench::TrialAggregate agg = bench::run_trials(
        kTrials, 13100, make_balancer, make_workload, sim);
    table.row()
        .cell(mode == policies::OverflowPolicy::kDumpQueue
                  ? "dump queue (paper §3)"
                  : "reject arrival")
        .cell_sci(agg.pooled_rejection_rate())
        .cell(agg.average_latency.mean())
        .cell("-");
  }
  bench::emit(table);
}

void part_c() {
  std::cout << "\nC: Lemma 4.2 three-group split vs direct capacitated "
               "matching (m items -> m servers).\n";
  report::Table table({"m", "method", "max/server", "stash used",
                       "construct us"});
  for (const std::size_t m : {1024u, 8192u}) {
    stats::Rng rng(13);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> choices;
    for (std::size_t i = 0; i < m; ++i) {
      auto a = static_cast<std::uint32_t>(rng.next_below(m));
      auto b = static_cast<std::uint32_t>(rng.next_below(m));
      while (b == a) b = static_cast<std::uint32_t>(rng.next_below(m));
      choices.emplace_back(a, b);
    }
    auto measure = [&](const char* name, auto&& fn) {
      obs::ObsTimer timer(name);
      const cuckoo::OfflineAssignment result = fn();
      const auto micros = static_cast<std::int64_t>(timer.stop() * 1e6);
      std::uint32_t max_count = 0;
      for (const std::uint32_t c : result.per_server) {
        max_count = std::max(max_count, c);
      }
      table.row()
          .cell(static_cast<std::uint64_t>(m))
          .cell(name)
          .cell(max_count)
          .cell(static_cast<std::uint64_t>(result.stash_used))
          .cell(static_cast<std::int64_t>(micros));
    };
    measure("3-group split (paper)",
            [&] { return cuckoo::assign_offline(choices, m, 4); });
    measure("capacitated c=2",
            [&] { return cuckoo::assign_offline_capacitated(choices, m, 2); });
    measure("capacitated c=3",
            [&] { return cuckoo::assign_offline_capacitated(choices, m, 3); });
  }
  bench::emit(table);
}

void part_d() {
  std::cout << "\nD: threshold routing probe cost vs guarantee (m = " << kM
            << ", g = 2, repeated workload).\n";
  report::Table table({"policy", "T", "rejection(pooled)", "avg_latency"});
  for (const std::uint32_t threshold : {1u, 2u, 4u}) {
    const bench::BalancerFactory make_balancer =
        [threshold](std::uint64_t seed) {
          policies::PolicyConfig config;
          config.servers = kM;
          config.processing_rate = 2;
          config.queue_capacity = 11;
          config.threshold = threshold;
          config.seed = seed;
          return policies::make_policy("threshold", config);
        };
    const bench::WorkloadFactory make_workload = [](std::uint64_t seed) {
      return std::make_unique<workloads::RepeatedSetWorkload>(
          kM, 1ULL << 40, stats::derive_seed(seed, 3));
    };
    core::SimConfig sim;
    sim.steps = kSteps;
    const bench::TrialAggregate agg = bench::run_trials(
        kTrials, 13200 + threshold, make_balancer, make_workload, sim);
    table.row()
        .cell("threshold")
        .cell(threshold)
        .cell_sci(agg.pooled_rejection_rate())
        .cell(agg.average_latency.mean());
  }
  {
    const bench::BalancerFactory make_balancer = [](std::uint64_t seed) {
      policies::PolicyConfig config;
      config.servers = kM;
      config.processing_rate = 2;
      config.queue_capacity = 11;
      config.seed = seed;
      return policies::make_policy("greedy", config);
    };
    const bench::WorkloadFactory make_workload = [](std::uint64_t seed) {
      return std::make_unique<workloads::RepeatedSetWorkload>(
          kM, 1ULL << 40, stats::derive_seed(seed, 3));
    };
    core::SimConfig sim;
    sim.steps = kSteps;
    const bench::TrialAggregate agg = bench::run_trials(
        kTrials, 13250, make_balancer, make_workload, sim);
    table.row()
        .cell("greedy (all-d probes)")
        .cell("-")
        .cell_sci(agg.pooled_rejection_rate())
        .cell(agg.average_latency.mean());
  }
  bench::emit(table);
}

void part_e() {
  std::cout << "\nE: LEFT[d] grouped placement vs plain greedy — max backlog "
               "(g = 2, repeated workload).\n";
  report::Table table({"m", "greedy max backlog", "greedy-left max backlog"});
  for (const std::size_t m : {1024u, 4096u, 16384u}) {
    auto run = [&](const std::string& name) {
      const bench::BalancerFactory make_balancer = [&, name](std::uint64_t seed) {
        policies::PolicyConfig config;
        config.servers = m;
        config.processing_rate = 2;
        config.queue_capacity = 32;
        config.seed = seed;
        return policies::make_policy(name, config);
      };
      const bench::WorkloadFactory make_workload = [m](std::uint64_t seed) {
        return std::make_unique<workloads::RepeatedSetWorkload>(
            m, 1ULL << 40, stats::derive_seed(seed, 4));
      };
      core::SimConfig sim;
      sim.steps = 150;
      return bench::run_trials(kTrials, 13300 + m, make_balancer,
                               make_workload, sim);
    };
    const auto greedy = run("greedy");
    const auto left = run("greedy-left");
    table.row()
        .cell(static_cast<std::uint64_t>(m))
        .cell(greedy.max_backlog.mean(), 2)
        .cell(left.max_backlog.mean(), 2);
  }
  bench::emit(table);
}

void part_f() {
  std::cout << "\nF: the third knob (§2) — periodic flush at criticality.  "
               "g = 1 (100% utilization, OUTSIDE every theorem's regime): "
               "backlog drifts like a random walk; flushing trades "
               "rejections for latency.\n";
  report::Table table({"flush_every", "rejection(pooled)", "avg_latency",
                       "max_latency", "mean_backlog"});
  for (const std::size_t flush_every : {0u, 25u, 100u}) {
    const bench::BalancerFactory make_balancer = [](std::uint64_t seed) {
      policies::PolicyConfig config;
      config.servers = kM;
      config.replication = 2;
      config.processing_rate = 1;  // critical load
      config.queue_capacity = 64;
      config.seed = seed;
      return policies::make_policy("greedy", config);
    };
    const bench::WorkloadFactory make_workload = [](std::uint64_t seed) {
      return std::make_unique<workloads::RepeatedSetWorkload>(
          kM, 1ULL << 40, stats::derive_seed(seed, 6));
    };
    core::SimConfig sim;
    sim.steps = 400;
    sim.flush_every = flush_every;
    const bench::TrialAggregate agg = bench::run_trials(
        kTrials, 13400 + flush_every, make_balancer, make_workload, sim);
    table.row()
        .cell(flush_every == 0 ? "never" : std::to_string(flush_every))
        .cell_sci(agg.pooled_rejection_rate())
        .cell(agg.average_latency.mean())
        .cell(agg.max_latency.mean(), 1)
        .cell(agg.mean_backlog.mean());
  }
  bench::emit(table);
  std::cout << "  In-regime (g >= 2) the flush never fires on anything at "
               "laptop scale — its role in Theorem 3.1 is purely to cap the "
               "damage of 1/poly(m)-probability escapes from the safe "
               "distribution.  At criticality its latency-vs-rejection "
               "trade is visible directly.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  bench::print_banner(
      "E13 / bench_ablations",
      "design-choice ablations: P-routing, carry-over, stash size, overflow "
      "rule, split vs capacitated matching, probe thresholds, LEFT[d]",
      "each mechanism's contribution isolated; see per-part notes");
  part_a();
  part_b();
  part_c();
  part_d();
  part_e();
  part_f();
  return 0;
}
