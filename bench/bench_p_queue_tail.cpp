// Experiment E8 — Lemma 4.8: P-queue arrival concentration.
//
// For any P_j and any in-phase interval of length ℓ,
//   Pr[ arrivals to P_j over the interval >= g·ℓ/4 ] <= e^{-ℓ}.
// We instrument DelayedCuckooBalancer's per-step P arrivals, slide windows
// of every length ℓ over a long run, and compare the empirical exceedance
// frequency (per server per window position) against e^{-ℓ}.
//
// Workload: 70% hot / 30% fresh mix — reappearances dominate, so the P
// queues see real traffic; windows that cross phase boundaries are skipped
// (the lemma is stated within a phase).
#include <cmath>
#include <deque>
#include <iostream>

#include "common.hpp"
#include "policies/delayed_cuckoo.hpp"
#include "report/table.hpp"
#include "workloads/mixed.hpp"

namespace {

using namespace rlb;

void run() {
  bench::print_banner(
      "E8 / bench_p_queue_tail (Lemma 4.8)",
      "Pr[P_j receives >= g*l/4 arrivals over any l-step in-phase window] "
      "<= e^{-l}",
      "empirical exceedance column <= the e^{-l} bound column for every l "
      "(typically far below it)");

  constexpr std::size_t kM = 2048;
  constexpr unsigned kG = 16;  // threshold g*l/4 = 4*l
  constexpr std::size_t kSteps = 400;
  const std::size_t max_window = 6;

  policies::DelayedCuckooConfig config;
  config.servers = kM;
  config.processing_rate = kG;
  config.phase_length = 8;  // long phases → many in-phase windows
  config.queue_capacity = 32;
  config.seed = 31;
  policies::DelayedCuckooBalancer balancer(config);
  workloads::MixedWorkload workload(kM, 0.7, 31);

  // exceed[l] / samples[l]: windows of length l where some fixed server's
  // P arrivals reached g*l/4.  Each (server, window-position) is a sample.
  // max_sum[l] records the worst windowed sum seen, to show the margin to
  // the threshold even when exceedances are zero.
  std::vector<std::uint64_t> exceed(max_window + 1, 0);
  std::vector<std::uint64_t> samples(max_window + 1, 0);
  std::vector<std::uint64_t> max_sum(max_window + 1, 0);

  std::deque<std::vector<std::uint32_t>> history;  // recent per-step arrivals
  core::Metrics metrics;
  std::vector<core::ChunkId> batch;
  std::size_t steps_into_phase = 0;

  for (core::Time t = 0; t < static_cast<core::Time>(kSteps); ++t) {
    if (steps_into_phase == config.phase_length) {
      steps_into_phase = 0;
      history.clear();  // windows must not straddle phase boundaries
    }
    workload.fill_step(t, batch);
    balancer.step(t, batch, metrics);
    history.push_back(balancer.p_arrivals_this_step());
    if (history.size() > max_window) history.pop_front();
    ++steps_into_phase;

    // Evaluate every window ending at this step.
    for (std::size_t window = 1; window <= history.size(); ++window) {
      const std::uint64_t threshold = static_cast<std::uint64_t>(kG) *
                                      window / 4;  // g*l/4
      std::vector<std::uint64_t> sums(kM, 0);
      for (std::size_t back = 0; back < window; ++back) {
        const auto& arrivals = history[history.size() - 1 - back];
        for (std::size_t s = 0; s < kM; ++s) sums[s] += arrivals[s];
      }
      for (std::size_t s = 0; s < kM; ++s) {
        ++samples[window];
        if (sums[s] >= threshold) ++exceed[window];
        max_sum[window] = std::max(max_sum[window], sums[s]);
      }
    }
  }

  report::Table table({"l (window)", "threshold g*l/4", "samples",
                       "exceedances", "max windowed sum", "empirical Pr",
                       "bound e^-l", "ok?"});
  for (std::size_t window = 1; window <= max_window; ++window) {
    const double empirical =
        samples[window]
            ? static_cast<double>(exceed[window]) /
                  static_cast<double>(samples[window])
            : 0.0;
    const double bound = std::exp(-static_cast<double>(window));
    table.row()
        .cell(static_cast<std::uint64_t>(window))
        .cell(static_cast<std::uint64_t>(kG * window / 4))
        .cell(samples[window])
        .cell(exceed[window])
        .cell(max_sum[window])
        .cell_sci(empirical)
        .cell_sci(bound)
        .cell(empirical <= bound ? "yes" : "NO");
  }
  bench::emit(table);
  std::cout << "\nReading guide: Lemma 4.5 makes per-step P arrivals <= "
               "3+stash deterministically, so exceedances need sustained "
               "near-worst-case cuckoo assignments — the lemma says that is "
               "exponentially unlikely in the window length, and the "
               "empirical column confirms it.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  run();
  return 0;
}
