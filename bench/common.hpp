// Bench-binary facade over the experiment harness (src/harness/).
//
// The aggregation and output machinery lives in the tested rlb_harness
// library; this header just pulls it into the rlb::bench namespace the
// experiment binaries use.
#pragma once

#include "harness/experiment.hpp"
#include "harness/output.hpp"

namespace rlb::bench {

using harness::BalancerFactory;
using harness::TrialAggregate;
using harness::WorkloadFactory;

using harness::emit;
using harness::init_output;
using harness::json_enabled;
using harness::json_value;
using harness::print_banner;
using harness::run_trials;
using harness::write_json;

/// Fault-injection overrides shared by the experiment binaries:
///   --fail-rate <p>    per-server per-step crash probability in [0, 1]
///   --mttr <steps>     mean time to recovery in steps (0 = never recover)
/// with RLB_FAIL_RATE / RLB_MTTR environment fallbacks.  When either is
/// given (`any`), fault-aware benches replace their built-in sweep with the
/// single requested operating point.
struct FaultFlags {
  bool any = false;
  double fail_rate = 0.0;
  double mttr = 0.0;
};

/// Parse the fault flags from argv (env vars first, flags override).
/// Unparseable values warn on stderr and keep the defaults.
FaultFlags parse_fault_flags(int argc, char** argv);

}  // namespace rlb::bench
