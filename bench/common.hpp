// Bench-binary facade over the experiment harness (src/harness/).
//
// The aggregation and output machinery lives in the tested rlb_harness
// library; this header just pulls it into the rlb::bench namespace the
// experiment binaries use.
#pragma once

#include "harness/experiment.hpp"
#include "harness/output.hpp"

namespace rlb::bench {

using harness::BalancerFactory;
using harness::TrialAggregate;
using harness::WorkloadFactory;

using harness::emit;
using harness::init_output;
using harness::print_banner;
using harness::run_trials;

}  // namespace rlb::bench
