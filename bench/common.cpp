#include "common.hpp"

#include <cstdlib>
#include <iostream>
#include <string>

namespace rlb::bench {

namespace {

bool parse_nonnegative(const std::string& text, double& out) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size() || value < 0.0) return false;
    out = value;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

FaultFlags parse_fault_flags(int argc, char** argv) {
  FaultFlags flags;
  // Environment first, flags override (same contract as init_output).
  if (const char* env = std::getenv("RLB_FAIL_RATE")) {
    if (parse_nonnegative(env, flags.fail_rate) && flags.fail_rate <= 1.0) {
      flags.any = true;
    } else {
      std::cerr << "rlb: ignoring bad RLB_FAIL_RATE '" << env << "'\n";
      flags.fail_rate = 0.0;
    }
  }
  if (const char* env = std::getenv("RLB_MTTR")) {
    if (parse_nonnegative(env, flags.mttr)) {
      flags.any = true;
    } else {
      std::cerr << "rlb: ignoring bad RLB_MTTR '" << env << "'\n";
      flags.mttr = 0.0;
    }
  }
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--fail-rate" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (parse_nonnegative(value, flags.fail_rate) &&
          flags.fail_rate <= 1.0) {
        flags.any = true;
      } else {
        std::cerr << "rlb: ignoring bad --fail-rate '" << value
                  << "' (want a probability in [0, 1])\n";
        flags.fail_rate = 0.0;
      }
    } else if (flag == "--mttr" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (parse_nonnegative(value, flags.mttr)) {
        flags.any = true;
      } else {
        std::cerr << "rlb: ignoring bad --mttr '" << value
                  << "' (want steps >= 0)\n";
        flags.mttr = 0.0;
      }
    } else if (flag == "--fail-rate" || flag == "--mttr") {
      std::cerr << "rlb: " << flag << " requires a value\n";
    }
  }
  return flags;
}

}  // namespace rlb::bench
