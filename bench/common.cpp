#include "common.hpp"

// All functionality lives in rlb_harness; this translation unit anchors the
// rlb_bench_common target.
namespace rlb::bench {}
