// Experiment E12 — micro-benchmarks (google-benchmark).
//
// Throughput of the hot paths: placement hashing, routing decisions for
// each policy, the per-step offline cuckoo assignment, and the online
// cuckoo table.  These bound how large an (m, steps, trials) sweep the
// experiment harness can afford, and document the constant-factor cost of
// delayed cuckoo routing's extra machinery relative to greedy.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/placement.hpp"
#include "core/simulator.hpp"
#include "cuckoo/cuckoo_table.hpp"
#include "cuckoo/offline_assignment.hpp"
#include "policies/delayed_cuckoo.hpp"
#include "policies/factory.hpp"
#include "policies/greedy.hpp"
#include "workloads/repeated_set.hpp"

namespace {

using namespace rlb;

void BM_PlacementChoices(benchmark::State& state) {
  const core::Placement placement(
      static_cast<std::size_t>(state.range(0)), 2, 42);
  core::ChunkId x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement.choices(x++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PlacementChoices)->Arg(1024)->Arg(65536);

void BM_GreedyStep(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  auto config = policies::GreedyBalancer::theorem_config(m, 4, 4, 7);
  policies::GreedyBalancer balancer(config);
  workloads::RepeatedSetWorkload workload(m, 1ULL << 30, 7);
  std::vector<core::ChunkId> batch;
  core::Metrics metrics;
  core::Time t = 0;
  for (auto _ : state) {
    workload.fill_step(t, batch);
    balancer.step(t, batch, metrics);
    ++t;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m));
}
BENCHMARK(BM_GreedyStep)->Arg(1024)->Arg(16384);

void BM_DelayedCuckooStep(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  policies::DelayedCuckooConfig config;
  config.servers = m;
  config.processing_rate = 16;
  config.seed = 9;
  policies::DelayedCuckooBalancer balancer(config);
  workloads::RepeatedSetWorkload workload(m, 1ULL << 30, 9);
  std::vector<core::ChunkId> batch;
  core::Metrics metrics;
  core::Time t = 0;
  for (auto _ : state) {
    workload.fill_step(t, batch);
    balancer.step(t, batch, metrics);
    ++t;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m));
}
BENCHMARK(BM_DelayedCuckooStep)->Arg(1024)->Arg(16384);

void BM_OfflineAssignment(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(13);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> choices;
  for (std::size_t i = 0; i < m; ++i) {
    auto a = static_cast<std::uint32_t>(rng.next_below(m));
    auto b = static_cast<std::uint32_t>(rng.next_below(m));
    while (b == a) b = static_cast<std::uint32_t>(rng.next_below(m));
    choices.emplace_back(a, b);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cuckoo::assign_offline(choices, m, 4));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m));
}
BENCHMARK(BM_OfflineAssignment)->Arg(1024)->Arg(16384);

void BM_CuckooTableInsert(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  std::uint64_t key = 0;
  for (auto _ : state) {
    state.PauseTiming();
    cuckoo::CuckooTable table(m, 4, key);
    state.ResumeTiming();
    for (std::size_t i = 0; i < m / 3; ++i) {
      benchmark::DoNotOptimize(table.insert(key++));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m / 3));
}
BENCHMARK(BM_CuckooTableInsert)->Arg(3072)->Arg(49152);

void BM_FullSimulation(benchmark::State& state) {
  // End-to-end: 100 steps of the E11 matrix's hardest cell.
  const std::size_t m = 1024;
  for (auto _ : state) {
    policies::PolicyConfig config;
    config.servers = m;
    config.processing_rate = 4;
    config.seed = 17;
    auto balancer = policies::make_policy("delayed-cuckoo", config);
    workloads::RepeatedSetWorkload workload(m, 1ULL << 30, 17);
    core::SimConfig sim;
    sim.steps = 100;
    benchmark::DoNotOptimize(core::simulate(*balancer, workload, sim));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m) * 100);
}
BENCHMARK(BM_FullSimulation);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): translate the repo-wide
// `--json <path>` flag (see harness/output.hpp) into google-benchmark's
// native JSON reporter so bench_micro emits machine-readable results the
// same way the table-based experiment binaries do.
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::vector<std::string> storage;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  storage.reserve(2);
  for (int i = 0; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json" && i + 1 < argc) {
      storage.push_back(std::string("--benchmark_out=") + argv[++i]);
      storage.push_back("--benchmark_out_format=json");
      args.push_back(storage[storage.size() - 2].data());
      args.push_back(storage[storage.size() - 1].data());
      continue;
    }
    args.push_back(argv[i]);
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
