// Experiment E7 — Lemma 5.3 / Corollary 5.4: time-step-isolated strategies
// fail.
//
// A strategy whose per-step routing ignores history cannot avoid sending
// Ω(log log m) average load per step to some server, even when the SAME
// m chunks are requested every step — so with g = O(1) its queues grow and
// with bounded q it rejects Ω(1)·poly-fraction of traffic.
//
// Part A: head-to-head rejection rates of greedy (history-aware) vs
// random-of-d and per-step-greedy (isolated) vs round-robin (stateful but
// backlog-blind) on the identical repeated trace.
// Part B: the Lemma 5.3 load quantity itself — for random-of-d the expected
// per-step arrivals at server s are Σ_x 1/d over chunks hashing to s; we
// compute max_s of this directly from the placement and show it grows with
// m (it must exceed any constant g).
#include <iostream>

#include "common.hpp"
#include "core/placement.hpp"
#include "parallel/trial_runner.hpp"
#include "policies/factory.hpp"
#include "report/table.hpp"
#include "stats/summary.hpp"
#include "workloads/repeated_set.hpp"
#include "workloads/trace.hpp"

namespace {

using namespace rlb;

void part_a() {
  constexpr std::size_t kSteps = 250;
  constexpr std::size_t kTrials = 6;
  constexpr unsigned kG = 2;
  constexpr std::size_t kQ = 8;

  report::Table table({"m", "policy", "isolated?", "rejection(pooled)",
                       "avg_latency", "mean_backlog"});
  for (const std::size_t m : {256u, 1024u, 4096u}) {
    for (const std::string name :
         {"greedy", "per-step-greedy", "random-of-d", "round-robin"}) {
      const bench::BalancerFactory make_balancer = [=](std::uint64_t seed) {
        policies::PolicyConfig config;
        config.servers = m;
        config.replication = 2;
        config.processing_rate = kG;
        config.queue_capacity = kQ;
        config.seed = seed;
        return policies::make_policy(name, config);
      };
      const bench::WorkloadFactory make_workload = [m](std::uint64_t seed) {
        return std::make_unique<workloads::RepeatedSetWorkload>(
            m, 1ULL << 40, stats::derive_seed(seed, 4),
            /*shuffle_each_step=*/false);
      };
      core::SimConfig sim;
      sim.steps = kSteps;
      const bench::TrialAggregate agg = bench::run_trials(
          kTrials, 7000 + m, make_balancer, make_workload, sim);
      const bool isolated =
          name == "per-step-greedy" || name == "random-of-d";
      table.row()
          .cell(static_cast<std::uint64_t>(m))
          .cell(name)
          .cell(isolated ? "yes" : "no")
          .cell_sci(agg.pooled_rejection_rate())
          .cell(agg.average_latency.mean())
          .cell(agg.mean_backlog.mean());
    }
  }
  bench::emit(table);
}

void part_b() {
  std::cout << "\nLemma 5.3 load quantity for random-of-d: max over servers "
               "of expected arrivals per step (sum of 1/d over chunks "
               "hashing there):\n";
  constexpr std::size_t kTrials = 16;
  report::Table table({"m", "max expected arrivals/step (mean over seeds)",
                       "grows with m?"});
  double prev = 0.0;
  for (const std::size_t m : {256u, 1024u, 4096u, 16384u, 65536u}) {
    const std::function<double(std::uint64_t, std::size_t)> trial =
        [m](std::uint64_t seed, std::size_t) {
          const core::Placement placement(m, 2, seed);
          std::vector<double> expected(m, 0.0);
          for (core::ChunkId x = 0; x < m; ++x) {
            for (const core::ServerId s : placement.choices(x)) {
              expected[s] += 0.5;  // 1/d with d = 2
            }
          }
          double max_load = 0.0;
          for (const double e : expected) max_load = std::max(max_load, e);
          return max_load;
        };
    const auto loads = parallel::run_trials<double>(parallel::default_pool(),
                                                    kTrials, 7700 + m, trial);
    stats::OnlineStats stat;
    for (const double v : loads) stat.add(v);
    table.row()
        .cell(static_cast<std::uint64_t>(m))
        .cell(stat.mean(), 3)
        .cell(prev > 0 && stat.mean() > prev ? "yes" : "-");
    prev = stat.mean();
  }
  bench::emit(table);
  std::cout << "\nReading guide: the column grows without bound (one-choice "
               "max-load scale divided by d), so for ANY constant g the "
               "worst server eventually drowns — Corollary 5.4.  Greedy "
               "avoids this precisely by reacting to backlogs across steps.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  bench::print_banner(
      "E7 / bench_isolated_fails (Lemma 5.3, Corollary 5.4)",
      "time-step-isolated strategies send Omega(log log m) average load to "
      "some server even on a fixed repeated request set",
      "isolated rows reject orders of magnitude more than greedy at every "
      "m; part B's load column grows with m");
  part_a();
  part_b();
  return 0;
}
