// Experiment E4 — Theorem 4.3: delayed cuckoo routing.
//
// With d = 2, constant g, and queues of only Θ(log log m), delayed cuckoo
// routing achieves rejection rate O(1/m^c), max latency O(log log m), and
// expected average latency O(1).
//
// Part A sweeps m over two orders of magnitude on three workloads (fully
// repeated, 30% churn, 50/50 hot-cold mix): rejections stay zero and max
// latency stays on the (tiny) log log m scale.
// Part B is the queue-size head-to-head: at the SAME small queue capacity
// (the cuckoo-derived Θ(log log m) budget), greedy-with-small-queues starts
// rejecting on adversarial traffic as m grows, while delayed cuckoo stays
// clean — the reason Theorem 4.3 beats Theorem 3.1 on queue length.
#include <iostream>

#include "common.hpp"
#include "policies/delayed_cuckoo.hpp"
#include "policies/greedy.hpp"
#include "report/table.hpp"
#include "workloads/mixed.hpp"
#include "workloads/phased_churn.hpp"
#include "workloads/repeated_set.hpp"

namespace {

using namespace rlb;

// g = 8 → each of the four queues drains 2 per step against ~1 arrival per
// server per step: enough slack for the theorem, tight enough that queues
// actually carry load and the latency scale is visible.
constexpr unsigned kG = 8;
constexpr std::size_t kSteps = 250;
constexpr std::size_t kTrials = 6;

bench::WorkloadFactory workload_factory(const std::string& name,
                                        std::size_t m) {
  if (name == "repeated") {
    return [m](std::uint64_t seed) -> std::unique_ptr<core::Workload> {
      return std::make_unique<workloads::RepeatedSetWorkload>(
          m, 1ULL << 40, stats::derive_seed(seed, 1));
    };
  }
  if (name == "churn-30%") {
    return [m](std::uint64_t seed) -> std::unique_ptr<core::Workload> {
      return std::make_unique<workloads::PhasedChurnWorkload>(
          m, 0.3, 4, stats::derive_seed(seed, 2));
    };
  }
  return [m](std::uint64_t seed) -> std::unique_ptr<core::Workload> {
    return std::make_unique<workloads::MixedWorkload>(
        m, 0.5, stats::derive_seed(seed, 3));
  };
}

void part_a() {
  report::Table table({"m", "workload", "phase_len", "q(per queue)",
                       "rejection(pooled)", "avg_latency", "max_latency",
                       "max_backlog"});
  for (const std::size_t m : {256u, 1024u, 4096u, 16384u}) {
    for (const std::string workload_name :
         {"repeated", "churn-30%", "mixed-50%"}) {
      policies::DelayedCuckooConfig probe;
      probe.servers = m;
      probe.processing_rate = kG;
      probe.seed = 1;
      const policies::DelayedCuckooBalancer probe_balancer(probe);
      const std::size_t phase_len = probe_balancer.phase_length();
      const std::size_t q = probe_balancer.queue_capacity();

      const bench::BalancerFactory make_balancer = [m](std::uint64_t seed) {
        policies::DelayedCuckooConfig config;
        config.servers = m;
        config.processing_rate = kG;
        config.seed = seed;
        return std::make_unique<policies::DelayedCuckooBalancer>(config);
      };
      core::SimConfig sim;
      sim.steps = kSteps;
      const bench::TrialAggregate agg =
          bench::run_trials(kTrials, 4000 + m, make_balancer,
                            workload_factory(workload_name, m), sim);
      table.row()
          .cell(static_cast<std::uint64_t>(m))
          .cell(workload_name)
          .cell(static_cast<std::uint64_t>(phase_len))
          .cell(static_cast<std::uint64_t>(q))
          .cell_sci(agg.pooled_rejection_rate())
          .cell(agg.average_latency.mean())
          .cell(agg.max_latency.mean(), 1)
          .cell(agg.max_backlog.mean(), 1);
    }
  }
  bench::emit(table);
}

void part_b() {
  std::cout << "\nHead-to-head at the SAME total queue budget "
               "(cuckoo: 4 queues x q_cuckoo; greedy: one queue of "
               "4*q_cuckoo), repeated workload:\n";
  report::Table table({"m", "policy", "queue_budget", "rejection(pooled)",
                       "max_latency"});
  for (const std::size_t m : {1024u, 4096u, 16384u}) {
    policies::DelayedCuckooConfig probe;
    probe.servers = m;
    probe.processing_rate = kG;
    probe.seed = 1;
    const std::size_t q_cuckoo =
        policies::DelayedCuckooBalancer(probe).queue_capacity();
    const std::size_t budget = 4 * q_cuckoo;

    core::SimConfig sim;
    sim.steps = kSteps;

    const bench::BalancerFactory make_cuckoo = [m](std::uint64_t seed) {
      policies::DelayedCuckooConfig config;
      config.servers = m;
      config.processing_rate = kG;
      config.seed = seed;
      return std::make_unique<policies::DelayedCuckooBalancer>(config);
    };
    // Greedy gets the same total per-server buffer and the same d = 2 and
    // the same g.
    const bench::BalancerFactory make_greedy = [m,
                                                budget](std::uint64_t seed) {
      policies::SingleQueueConfig config;
      config.servers = m;
      config.replication = 2;
      config.processing_rate = kG;
      config.queue_capacity = budget;
      config.seed = seed;
      return std::make_unique<policies::GreedyBalancer>(config);
    };

    for (const auto& [name, factory] :
         {std::pair<std::string, bench::BalancerFactory>{"delayed-cuckoo",
                                                         make_cuckoo},
          std::pair<std::string, bench::BalancerFactory>{"greedy(d=2)",
                                                         make_greedy}}) {
      const bench::TrialAggregate agg = bench::run_trials(
          kTrials, 4500 + m, factory, workload_factory("repeated", m), sim);
      table.row()
          .cell(static_cast<std::uint64_t>(m))
          .cell(name)
          .cell(static_cast<std::uint64_t>(budget))
          .cell_sci(agg.pooled_rejection_rate())
          .cell(agg.max_latency.mean(), 1);
    }
  }
  bench::emit(table);
  std::cout << "\nReading guide: at g = 16 both stay clean at these sizes — "
               "the theorem's separation is that cuckoo's budget NEED only "
               "grow as log log m while greedy provably needs log m in the "
               "worst case; see bench_queue_lower_bound for the growth "
               "curves.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  bench::print_banner(
      "E4 / bench_delayed_cuckoo (Theorem 4.3)",
      "delayed cuckoo routing: d = 2, g = O(1), q = Theta(log log m) gives "
      "rejection O(1/m^c), max latency O(log log m), avg latency O(1)",
      "zero pooled rejections on all workloads and all m; max latency flat/"
      "tiny as m grows 256 -> 16384 while q stays ~4*loglog(m)");
  part_a();
  part_b();
  return 0;
}
