// Experiment E22 — live serving engine throughput/latency.
//
// Runs the full serving stack in one process — net::NetServer on an
// ephemeral loopback port, engine::ServingEngine embedding a policy, and
// closed-loop net::Client worker threads — and reports end-to-end
// throughput, rejection rate, and latency quantiles per (policy, shards)
// configuration.  This is the engine-level companion to the simulator
// experiments: the same policies, measured as microseconds instead of time
// steps (cf. Aktaş et al.'s argument that redundancy-aware routing must be
// judged by served-request latency in a running store).
//
// While each configuration runs, a scraper thread polls engine.snapshot()
// (the same lock-free merge the STATS wire opcode serves) every
// --scrape-ms milliseconds and the run emits the samples as a time-series
// table, so a --json run records how backlog, in-flight depth, and the
// safe-set ratio evolve over the run rather than just the end state.
//
// Flags: --requests <n> per configuration (default 200000), --connections
// <c> client threads (default 4), --concurrency <k> outstanding per
// connection (default 64), --scrape-ms <ms> snapshot period (default 100,
// 0 disables), plus the shared --format/--json/--probes flags.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common.hpp"
#include "engine/engine.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/stats.hpp"
#include "stats/histogram.hpp"
#include "stats/rng.hpp"

namespace {

using namespace rlb;

struct RunResult {
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
  std::uint64_t protocol_errors = 0;
  double elapsed_seconds = 0.0;
  stats::CountingHistogram latency_us{200000};
};

// One in-run engine.snapshot() sample (see the scraper thread below).
struct ScrapeSample {
  std::uint64_t t_ms = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t backlog = 0;
  std::uint64_t inflight = 0;
  std::uint64_t waiting = 0;
  double safe_worst_ratio = 0.0;
  std::uint64_t wire_p99_us = 0;
};

void client_worker(std::uint16_t port, std::uint64_t quota, std::uint64_t seed,
                   std::size_t concurrency, std::uint64_t id_base,
                   RunResult& result) {
  net::Client client;
  try {
    client.connect("127.0.0.1", port);
  } catch (const std::exception& e) {
    std::cerr << "bench_serving: " << e.what() << "\n";
    result.errors += quota;
    return;
  }
  using Clock = std::chrono::steady_clock;
  std::unordered_map<std::uint64_t, Clock::time_point> in_flight;
  stats::Rng rng(seed);
  std::uint64_t next_id = id_base;
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  auto send_one = [&] {
    const std::uint64_t id = next_id++;
    in_flight.emplace(id, Clock::now());
    client.send_request(id, rng.next());
    ++sent;
  };
  try {
    for (std::uint64_t i = 0; i < std::min<std::uint64_t>(concurrency, quota);
         ++i) {
      send_one();
    }
    client.flush();
    // Burst loop: one blocking read, then drain every response already
    // buffered, then top the window back up with a single flush — one
    // write syscall per burst instead of one per request.
    net::ResponseMsg response;
    bool stream_ok = true;
    while (stream_ok && completed < quota && client.read_response(response)) {
      std::size_t burst = 0;
      for (;;) {
        const auto it = in_flight.find(response.request_id);
        if (it == in_flight.end()) {
          ++result.protocol_errors;
          stream_ok = false;
          break;
        }
        const std::uint64_t us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - it->second)
                .count());
        in_flight.erase(it);
        ++completed;
        ++burst;
        if (response.status == net::Status::kOk) {
          ++result.ok;
          result.latency_us.add(us);
        } else if (response.status == net::Status::kReject) {
          ++result.rejected;
        } else {
          ++result.errors;
        }
        if (completed >= quota) break;
        if (!client.poll_buffered_response(response)) break;
      }
      std::size_t refill = 0;
      for (; refill < burst && sent < quota; ++refill) send_one();
      if (refill > 0) client.flush();
    }
  } catch (const std::exception& e) {
    std::cerr << "bench_serving: " << e.what() << "\n";
    ++result.protocol_errors;
  }
  client.close();
}

RunResult run_config(const std::string& policy, std::size_t shards,
                     std::uint64_t requests, std::size_t connections,
                     std::size_t concurrency, std::uint64_t scrape_ms,
                     std::vector<ScrapeSample>* samples) {
  engine::EngineConfig config;
  config.policy = policy;
  config.servers = 64;
  config.replication = 2;
  config.processing_rate = 4;
  config.shards = shards;
  config.seed = 7;

  engine::ServingEngine* engine_raw = nullptr;
  net::ServerConfig net_config;  // ephemeral port
  net_config.max_connections = connections + 8;
  net::NetServer server(net_config,
                        [&engine_raw, &server](std::uint64_t token,
                                               const net::RequestMsg& request) {
                          if (!engine_raw->submit(token, request.request_id,
                                                  request.key)) {
                            net::ResponseMsg msg;
                            msg.request_id = request.request_id;
                            msg.status = net::Status::kError;
                            server.send_response(token, msg);
                          }
                        });
  // Batched submit: one shard-lock + notify per shard per wakeup.
  server.set_request_batch_handler(
      [&engine_raw, &server](const net::ServerRequest* batch,
                             std::size_t count) {
        thread_local std::vector<engine::ServingEngine::SubmitItem> items;
        thread_local std::vector<std::size_t> rejected;
        items.clear();
        rejected.clear();
        items.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          items.push_back({batch[i].conn_token, batch[i].msg.request_id,
                           batch[i].msg.key, batch[i].msg.trace});
        }
        engine_raw->submit_batch(items.data(), count, rejected);
        for (const std::size_t i : rejected) {
          net::ResponseMsg msg;
          msg.request_id = batch[i].msg.request_id;
          msg.status = net::Status::kError;
          server.send_response(batch[i].conn_token, msg);
        }
      });
  engine::ServingEngine engine(
      config, [&server](const engine::EngineResponse& r) {
        net::ResponseMsg msg;
        msg.request_id = r.request_id;
        msg.status = static_cast<net::Status>(r.status);
        msg.server = static_cast<std::uint32_t>(r.server);
        msg.wait_steps = r.wait_steps;
        server.send_response(r.conn_token, msg);
      });
  engine_raw = &engine;
  engine.start();
  server.start();

  std::vector<RunResult> partials(connections);
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();

  // The scraper exercises exactly the path rlb_stat hits over the wire:
  // snapshot() merges shard atomics without taking any engine lock, so the
  // sampling itself should not perturb the run.
  std::atomic<bool> scrape_stop{false};
  std::thread scraper;
  if (scrape_ms > 0 && samples != nullptr) {
    scraper = std::thread([&] {
      while (!scrape_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(scrape_ms));
        const net::StatsSnapshot snapshot = engine.snapshot();
        const net::ShardStats totals = snapshot.totals();
        ScrapeSample sample;
        sample.t_ms = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
        sample.submitted = totals.submitted;
        sample.completed = totals.completed;
        sample.rejected = totals.rejected_total();
        sample.backlog = totals.backlog;
        sample.inflight = totals.inflight;
        sample.waiting = totals.waiting_depth;
        sample.safe_worst_ratio = snapshot.safe_worst_ratio;
        sample.wire_p99_us = snapshot.latency.quantile_us(0.99);
        samples->push_back(sample);
      }
    });
  }

  for (std::size_t w = 0; w < connections; ++w) {
    const std::uint64_t quota =
        requests / connections + (w < requests % connections ? 1 : 0);
    threads.emplace_back([&, w, quota] {
      client_worker(server.port(), quota, 100 + w, concurrency,
                    (static_cast<std::uint64_t>(w) << 40) + 1, partials[w]);
    });
  }
  for (auto& thread : threads) thread.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (scraper.joinable()) {
    scrape_stop.store(true, std::memory_order_relaxed);
    scraper.join();
  }
  engine.stop();
  server.stop();

  RunResult total;
  total.elapsed_seconds = elapsed;
  for (const RunResult& partial : partials) {
    total.ok += partial.ok;
    total.rejected += partial.rejected;
    total.errors += partial.errors;
    total.protocol_errors += partial.protocol_errors;
    total.latency_us.merge(partial.latency_us);
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  std::uint64_t requests = 200000;
  std::size_t connections = 4;
  std::size_t concurrency = 64;
  std::uint64_t scrape_ms = 100;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--requests" && i + 1 < argc) {
      requests = std::stoull(argv[++i]);
    } else if (flag == "--connections" && i + 1 < argc) {
      connections = std::stoull(argv[++i]);
    } else if (flag == "--concurrency" && i + 1 < argc) {
      concurrency = std::stoull(argv[++i]);
    } else if (flag == "--scrape-ms" && i + 1 < argc) {
      scrape_ms = std::stoull(argv[++i]);
    }
  }

  rlb::bench::print_banner(
      "E22 serving engine throughput/latency",
      "the routing policies keep their rejection behaviour when embedded in "
      "a concurrent request router (tentpole of the serving-engine PR)",
      "greedy serves a uniform closed loop with zero rejections and "
      "microsecond-scale p50; more shards raise throughput");
  rlb::bench::json_value("requests", requests);
  rlb::bench::json_value("connections", static_cast<std::uint64_t>(connections));
  rlb::bench::json_value("concurrency", static_cast<std::uint64_t>(concurrency));

  report::Table table({"policy", "shards", "throughput_rps", "reject_rate",
                       "p50_us", "p95_us", "p99_us", "errors",
                       "protocol_errors"});
  report::Table series({"policy", "shards", "t_ms", "submitted", "completed",
                        "rejected", "backlog", "inflight", "waiting",
                        "safe_worst_ratio", "wire_p99_us"});
  const std::vector<std::pair<std::string, std::size_t>> configs = {
      {"greedy", 1}, {"greedy", 4}, {"random-of-d", 4}, {"round-robin", 4}};
  for (const auto& [policy, shards] : configs) {
    std::vector<ScrapeSample> samples;
    const RunResult r = run_config(policy, shards, requests, connections,
                                   concurrency, scrape_ms, &samples);
    for (const ScrapeSample& sample : samples) {
      series.row()
          .cell(policy)
          .cell(static_cast<std::uint64_t>(shards))
          .cell(sample.t_ms)
          .cell(sample.submitted)
          .cell(sample.completed)
          .cell(sample.rejected)
          .cell(sample.backlog)
          .cell(sample.inflight)
          .cell(sample.waiting)
          .cell(sample.safe_worst_ratio, 3)
          .cell(sample.wire_p99_us);
    }
    const std::uint64_t answered = r.ok + r.rejected;
    const double throughput =
        r.elapsed_seconds > 0 ? static_cast<double>(answered) / r.elapsed_seconds
                              : 0.0;
    const double reject_rate =
        answered ? static_cast<double>(r.rejected) /
                       static_cast<double>(answered)
                 : 0.0;
    table.row()
        .cell(policy)
        .cell(static_cast<std::uint64_t>(shards))
        .cell(throughput, 0)
        .cell_sci(reject_rate)
        .cell(r.latency_us.quantile(0.50))
        .cell(r.latency_us.quantile(0.95))
        .cell(r.latency_us.quantile(0.99))
        .cell(r.errors)
        .cell(r.protocol_errors);
  }
  rlb::bench::emit(table);
  if (series.row_count() > 0) {
    std::cout << "\n== snapshot time-series (every " << scrape_ms
              << "ms) ==\n";
    rlb::bench::emit(series);
  }
  return 0;
}
