// Experiment E14 — heterogeneous clusters (extension beyond the paper).
//
// The paper's model gives every server the same processing rate g.  Real
// clusters have stragglers.  This experiment injects a fraction of servers
// running at 1/4 speed and measures which routing signals absorb them:
// backlog-aware greedy reroutes around stragglers automatically (their
// queues stay long, so they stop winning the least-backlog comparison);
// the history-blind policies keep feeding them.
//
// Model note: aggregate capacity stays above aggregate arrivals in every
// row, so any rejection is a routing failure, not an admission problem.
#include <iostream>

#include "common.hpp"
#include "core/timeseries.hpp"
#include "policies/factory.hpp"
#include "policies/single_queue_base.hpp"
#include "report/table.hpp"
#include "workloads/repeated_set.hpp"

namespace {

using namespace rlb;

constexpr std::size_t kM = 1024;
constexpr unsigned kFastRate = 4;
constexpr unsigned kSlowRate = 1;
constexpr std::size_t kSteps = 250;
constexpr std::size_t kTrials = 6;

std::vector<unsigned> rates_with_stragglers(double fraction) {
  std::vector<unsigned> rates(kM, kFastRate);
  const auto stride =
      fraction > 0 ? static_cast<std::size_t>(1.0 / fraction) : kM + 1;
  for (std::size_t s = 0; s < kM; s += stride) rates[s] = kSlowRate;
  return rates;
}

void run() {
  bench::print_banner(
      "E14 / bench_heterogeneous (extension)",
      "stragglers at 1/4 speed vs routing policies; aggregate capacity "
      "stays sufficient",
      "greedy stays clean at every straggler fraction; history-blind "
      "policies degrade as the fraction grows");

  report::Table table({"stragglers", "policy", "rejection(pooled)",
                       "avg_latency", "max_backlog"});
  for (const double fraction : {0.0, 0.1, 0.25}) {
    const std::vector<unsigned> rates = rates_with_stragglers(fraction);
    for (const std::string name :
         {"greedy", "threshold", "random-of-d", "round-robin"}) {
      const bench::BalancerFactory make_balancer =
          [name, rates](std::uint64_t seed) {
            policies::PolicyConfig config;
            config.servers = kM;
            config.replication = 2;
            config.processing_rate = kFastRate;
            config.queue_capacity = 11;
            config.per_server_rate = rates;
            config.threshold = 1;
            config.seed = seed;
            return policies::make_policy(name, config);
          };
      const bench::WorkloadFactory make_workload = [](std::uint64_t seed) {
        return std::make_unique<workloads::RepeatedSetWorkload>(
            kM, 1ULL << 40, stats::derive_seed(seed, 14));
      };
      core::SimConfig sim;
      sim.steps = kSteps;
      const bench::TrialAggregate agg =
          bench::run_trials(kTrials, 14000 + static_cast<int>(fraction * 100),
                            make_balancer, make_workload, sim);
      table.row()
          .cell(fraction == 0.0 ? "none"
                                : (std::to_string(static_cast<int>(
                                       fraction * 100)) + "%"))
          .cell(name)
          .cell_sci(agg.pooled_rejection_rate())
          .cell(agg.average_latency.mean())
          .cell(agg.max_backlog.mean(), 1);
    }
  }
  bench::emit(table);
  std::cout << "\nReading guide: rejections here are pure routing failures — "
               "backlog awareness (greedy, and threshold's fallback) "
               "detects stragglers through their standing queues; random-"
               "of-d and round-robin keep feeding them regardless.\n";
}

void crash_recovery() {
  std::cout << "\nDynamic crash/recovery: 10% of servers go DOWN at step "
               "120 and recover at step 240 (m = "
            << kM << ", g = 2); rejection rate per 120-step window.\n";
  report::Table table({"policy", "before (0-119)", "outage (120-239)",
                       "after (240-359)"});
  for (const std::string name : {"greedy", "sticky", "random-of-d"}) {
    policies::PolicyConfig config;
    config.servers = kM;
    config.replication = 2;
    config.processing_rate = 2;
    config.queue_capacity = 11;
    config.threshold = 2;
    config.seed = 14500;
    auto balancer = policies::make_policy(name, config);
    auto* single_queue =
        dynamic_cast<policies::SingleQueueBalancer*>(balancer.get());

    workloads::RepeatedSetWorkload workload(kM, 1ULL << 40, 14500);
    core::SeriesRecorder recorder;
    core::Metrics metrics;
    std::vector<core::ChunkId> batch;
    std::uint64_t rejected_before = 0;
    for (core::Time t = 0; t < 360; ++t) {
      if (t == 120 && single_queue != nullptr) {
        for (std::size_t s = 0; s < kM; s += 10) {
          single_queue->set_server_rate(static_cast<core::ServerId>(s), 0);
        }
      }
      if (t == 240 && single_queue != nullptr) {
        for (std::size_t s = 0; s < kM; s += 10) {
          single_queue->set_server_rate(static_cast<core::ServerId>(s), 2);
        }
      }
      rejected_before = metrics.rejected();
      workload.fill_step(t, batch);
      balancer->step(t, batch, metrics);
      core::StepSample sample;
      sample.step = t;
      sample.submitted = metrics.submitted();
      sample.rejected = metrics.rejected();
      sample.completed = metrics.completed();
      sample.step_rejected = metrics.rejected() - rejected_before;
      recorder.add(sample);
    }
    auto window = [&](std::size_t end) {
      return recorder.windowed_rejection_rate(end, 120);
    };
    table.row()
        .cell(name)
        .cell_sci(window(119))
        .cell_sci(window(239))
        .cell_sci(window(359));
  }
  bench::emit(table);
  std::cout << "  Backlog-aware routing degrades gracefully during the "
               "outage (dead servers' queues fill once, then traffic takes "
               "the surviving replica) and snaps back after recovery; "
               "random-of-d keeps feeding the corpses throughout.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  run();
  crash_recovery();
  return 0;
}
