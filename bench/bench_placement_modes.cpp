// Experiment E19 — placement schemes: the paper's "first algorithmic knob"
// (§2) compared.
//
// The paper assumes independent random placement of each replica.  Real
// stores (Dynamo, Cassandra — related work [14, 20]) use consistent
// hashing: replicas are SUCCESSORS on a virtual-node ring, hence
// correlated — chunks whose primaries are ring-adjacent share their backup
// sets.  Grouped placement (LEFT[d]'s requirement) is a third scheme.
//
// Part A: structural comparison — placement-graph shape of a full working
// set under each scheme (complex components = cuckoo-infeasible pockets).
// Part B: end-to-end greedy routing under each scheme on the adversarial
// repeated workload — rejection / latency / backlog.
#include <iostream>

#include "common.hpp"
#include "core/placement.hpp"
#include "core/placement_graph.hpp"
#include "parallel/trial_runner.hpp"
#include "policies/factory.hpp"
#include "report/table.hpp"
#include "stats/summary.hpp"
#include "workloads/repeated_set.hpp"

namespace {

using namespace rlb;

constexpr std::size_t kM = 2048;

const char* mode_name(core::PlacementMode mode) {
  switch (mode) {
    case core::PlacementMode::kUniform:
      return "independent (paper)";
    case core::PlacementMode::kGrouped:
      return "grouped (LEFT[d])";
    case core::PlacementMode::kVirtualRing:
      return "virtual ring (Dynamo)";
  }
  return "?";
}

void part_a() {
  std::cout << "\nA: placement-graph structure, m chunks on m servers, "
               "d = 2 (mean over seeds).\n";
  constexpr std::size_t kTrials = 12;
  report::Table table({"placement", "complex components", "largest comp",
                       "max excess (g=1)", "cuckoo feasible %"});
  for (const auto mode :
       {core::PlacementMode::kUniform, core::PlacementMode::kGrouped,
        core::PlacementMode::kVirtualRing}) {
    struct Shape {
      double complex = 0, largest = 0, excess = 0;
      int feasible = 0;
    };
    const std::function<Shape(std::uint64_t, std::size_t)> trial =
        [mode](std::uint64_t seed, std::size_t) {
          const core::Placement placement(kM, 2, seed, mode);
          const core::PlacementGraphStats stats =
              core::analyze_placement_graph(placement, kM, 1);
          Shape shape;
          shape.complex = static_cast<double>(stats.complex_components);
          shape.largest = static_cast<double>(stats.largest_component);
          shape.excess = static_cast<double>(stats.max_overload_excess);
          shape.feasible = stats.cuckoo_feasible() ? 1 : 0;
          return shape;
        };
    const auto shapes = parallel::run_trials<Shape>(
        parallel::default_pool(), kTrials,
        19000 + static_cast<int>(mode), trial);
    stats::OnlineStats complex, largest, excess;
    int feasible = 0;
    for (const Shape& shape : shapes) {
      complex.add(shape.complex);
      largest.add(shape.largest);
      excess.add(shape.excess);
      feasible += shape.feasible;
    }
    table.row()
        .cell(mode_name(mode))
        .cell(complex.mean(), 2)
        .cell(largest.mean(), 0)
        .cell(excess.mean(), 1)
        .cell(100.0 * feasible / static_cast<double>(kTrials), 0);
  }
  bench::emit(table);
}

void part_b() {
  std::cout << "\nB: greedy routing under each placement, repeated workload "
               "(m = 2048, d = 2, g = 2, q = log2 m + 1).\n";
  constexpr std::size_t kSteps = 200;
  constexpr std::size_t kTrials = 6;
  report::Table table({"placement", "rejection(pooled)", "avg_latency",
                       "mean_backlog", "max_backlog"});
  for (const auto mode :
       {core::PlacementMode::kUniform, core::PlacementMode::kGrouped,
        core::PlacementMode::kVirtualRing}) {
    const bench::BalancerFactory make_balancer = [mode](std::uint64_t seed) {
      policies::PolicyConfig config;
      config.servers = kM;
      config.replication = 2;
      config.processing_rate = 2;
      config.queue_capacity = 0;  // log2 m + 1
      config.placement_mode = mode;
      config.seed = seed;
      return policies::make_policy("greedy", config);
    };
    const bench::WorkloadFactory make_workload = [](std::uint64_t seed) {
      return std::make_unique<workloads::RepeatedSetWorkload>(
          kM, 1ULL << 40, stats::derive_seed(seed, 19));
    };
    core::SimConfig sim;
    sim.steps = kSteps;
    const bench::TrialAggregate agg =
        bench::run_trials(kTrials, 19500 + static_cast<int>(mode),
                          make_balancer, make_workload, sim);
    table.row()
        .cell(mode_name(mode))
        .cell_sci(agg.pooled_rejection_rate())
        .cell(agg.average_latency.mean())
        .cell(agg.mean_backlog.mean())
        .cell(agg.max_backlog.mean(), 1);
  }
  bench::emit(table);
  std::cout << "\nReading guide: ring placement's successor-correlated "
               "replicas produce a structurally denser placement graph "
               "(part A) and, under adversarial repetition, heavier "
               "backlogs (part B) — a quantitative caveat for transplanting "
               "the paper's guarantees onto consistent-hashing stores.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  bench::print_banner(
      "E19 / bench_placement_modes (the §2 placement knob)",
      "the theorems assume independent random replicas; production rings "
      "correlate them",
      "independent placement: fewest complex components and lightest "
      "backlogs; ring placement measurably denser/heavier");
  part_a();
  part_b();
  return 0;
}
