// Experiment E2 — Definition 3.2 / Lemma 3.4: the safe distribution holds.
//
// Lemma 3.4: starting from a safe backlog distribution, a greedy sub-step
// ends in a safe distribution w.h.p. — i.e. for every j, at most m/2^j
// servers have backlog > j, at every step boundary.
//
// Part A sweeps (d, g) from the stressed edge of the regime (d = 2, g = 1:
// 100% utilization, OUTSIDE the theorem's g-sufficiently-large assumption)
// into it (g >= 2), reporting the worst observed ratio
//   max_j |{backlog > j}| / (m/2^j)
// across every step of every trial (safe ⟺ ratio <= 1).  In-regime rows
// must show zero violations; the g = 1 rows show the checker has teeth.
// Part B prints the full tail profile |{backlog > j}| vs the m/2^j budget
// at the end of one long stressed-but-safe run, showing the geometric decay
// directly.
#include <iostream>

#include "common.hpp"
#include "core/safe_distribution.hpp"
#include "core/simulator.hpp"
#include "policies/greedy.hpp"
#include "report/table.hpp"
#include "workloads/repeated_set.hpp"

namespace {

using namespace rlb;

constexpr std::size_t kSteps = 200;
constexpr std::size_t kTrials = 8;

void part_a() {
  report::Table table({"m", "d", "g", "in-regime?", "safety_checks",
                       "violations", "worst_ratio(mean)", "worst_ratio(max)"});
  struct Combo {
    unsigned d, g;
  };
  for (const std::size_t m : {1024u, 4096u}) {
    for (const Combo combo : {Combo{2, 1}, Combo{2, 2}, Combo{4, 2},
                              Combo{6, 6}}) {
      const bench::BalancerFactory make_balancer = [=](std::uint64_t seed) {
        auto c = policies::GreedyBalancer::theorem_config(m, combo.d, combo.g,
                                                          seed);
        return std::make_unique<policies::GreedyBalancer>(c);
      };
      const bench::WorkloadFactory make_workload = [m](std::uint64_t seed) {
        return std::make_unique<workloads::RepeatedSetWorkload>(
            m, 1ULL << 40, stats::derive_seed(seed, 5));
      };
      core::SimConfig sim;
      sim.steps = kSteps;
      sim.check_safety = true;
      const bench::TrialAggregate agg = bench::run_trials(
          kTrials, 2000 + m + combo.d * 10 + combo.g, make_balancer,
          make_workload, sim);
      table.row()
          .cell(static_cast<std::uint64_t>(m))
          .cell(combo.d)
          .cell(combo.g)
          .cell(combo.g >= 2 ? "yes" : "no (g too small)")
          .cell(agg.total_safety_checks)
          .cell(agg.total_safety_violations)
          .cell(agg.worst_safety_ratio.mean(), 3)
          .cell(agg.worst_safety_ratio.max(), 3);
    }
  }
  bench::emit(table);
}

void part_b() {
  constexpr std::size_t kM = 4096;
  constexpr unsigned kD = 2;
  constexpr unsigned kG = 2;
  auto config = policies::GreedyBalancer::theorem_config(kM, kD, kG, 77);
  policies::GreedyBalancer balancer(config);
  workloads::RepeatedSetWorkload workload(kM, 1ULL << 40, 77);
  core::SimConfig sim;
  sim.steps = 300;
  (void)core::simulate(balancer, workload, sim);

  std::vector<std::uint32_t> backlogs;
  balancer.backlogs(backlogs);
  const auto tail = core::backlog_tail_counts(backlogs);

  std::cout << "\nFinal-step backlog tail profile (m = " << kM
            << ", d = " << kD << ", g = " << kG << "):\n";
  report::Table table({"j", "servers_with_backlog>j", "budget m/2^j",
                       "ratio"});
  for (std::uint32_t j = 0; j < tail.size(); ++j) {
    const double budget =
        static_cast<double>(kM) / static_cast<double>(1ULL << j);
    table.row()
        .cell(j)
        .cell(tail[j])
        .cell(budget, 1)
        .cell(budget > 0 ? static_cast<double>(tail[j]) / budget : 0.0, 4);
  }
  bench::emit(table);
  std::cout << "\nReading guide: every in-regime row has 0 violations and "
               "max ratio <= 1 — the Lemma 3.4 induction observed directly.  "
               "The g = 1 rows run at 100% utilization where the theorem "
               "makes no promise; their larger ratios show the checker "
               "detects unsafe shapes when they occur.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  bench::print_banner(
      "E2 / bench_safe_distribution (Definition 3.2, Lemma 3.4)",
      "at every step, at most m/2^j servers have backlog > j, w.h.p.",
      "zero violations and worst ratio <= 1 for every g >= 2 row; tail "
      "profile decays at least geometrically");
  part_a();
  part_b();
  return 0;
}
