// Experiment E19 — fault injection & failover (extension beyond the paper).
//
// The paper's placement is frozen: a chunk's d candidate servers can never
// be re-rolled, so a crashed server permanently removes one of a chunk's
// few routing options until it recovers.  This experiment injects seeded
// Bernoulli crash/recover faults (core::BernoulliFailureSchedule) and
// measures how rejection and latency degrade with the failure rate, and
// how much replication buys back: a request is forced to reject only when
// ALL d of its replicas are down simultaneously, so at steady-state down
// fraction p the floor scales like p^d.
//
// Expected shape (the acceptance criteria for the fault subsystem):
//   * at fixed d, rejection is monotone increasing in the failure rate;
//   * at fixed failure rate, rejection is monotone decreasing in d.
//
// A second section fixes the failure rate and compares failover behaviour
// across the single-queue policies and delayed cuckoo (d = 2 by
// construction), and a third contrasts independent failures with
// rack-correlated ones at a matched expected down fraction.
//
// Flags: --fail-rate <p> / --mttr <steps> (or RLB_FAIL_RATE / RLB_MTTR)
// replace the built-in sweep with a single operating point.
#include <cmath>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/failure.hpp"
#include "policies/factory.hpp"
#include "report/table.hpp"
#include "workloads/repeated_set.hpp"

namespace {

using namespace rlb;

constexpr std::size_t kM = 256;
constexpr unsigned kRate = 4;
constexpr std::size_t kQueueCapacity = 11;
constexpr std::size_t kSteps = 400;
constexpr std::size_t kTrials = 8;
constexpr double kDefaultMttr = 50.0;
constexpr std::size_t kRacks = 16;
constexpr double kRackRate = 1e-3;

/// Steady-state fraction of down servers for the memoryless process:
/// crash at rate r, recover at rate 1/mttr  =>  p = r·mttr / (1 + r·mttr).
double steady_down_fraction(double fail_rate, double mttr) {
  if (mttr <= 0.0) return fail_rate > 0.0 ? 1.0 : 0.0;
  const double x = fail_rate * mttr;
  return x / (1.0 + x);
}

bench::BalancerFactory greedy_factory(unsigned replication) {
  return [replication](std::uint64_t seed) {
    policies::PolicyConfig config;
    config.servers = kM;
    config.replication = replication;
    config.processing_rate = kRate;
    config.queue_capacity = kQueueCapacity;
    config.seed = seed;
    return policies::make_policy("greedy", config);
  };
}

bench::WorkloadFactory workload_factory() {
  return [](std::uint64_t seed) {
    return std::make_unique<workloads::RepeatedSetWorkload>(
        kM, 1ULL << 40, stats::derive_seed(seed, 19));
  };
}

harness::FailureScheduleFactory bernoulli_factory(double fail_rate,
                                                  double mttr) {
  return [fail_rate, mttr](std::uint64_t seed) {
    return std::make_unique<core::BernoulliFailureSchedule>(
        fail_rate, mttr, stats::derive_seed(seed, 0xF417));
  };
}

void sweep_fail_rate(const bench::FaultFlags& flags) {
  bench::print_banner(
      "E21 / bench_fault_injection (extension)",
      "frozen placement means a crash removes a routing option for good; "
      "only d-way replication covers for it",
      "rejection grows monotonically with the failure rate at fixed d and "
      "shrinks with d at a fixed failure rate (floor ~ p_down^d)");

  const std::vector<double> rates =
      flags.any ? std::vector<double>{flags.fail_rate}
                : std::vector<double>{0.0, 2e-4, 1e-3, 5e-3, 2e-2};
  const double mttr = flags.any ? flags.mttr : kDefaultMttr;

  report::Table table({"fail_rate", "mttr", "down~%", "d",
                       "rejection(pooled)", "avg_latency", "crashes/trial"});
  for (const double fail_rate : rates) {
    for (const unsigned d : {2u, 3u, 4u}) {
      core::SimConfig sim;
      sim.steps = kSteps;
      const bench::TrialAggregate agg = bench::run_trials(
          kTrials, 19000 + 17 * d, greedy_factory(d), workload_factory(), sim,
          bernoulli_factory(fail_rate, mttr));
      table.row()
          .cell_sci(fail_rate)
          .cell(mttr, 0)
          .cell(100.0 * steady_down_fraction(fail_rate, mttr), 1)
          .cell(static_cast<double>(d), 0)
          .cell_sci(agg.pooled_rejection_rate())
          .cell(agg.average_latency.mean())
          .cell(static_cast<double>(agg.total_crashes) /
                    static_cast<double>(kTrials),
                1);
    }
  }
  bench::emit(table);
  std::cout << "\nReading guide: 'down~%' is the steady-state fraction of "
               "crashed servers (r*mttr / (1 + r*mttr)).  Rejections come "
               "from dumped queues at crash time plus requests whose d "
               "replicas are all down at once — the latter shrinks "
               "geometrically in d.\n";
}

void policy_comparison(const bench::FaultFlags& flags) {
  const double fail_rate = flags.any ? flags.fail_rate : 1e-3;
  const double mttr = flags.any ? flags.mttr : kDefaultMttr;
  std::cout << "\nFailover across policies at fail_rate = " << fail_rate
            << ", mttr = " << mttr << " (d = 2, m = " << kM << "):\n";

  report::Table table({"policy", "rejection(pooled)", "avg_latency",
                       "max_backlog", "crashes/trial"});
  for (const std::string name :
       {"greedy", "threshold", "sticky", "random-of-d", "delayed-cuckoo"}) {
    const bench::BalancerFactory make_balancer = [name](std::uint64_t seed) {
      policies::PolicyConfig config;
      config.servers = kM;
      config.replication = 2;
      config.threshold = 2;
      config.seed = seed;
      if (name == "delayed-cuckoo") {
        // The theorem's recipe: g = 16 split over four queues, derived
        // Θ(log log m) capacity (g = 4 cannot drain carried-over queues).
        config.processing_rate = 16;
        config.queue_capacity = 0;
      } else {
        config.processing_rate = kRate;
        config.queue_capacity = kQueueCapacity;
      }
      return policies::make_policy(name, config);
    };
    core::SimConfig sim;
    sim.steps = kSteps;
    const bench::TrialAggregate agg =
        bench::run_trials(kTrials, 19500, make_balancer, workload_factory(),
                          sim, bernoulli_factory(fail_rate, mttr));
    table.row()
        .cell(name)
        .cell_sci(agg.pooled_rejection_rate())
        .cell(agg.average_latency.mean())
        .cell(agg.max_backlog.mean(), 1)
        .cell(static_cast<double>(agg.total_crashes) /
                  static_cast<double>(kTrials),
              1);
  }
  bench::emit(table);
  std::cout << "  All single-queue policies share the base-class failover "
               "(down replicas are removed from the choice list before "
               "pick()); delayed cuckoo replans around down servers as "
               "removed cuckoo slots and falls back to the live replica's "
               "Q queue for orphaned reappearances.\n";
}

void correlated_failures() {
  // Match the expected down fraction: one rack of kM/kRacks servers failing
  // at rate kRackRate takes down the same expected server-mass as
  // independent failures at that rate — but all in the same instant and
  // place.
  std::cout << "\nCorrelated (rack) vs independent failures at matched "
               "expected down fraction (greedy, d = 2, "
            << kRacks << " racks):\n";

  report::Table table({"schedule", "rejection(pooled)", "avg_latency",
                       "max_backlog"});
  for (const bool correlated : {false, true}) {
    harness::FailureScheduleFactory make_schedule;
    if (correlated) {
      make_schedule = [](std::uint64_t seed) {
        return std::make_unique<core::RackFailureSchedule>(
            kRacks, kRackRate, kDefaultMttr, stats::derive_seed(seed, 0xF418));
      };
    } else {
      make_schedule = bernoulli_factory(kRackRate, kDefaultMttr);
    }
    core::SimConfig sim;
    sim.steps = kSteps;
    const bench::TrialAggregate agg =
        bench::run_trials(kTrials, 19700, greedy_factory(2),
                          workload_factory(), sim, make_schedule);
    table.row()
        .cell(correlated ? "rack-correlated" : "independent")
        .cell_sci(agg.pooled_rejection_rate())
        .cell(agg.average_latency.mean())
        .cell(agg.max_backlog.mean(), 1);
  }
  bench::emit(table);
  std::cout << "  With hashed placement, a chunk's two replicas rarely share "
               "a rack, so wholesale rack loss mostly still leaves one "
               "replica up — but the surviving replicas of a whole rack's "
               "chunks concentrate load while it is down.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  const rlb::bench::FaultFlags flags =
      rlb::bench::parse_fault_flags(argc, argv);
  sweep_fail_rate(flags);
  policy_comparison(flags);
  correlated_failures();
  return 0;
}
