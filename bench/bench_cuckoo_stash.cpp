// Experiment E9 — Theorem 4.1 / Lemma 4.2: cuckoo hashing with a stash.
//
// Theorem 4.1 (Kirsch–Mitzenmacher–Wieder): storing m/3 items in m
// positions, a stash of size s fails with probability O(1/m^{s+1}); classic
// stash-less cuckoo fails with Θ(1/m).
//
// Part A: failure frequency of the online table vs stash size and m — the
// s = 0 column decays like 1/m, each added stash slot buys roughly another
// polynomial factor (at laptop scale the s >= 2 rows are all-zero).
// Part B: the Lemma 4.2 offline assignment at FULL load (m items, three
// groups): success rate, stash usage, and the O(1) per-server maximum.
#include <iostream>

#include "common.hpp"
#include "cuckoo/cuckoo_table.hpp"
#include "cuckoo/dary_table.hpp"
#include "cuckoo/offline_assignment.hpp"
#include "parallel/trial_runner.hpp"
#include "report/table.hpp"
#include "stats/summary.hpp"

namespace {

using namespace rlb;

void part_a() {
  std::cout << "\nPart A: online cuckoo table, m/3 keys into m positions.\n";
  report::Table table({"m", "stash", "trials", "failures", "failure rate",
                       "mean stash used"});
  for (const std::size_t m : {512u, 2048u, 8192u}) {
    for (const std::size_t stash : {0u, 1u, 2u, 4u}) {
      const std::size_t trials = m <= 2048 ? 2000 : 600;
      struct Outcome {
        int failed = 0;
        double stash_used = 0;
      };
      const std::function<Outcome(std::uint64_t, std::size_t)> trial =
          [m, stash](std::uint64_t seed, std::size_t) {
            cuckoo::CuckooTable table(m, stash, seed);
            Outcome outcome;
            for (std::uint64_t key = 0; key < m / 3; ++key) {
              // Mix the key with the seed so every trial stores a fresh set.
              if (!table.insert(hashing::hash64(key, seed))) {
                outcome.failed = 1;
                break;
              }
            }
            outcome.stash_used = static_cast<double>(table.stash_size());
            return outcome;
          };
      const auto outcomes = parallel::run_trials<Outcome>(
          parallel::default_pool(), trials, 8000 + m + stash, trial);
      std::size_t failures = 0;
      stats::OnlineStats stash_used;
      for (const Outcome& o : outcomes) {
        failures += static_cast<std::size_t>(o.failed);
        stash_used.add(o.stash_used);
      }
      table.row()
          .cell(static_cast<std::uint64_t>(m))
          .cell(static_cast<std::uint64_t>(stash))
          .cell(static_cast<std::uint64_t>(trials))
          .cell(static_cast<std::uint64_t>(failures))
          .cell_sci(static_cast<double>(failures) /
                    static_cast<double>(trials))
          .cell(stash_used.mean(), 4);
    }
  }
  bench::emit(table);
}

void part_b() {
  std::cout << "\nPart B: Lemma 4.2 offline assignment, m items -> m servers "
               "(three cuckoo groups, stash 4 per group).\n";
  report::Table table({"m", "trials", "failures", "mean stash used",
                       "mean max/server", "worst max/server"});
  for (const std::size_t m : {512u, 2048u, 8192u, 32768u}) {
    const std::size_t trials = m <= 8192 ? 400 : 100;
    struct Outcome {
      int failed = 0;
      double stash_used = 0;
      double max_per_server = 0;
    };
    const std::function<Outcome(std::uint64_t, std::size_t)> trial =
        [m](std::uint64_t seed, std::size_t) {
          stats::Rng rng(seed);
          std::vector<std::pair<std::uint32_t, std::uint32_t>> choices;
          choices.reserve(m);
          for (std::size_t i = 0; i < m; ++i) {
            auto a = static_cast<std::uint32_t>(rng.next_below(m));
            auto b = static_cast<std::uint32_t>(rng.next_below(m));
            while (b == a) b = static_cast<std::uint32_t>(rng.next_below(m));
            choices.emplace_back(a, b);
          }
          const cuckoo::OfflineAssignment result =
              cuckoo::assign_offline(choices, m, 4);
          Outcome outcome;
          outcome.failed = result.success ? 0 : 1;
          outcome.stash_used = static_cast<double>(result.stash_used);
          std::uint32_t max_count = 0;
          for (const std::uint32_t c : result.per_server) {
            max_count = std::max(max_count, c);
          }
          outcome.max_per_server = max_count;
          return outcome;
        };
    const auto outcomes = parallel::run_trials<Outcome>(
        parallel::default_pool(), trials, 8800 + m, trial);
    std::size_t failures = 0;
    stats::OnlineStats stash_used, max_per_server;
    for (const Outcome& o : outcomes) {
      failures += static_cast<std::size_t>(o.failed);
      stash_used.add(o.stash_used);
      max_per_server.add(o.max_per_server);
    }
    table.row()
        .cell(static_cast<std::uint64_t>(m))
        .cell(static_cast<std::uint64_t>(trials))
        .cell(static_cast<std::uint64_t>(failures))
        .cell(stash_used.mean(), 3)
        .cell(max_per_server.mean(), 3)
        .cell(max_per_server.max(), 0);
  }
  bench::emit(table);
  std::cout << "\nReading guide: worst max/server staying a small constant "
               "(<= 3 + stash spill) independent of m is exactly what "
               "Lemma 4.5 needs to bound P-queue arrivals per phase.\n";
}

void part_c() {
  std::cout << "\nPart C: generalized cuckoo load thresholds — highest load "
               "filled without any shed key (single seeded run per cell).\n";
  report::Table table({"variant", "capacity", "target load", "achieved",
                       "stash used"});
  struct Variant {
    const char* name;
    unsigned bucket_size;
    unsigned choices;
    double target;
  };
  constexpr std::size_t kBuckets = 4096;
  const Variant variants[] = {
      {"d=2, b=1 (paper's Thm 4.1)", 1, 2, 0.46},
      {"d=3, b=1", 1, 3, 0.88},
      {"d=2, b=4", 4, 2, 0.90},
  };
  for (const Variant& variant : variants) {
    const std::size_t buckets =
        variant.bucket_size == 1 ? kBuckets : kBuckets / variant.bucket_size;
    cuckoo::DAryCuckooTable table_impl(buckets, variant.bucket_size,
                                       variant.choices, 4, 91);
    const auto capacity = buckets * variant.bucket_size;
    const auto target =
        static_cast<std::uint64_t>(variant.target * static_cast<double>(capacity));
    std::uint64_t inserted = 0;
    for (std::uint64_t key = 0; key < target; ++key) {
      if (table_impl.insert(key)) ++inserted;
    }
    table.row()
        .cell(variant.name)
        .cell(static_cast<std::uint64_t>(capacity))
        .cell(variant.target, 2)
        .cell(table_impl.load_factor(), 4)
        .cell(static_cast<std::uint64_t>(table_impl.stash_size()));
  }
  bench::emit(table);
  std::cout << "  d = 3 or bucketed variants hold ~2x the load of the "
               "(d = 2, b = 1) table the theorem analyses — the engineering "
               "headroom a production store has when instantiating "
               "Lemma 4.2.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  bench::print_banner(
      "E9 / bench_cuckoo_stash (Theorem 4.1, Lemma 4.2)",
      "cuckoo with stash s fails with prob O(1/m^{s+1}); m requests can be "
      "assigned with O(1) per server",
      "failure rate drops ~polynomially with m and sharply with stash; "
      "per-server max is a small constant at every m");
  part_a();
  part_b();
  part_c();
  return 0;
}
