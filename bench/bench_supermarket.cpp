// Experiment E17 — the supermarket model vs reappearance dependencies
// (paper Section 6, related work).
//
// Part A validates the continuous-time substrate against closed forms:
// the stationary fraction of queues with >= i customers under JSQ(d) is
//   s_i = λ^((d^i − 1)/(d − 1))   (Mitzenmacher; λ^i at d = 1 is M/M/1),
// and the d = 1 mean sojourn is 1/(1 − λ).
//
// Part B imports reappearance dependencies into the supermarket world:
// arrivals carry identities from a finite population whose d candidate
// servers are FIXED across arrivals.  As the population shrinks toward m,
// the queue tail departs upward from the classical prediction — the
// quantitative version of the paper's remark that the supermarket model
// "cannot be used to address adversarial settings such as ours where the
// main technical challenge is reappearance dependencies".
#include <iostream>

#include "common.hpp"
#include "report/table.hpp"
#include "supermarket/event_sim.hpp"

namespace {

using namespace rlb;

void part_a() {
  std::cout << "\nA: validation against closed forms (m = 400, horizon "
               "1500, warmup 200).\n";
  report::Table table({"lambda", "d", "i", "measured s_i", "theory s_i",
                       "rel err"});
  for (const double lambda : {0.7, 0.9}) {
    for (const unsigned d : {1u, 2u}) {
      supermarket::SupermarketConfig config;
      config.servers = 400;
      config.lambda = lambda;
      config.choices = d;
      config.horizon = 1500.0;
      config.warmup = 200.0;
      config.seed = 17000 + d;
      const supermarket::SupermarketResult result =
          supermarket::simulate_supermarket(config);
      for (unsigned i = 1; i <= 4; ++i) {
        const double theory = supermarket::classical_tail(lambda, d, i);
        const double measured =
            i < result.tail_fraction.size() ? result.tail_fraction[i] : 0.0;
        table.row()
            .cell(lambda, 2)
            .cell(d)
            .cell(i)
            .cell(measured, 4)
            .cell(theory, 4)
            .cell(theory > 0 ? std::abs(measured - theory) / theory : 0.0, 3);
      }
    }
  }
  bench::emit(table);
}

void part_b() {
  std::cout << "\nB: fixed-identity (reappearance) populations vs the "
               "classical fresh-choice tail (m = 200, lambda = 0.9, d = 2)."
               "\n";
  report::Table table({"population/m", "mean sojourn", "s_2", "s_3", "s_4",
                       "classical s_3 ref"});
  supermarket::SupermarketConfig config;
  config.servers = 200;
  config.lambda = 0.9;
  config.choices = 2;
  config.horizon = 1200.0;
  config.warmup = 200.0;
  config.seed = 17100;

  auto row_for = [&](const std::string& label,
                     const supermarket::SupermarketResult& result) {
    auto tail = [&](unsigned i) {
      return i < result.tail_fraction.size() ? result.tail_fraction[i] : 0.0;
    };
    table.row()
        .cell(label)
        .cell(result.sojourn.mean(), 3)
        .cell(tail(2), 4)
        .cell(tail(3), 4)
        .cell(tail(4), 4)
        .cell(supermarket::classical_tail(0.9, 2, 3), 4);
  };

  config.mode = supermarket::ChoiceMode::kFresh;
  row_for("fresh (classical)", supermarket::simulate_supermarket(config));

  config.mode = supermarket::ChoiceMode::kFixedIdentity;
  for (const std::size_t factor : {32u, 8u, 2u, 1u}) {
    config.population = factor * config.servers;
    row_for(std::to_string(factor) + "x m",
            supermarket::simulate_supermarket(config));
  }
  bench::emit(table);
  std::cout << "\nReading guide: large populations approximate the fresh "
               "model (every identity is rare); at population ~m the same "
               "identities recur constantly with fixed servers, fattening "
               "the tail beyond anything the classical analysis predicts — "
               "the supermarket model's blind spot that the paper's model "
               "makes first-class.\n";
}

void part_c() {
  std::cout << "\nC: bounded queues (q = 4) — rejection rate vs identity "
               "population (m = 200, lambda = 0.9, d = 2).\n";
  report::Table table({"population/m", "rejection rate", "mean sojourn"});
  supermarket::SupermarketConfig config;
  config.servers = 200;
  config.lambda = 0.9;
  config.choices = 2;
  config.horizon = 1200.0;
  config.warmup = 200.0;
  config.queue_bound = 4;
  config.seed = 17200;

  config.mode = supermarket::ChoiceMode::kFresh;
  {
    const auto result = supermarket::simulate_supermarket(config);
    table.row()
        .cell("fresh (classical)")
        .cell_sci(result.rejection_rate())
        .cell(result.sojourn.mean(), 3);
  }
  config.mode = supermarket::ChoiceMode::kFixedIdentity;
  for (const std::size_t factor : {32u, 8u, 2u, 1u}) {
    config.population = factor * config.servers;
    const auto result = supermarket::simulate_supermarket(config);
    table.row()
        .cell(std::to_string(factor) + "x m")
        .cell_sci(result.rejection_rate())
        .cell(result.sojourn.mean(), 3);
  }
  bench::emit(table);
  std::cout << "  With bounded queues the fattened tail becomes dropped "
               "requests — reappearance dependencies converted directly "
               "into rejection rate, the paper's core metric, in the "
               "queueing-theory model that cannot analyze them.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  bench::print_banner(
      "E17 / bench_supermarket (Section 6 related-work contrast)",
      "JSQ(d) stationary tails s_i = lambda^((d^i-1)/(d-1)); fresh "
      "per-arrival sampling is what reappearance dependencies remove",
      "part A matches theory within a few percent; part B's tail grows as "
      "the identity population shrinks toward m; part C turns that tail "
      "into rejections under bounded queues");
  part_a();
  part_b();
  part_c();
  return 0;
}
