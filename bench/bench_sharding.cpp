// Experiment E20 — key→chunk sharding end to end (paper footnote 1).
//
// The model's chunks each contain multiple data items; WHICH keys share a
// chunk is a sharding decision made above the paper's model.  Under skewed
// key popularity:
//   * hash sharding scatters the Zipf head → chunk-level load flattens
//     before routing ever sees it;
//   * range sharding (HBase/BigTable-style, great for scans) concentrates
//     the head into few chunks — and a chunk lives on only d servers, so
//     no routing policy can spread a single molten chunk (the §2 "basic
//     observation" that ω(1) same-chunk requests/step are hopeless is the
//     limiting case).
//
// We measure both: the chunk-level stream shape (compression, chunk-level
// reappearance) and the end-to-end outcome per routing policy on the same
// key stream.
#include <iostream>

#include "common.hpp"
#include "policies/factory.hpp"
#include "report/table.hpp"
#include "store/key_mapper.hpp"
#include "store/key_workload_adapter.hpp"
#include "workloads/reappearance_profile.hpp"

namespace {

using namespace rlb;

constexpr std::size_t kServers = 512;
constexpr std::size_t kChunks = 2048;
constexpr store::KeyId kKeySpace = 1 << 20;
constexpr std::size_t kKeysPerStep = 512;
constexpr double kSkew = 1.1;
constexpr std::size_t kSteps = 200;
constexpr std::size_t kTrials = 4;

std::unique_ptr<store::KeyMapper> make_mapper(const std::string& kind,
                                              std::uint64_t seed) {
  if (kind == "hash") {
    return std::make_unique<store::HashShardMapper>(kChunks, seed);
  }
  return std::make_unique<store::RangeShardMapper>(kChunks, kKeySpace);
}

void part_a() {
  std::cout << "\nA: what each sharding does to the chunk-level stream "
               "(Zipf(" << kSkew << ") keys, contiguous popularity).\n";
  report::Table table({"sharding", "keys/chunk-request", "chunk requests/"
                       "step", "chunk reappearance", "median reuse dist"});
  for (const std::string kind : {"hash", "range"}) {
    const auto mapper = make_mapper(kind, 20001);
    store::KeyWorkloadAdapter adapter(
        store::make_zipf_key_generator(kKeysPerStep, kKeySpace, kSkew,
                                       /*scramble=*/false, 20002),
        *mapper, kKeysPerStep);
    const workloads::ReappearanceProfile profile =
        workloads::profile_workload(adapter, kSteps);
    table.row()
        .cell(kind)
        .cell(adapter.compression(), 2)
        .cell(static_cast<double>(adapter.chunk_requests_emitted()) /
                  static_cast<double>(kSteps),
              1)
        .cell(profile.reappearance_fraction(), 3)
        .cell(profile.reuse_distance.quantile(0.5));
  }
  bench::emit(table);
}

void part_b() {
  std::cout << "\nB: end-to-end — same key stream, both shardings, per "
               "policy (m = " << kServers << ", d = 2, g = 2).\n";
  report::Table table({"sharding", "policy", "rejection(pooled)", "avg_lat",
                       "max_backlog"});
  for (const std::string kind : {"hash", "range"}) {
    for (const std::string policy : {"greedy", "delayed-cuckoo"}) {
      const bench::BalancerFactory make_balancer =
          [policy](std::uint64_t seed) {
            policies::PolicyConfig config;
            config.servers = kServers;
            config.replication = 2;
            config.processing_rate = policy == "delayed-cuckoo" ? 8 : 2;
            config.queue_capacity = 0;
            config.seed = seed;
            return policies::make_policy(policy, config);
          };
      const bench::WorkloadFactory make_workload =
          [kind](std::uint64_t seed) -> std::unique_ptr<core::Workload> {
        struct Owning final : public core::Workload {
          std::unique_ptr<store::KeyMapper> mapper;
          std::unique_ptr<store::KeyWorkloadAdapter> adapter;
          void fill_step(core::Time t,
                         std::vector<core::ChunkId>& out) override {
            adapter->fill_step(t, out);
          }
          std::size_t max_requests_per_step() const override {
            return adapter->max_requests_per_step();
          }
        };
        auto owning = std::make_unique<Owning>();
        owning->mapper = make_mapper(kind, stats::derive_seed(seed, 1));
        owning->adapter = std::make_unique<store::KeyWorkloadAdapter>(
            store::make_zipf_key_generator(kKeysPerStep, kKeySpace, kSkew,
                                           false, stats::derive_seed(seed, 2)),
            *owning->mapper, kKeysPerStep);
        return owning;
      };
      core::SimConfig sim;
      sim.steps = kSteps;
      const bench::TrialAggregate agg = bench::run_trials(
          kTrials, 20100 + (kind == "hash" ? 0 : 50), make_balancer,
          make_workload, sim);
      table.row()
          .cell(kind)
          .cell(policy)
          .cell_sci(agg.pooled_rejection_rate())
          .cell(agg.average_latency.mean())
          .cell(agg.max_backlog.mean(), 1);
    }
  }
  bench::emit(table);
  std::cout << "\nReading guide: with DISTINCT chunks per step the model "
               "protects range sharding from outright collapse (dedup caps "
               "each chunk at one request/step), but its hot chunks "
               "reappear every step with reuse distance 1 — the maximal "
               "reappearance-dependency regime — while hash sharding "
               "arrives pre-flattened.  The part-B deltas quantify what "
               "the sharding layer hands the routing layer.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  bench::print_banner(
      "E20 / bench_sharding (footnote 1: keys per chunk)",
      "which keys share a chunk decides how much reappearance dependence "
      "the routing layer inherits",
      "range sharding: high compression, reappearance ~1, reuse distance 1; "
      "hash sharding: flatter stream; policies clean on both at these "
      "parameters");
  part_a();
  part_b();
  return 0;
}
