// Experiment E1 — Theorem 3.1: the greedy upper bound.
//
// Greedy with q = log2 m + 1 and sufficiently large constants d, g achieves
// rejection rate O(1/poly m), expected average latency O(1), and max latency
// O(log m) on the fully adversarial repeated-set workload.
//
// We sweep m and d (with g = d) and report pooled rejection rate, latency,
// and backlog across seeded trials.  Expected shape: zero (or vanishing)
// rejections once d >= 4, flat O(1) average latency in m, and max backlog
// well under the q = log2 m + 1 budget.  d = 2 with g = 2 is below the
// theorem's constants and may show occasional rejections — included to show
// where the regime begins.
#include <iostream>

#include "common.hpp"
#include "policies/greedy.hpp"
#include "report/table.hpp"
#include "workloads/repeated_set.hpp"

namespace {

using namespace rlb;

void run() {
  bench::print_banner(
      "E1 / bench_greedy_upper (Theorem 3.1)",
      "greedy, q = log2(m)+1, d,g = O(1): rejection O(1/poly m), avg latency "
      "O(1), max latency O(log m) on adversarial repeated workloads",
      "zero pooled rejections for d >= 4; avg latency flat in m; max backlog "
      "<= q");

  constexpr std::size_t kSteps = 300;
  constexpr std::size_t kTrials = 8;

  report::Table table({"m", "d", "g", "q", "rejection(pooled)", "avg_latency",
                       "max_latency", "max_backlog", "q_budget_used"});

  for (const std::size_t m : {256u, 1024u, 4096u}) {
    for (const unsigned d : {2u, 4u, 6u}) {
      const unsigned g = d;
      const auto config =
          policies::GreedyBalancer::theorem_config(m, d, g, /*seed=*/0);

      const bench::BalancerFactory make_balancer =
          [&, m, d, g](std::uint64_t seed) {
            auto c = policies::GreedyBalancer::theorem_config(m, d, g, seed);
            return std::make_unique<policies::GreedyBalancer>(c);
          };
      const bench::WorkloadFactory make_workload = [m](std::uint64_t seed) {
        return std::make_unique<workloads::RepeatedSetWorkload>(
            m, 1ULL << 40, stats::derive_seed(seed, 99));
      };

      core::SimConfig sim;
      sim.steps = kSteps;

      const bench::TrialAggregate agg = bench::run_trials(
          kTrials, 1000 + m + d, make_balancer, make_workload, sim);

      table.row()
          .cell(static_cast<std::uint64_t>(m))
          .cell(d)
          .cell(g)
          .cell(static_cast<std::uint64_t>(config.queue_capacity))
          .cell_sci(agg.pooled_rejection_rate())
          .cell(agg.average_latency.mean())
          .cell(agg.max_latency.mean(), 1)
          .cell(agg.max_backlog.mean(), 1)
          .cell(agg.max_backlog.mean() /
                    static_cast<double>(config.queue_capacity),
                2);
    }
  }
  bench::emit(table);

  std::cout << "\nReading guide: rejection(pooled) is total rejected / total "
               "submitted across "
            << kTrials << " seeds x " << kSteps
            << " steps.\nq_budget_used = mean max backlog / q; values well "
               "below 1 mean queues of log2(m)+1 were never stressed.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  run();
  return 0;
}
