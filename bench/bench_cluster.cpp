// Experiment E23 — cluster router hop overhead and fan-out scaling.
//
// Runs the multi-process cluster topology of docs/CLUSTER.md inside one
// process: rlbd-shaped backends (net::NetServer + engine::ServingEngine)
// behind a cluster::Router front-end, with closed-loop net::Client worker
// threads driving the client port.  Three topologies isolate the cost of
// the extra hop:
//
//   direct     — clients talk straight to one backend (the E22 baseline)
//   router-1   — the same single backend behind a router: every request
//                pays decode + membership pick + re-encode + one extra
//                loopback round trip, so (router-1 minus direct) IS the
//                hop overhead
//   router-3   — three backends, d = 2 candidates per chunk: the paper's
//                d-choice balancer lifted to process level, plus the
//                fan-out's pipelining win
//
// Reports end-to-end throughput, rejection rate, and latency quantiles per
// topology.  Flags: --requests <n> per topology (default 100000),
// --connections <c> (default 4), --concurrency <k> (default 32), plus the
// shared --format/--json/--probes flags.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/router.hpp"
#include "common.hpp"
#include "engine/engine.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "stats/histogram.hpp"
#include "stats/rng.hpp"

namespace {

using namespace rlb;

struct RunResult {
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
  std::uint64_t protocol_errors = 0;
  double elapsed_seconds = 0.0;
  stats::CountingHistogram latency_us{200000};
};

/// One rlbd-shaped backend on an ephemeral loopback port.
class Backend {
 public:
  explicit Backend(std::uint32_t backend_id, std::size_t max_connections) {
    engine::EngineConfig config;
    config.servers = 32;
    config.shards = 2;
    config.processing_rate = 4;
    config.seed = 7 + backend_id;
    config.backend_id = backend_id;
    net::ServerConfig net_config;
    net_config.max_connections = max_connections;
    server_ = std::make_unique<net::NetServer>(
        net_config,
        [this](std::uint64_t token, const net::RequestMsg& request) {
          if (!engine_->submit(token, request.request_id, request.key)) {
            net::ResponseMsg msg;
            msg.request_id = request.request_id;
            msg.status = net::Status::kError;
            server_->send_response(token, msg);
          }
        });
    // Batched submit: one shard-lock + notify per shard per wakeup.
    server_->set_request_batch_handler(
        [this](const net::ServerRequest* batch, std::size_t count) {
          thread_local std::vector<engine::ServingEngine::SubmitItem> items;
          thread_local std::vector<std::size_t> rejected;
          items.clear();
          rejected.clear();
          items.reserve(count);
          for (std::size_t i = 0; i < count; ++i) {
            items.push_back({batch[i].conn_token, batch[i].msg.request_id,
                             batch[i].msg.key, batch[i].msg.trace});
          }
          engine_->submit_batch(items.data(), count, rejected);
          for (const std::size_t i : rejected) {
            net::ResponseMsg msg;
            msg.request_id = batch[i].msg.request_id;
            msg.status = net::Status::kError;
            server_->send_response(batch[i].conn_token, msg);
          }
        });
    engine_ = std::make_unique<engine::ServingEngine>(
        config, [this](const engine::EngineResponse& r) {
          net::ResponseMsg msg;
          msg.request_id = r.request_id;
          msg.status = static_cast<net::Status>(r.status);
          msg.server = static_cast<std::uint32_t>(r.server);
          msg.wait_steps = r.wait_steps;
          server_->send_response(r.conn_token, msg);
        });
    server_->set_stats_handler(
        [this](std::uint64_t token, const net::StatsRequestMsg&) {
          server_->send_stats(token, engine_->snapshot());
        });
    engine_->start();
    server_->start();
  }

  ~Backend() {
    engine_->stop();
    server_->stop();
  }

  std::uint16_t port() const { return server_->port(); }

 private:
  std::unique_ptr<net::NetServer> server_;
  std::unique_ptr<engine::ServingEngine> engine_;
};

void client_worker(std::uint16_t port, std::uint64_t quota, std::uint64_t seed,
                   std::size_t concurrency, std::uint64_t id_base,
                   RunResult& result) {
  net::Client client;
  try {
    client.connect("127.0.0.1", port);
  } catch (const std::exception& e) {
    std::cerr << "bench_cluster: " << e.what() << "\n";
    result.errors += quota;
    return;
  }
  using Clock = std::chrono::steady_clock;
  std::unordered_map<std::uint64_t, Clock::time_point> in_flight;
  stats::Rng rng(seed);
  std::uint64_t next_id = id_base;
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  auto send_one = [&] {
    const std::uint64_t id = next_id++;
    in_flight.emplace(id, Clock::now());
    client.send_request(id, rng.next());
    ++sent;
  };
  try {
    for (std::uint64_t i = 0; i < std::min<std::uint64_t>(concurrency, quota);
         ++i) {
      send_one();
    }
    client.flush();
    // Burst loop: one blocking read, then drain every response already
    // buffered, then top the window back up with a single flush — one
    // write syscall per burst instead of one per request.
    net::ResponseMsg response;
    bool stream_ok = true;
    while (stream_ok && completed < quota && client.read_response(response)) {
      std::size_t burst = 0;
      for (;;) {
        const auto it = in_flight.find(response.request_id);
        if (it == in_flight.end()) {
          ++result.protocol_errors;
          stream_ok = false;
          break;
        }
        const std::uint64_t us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - it->second)
                .count());
        in_flight.erase(it);
        ++completed;
        ++burst;
        if (response.status == net::Status::kOk) {
          ++result.ok;
          result.latency_us.add(us);
        } else if (net::is_reject(response.status)) {
          ++result.rejected;
        } else {
          ++result.errors;
        }
        if (completed >= quota) break;
        if (!client.poll_buffered_response(response)) break;
      }
      std::size_t refill = 0;
      for (; refill < burst && sent < quota; ++refill) send_one();
      if (refill > 0) client.flush();
    }
  } catch (const std::exception& e) {
    std::cerr << "bench_cluster: " << e.what() << "\n";
    ++result.protocol_errors;
  }
  client.close();
}

RunResult drive(std::uint16_t port, std::uint64_t requests,
                std::size_t connections, std::size_t concurrency) {
  std::vector<RunResult> partials(connections);
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t w = 0; w < connections; ++w) {
    const std::uint64_t quota =
        requests / connections + (w < requests % connections ? 1 : 0);
    threads.emplace_back([&, w, quota] {
      client_worker(port, quota, 100 + w, concurrency,
                    (static_cast<std::uint64_t>(w) << 40) + 1, partials[w]);
    });
  }
  for (auto& thread : threads) thread.join();
  RunResult total;
  total.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (const RunResult& partial : partials) {
    total.ok += partial.ok;
    total.rejected += partial.rejected;
    total.errors += partial.errors;
    total.protocol_errors += partial.protocol_errors;
    total.latency_us.merge(partial.latency_us);
  }
  return total;
}

/// Wait for the router to mark every backend live before measuring.
bool wait_live(const cluster::Router& router, std::size_t want) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (router.membership().live_count() == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

RunResult run_topology(const std::string& topology, std::uint64_t requests,
                       std::size_t connections, std::size_t concurrency) {
  const std::size_t backend_count = topology == "router-3" ? 3 : 1;
  std::vector<std::unique_ptr<Backend>> backends;
  for (std::size_t i = 0; i < backend_count; ++i) {
    backends.push_back(std::make_unique<Backend>(
        static_cast<std::uint32_t>(i), connections + 8));
  }

  if (topology == "direct") {
    return drive(backends[0]->port(), requests, connections, concurrency);
  }

  cluster::RouterConfig config;
  for (const auto& backend : backends) {
    config.backends.push_back({"127.0.0.1", backend->port()});
  }
  config.replication = backend_count > 1 ? 2 : 1;
  config.chunks = 1 << 14;
  config.heartbeat_interval_ms = 50;
  config.max_connections = connections + 8;
  cluster::Router router(config);
  router.start();
  if (!wait_live(router, backend_count)) {
    std::cerr << "bench_cluster: backends never became live\n";
    return RunResult{};
  }
  RunResult result =
      drive(router.port(), requests, connections, concurrency);
  router.stop();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  std::uint64_t requests = 100000;
  std::size_t connections = 4;
  std::size_t concurrency = 32;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--requests" && i + 1 < argc) {
      requests = std::stoull(argv[++i]);
    } else if (flag == "--connections" && i + 1 < argc) {
      connections = std::stoull(argv[++i]);
    } else if (flag == "--concurrency" && i + 1 < argc) {
      concurrency = std::stoull(argv[++i]);
    }
  }

  rlb::bench::print_banner(
      "E23 cluster router hop overhead",
      "forwarding through the rlb_router front-end costs one extra loopback "
      "round trip per request; d-choice fan-out over three backends keeps "
      "rejection behaviour while adding capacity (tentpole of the cluster PR)",
      "router-1 p50 sits a few hundred microseconds above direct; router-3 "
      "matches or beats direct throughput with zero errors");
  rlb::bench::json_value("requests", requests);
  rlb::bench::json_value("connections",
                         static_cast<std::uint64_t>(connections));
  rlb::bench::json_value("concurrency",
                         static_cast<std::uint64_t>(concurrency));

  report::Table table({"topology", "backends", "throughput_rps", "reject_rate",
                       "p50_us", "p95_us", "p99_us", "errors",
                       "protocol_errors"});
  for (const std::string topology : {"direct", "router-1", "router-3"}) {
    const RunResult r =
        run_topology(topology, requests, connections, concurrency);
    const std::uint64_t answered = r.ok + r.rejected;
    const double throughput =
        r.elapsed_seconds > 0
            ? static_cast<double>(answered) / r.elapsed_seconds
            : 0.0;
    const double reject_rate =
        answered
            ? static_cast<double>(r.rejected) / static_cast<double>(answered)
            : 0.0;
    table.row()
        .cell(topology)
        .cell(static_cast<std::uint64_t>(topology == "router-3" ? 3 : 1))
        .cell(throughput, 0)
        .cell_sci(reject_rate)
        .cell(r.latency_us.quantile(0.50))
        .cell(r.latency_us.quantile(0.95))
        .cell(r.latency_us.quantile(0.99))
        .cell(r.errors)
        .cell(r.protocol_errors);
  }
  rlb::bench::emit(table);
  return 0;
}
