// Experiment E18 — adversary search: can randomized search break the
// algorithms the way the theory says it cannot?
//
// For each policy, hill-climb over the oblivious-workload space (working-
// set size, churn, period, fixed/shuffled order) maximizing the pooled
// rejection rate.  The search is seeded with the theory-predicted extremal
// shape (full fixed repeated set) plus random restarts.
//
// Expected shape:
//   * greedy-d1, random-of-d, per-step-greedy, round-robin — the search
//     lands on (large working set, low churn, often fixed order) and
//     extracts Ω(1)-ish rejection: the impossibility proofs, rediscovered
//     by black-box search.
//   * greedy, greedy-left, delayed-cuckoo, sticky — the best found
//     workload still rejects nothing (Theorems 3.1 / 4.3 are worst-case
//     over ALL oblivious adversaries, this searcher included); the only
//     signal left to maximize is a fraction-of-a-step of average latency.
#include <iostream>

#include "common.hpp"
#include "harness/adversary_search.hpp"
#include "policies/factory.hpp"
#include "report/table.hpp"

namespace {

using namespace rlb;

void run() {
  bench::print_banner(
      "E18 / bench_adversary_search",
      "the theorems hold against every oblivious adversary — including a "
      "randomized search armed with the theory's own extremal shapes",
      "baseline rows: Omega(1) rejection at repeated-set-like parameters; "
      "greedy/delayed-cuckoo rows: 0 rejection at every searched point");

  harness::AdversarySearchConfig search;
  search.servers = 512;
  search.steps = 150;
  search.trials = 3;
  search.budget = 48;
  search.seed = 18001;

  report::Table table({"policy", "best rejection found", "best avg latency",
                       "worst workload found", "evaluations"});
  for (const std::string name :
       {"greedy", "greedy-left", "delayed-cuckoo", "sticky", "greedy-d1",
        "random-of-d", "per-step-greedy", "round-robin"}) {
    const bench::BalancerFactory make_balancer = [name](std::uint64_t seed) {
      policies::PolicyConfig config;
      config.servers = 512;
      config.replication = 2;
      config.processing_rate = name == "delayed-cuckoo" ? 8 : 2;
      config.queue_capacity = name == "delayed-cuckoo" ? 0 : 10;
      config.seed = seed;
      return policies::make_policy(name, config);
    };
    const harness::AdversarySearchResult result =
        harness::search_adversary(make_balancer, search);
    table.row()
        .cell(name)
        .cell_sci(result.best_rejection)
        .cell(result.best_latency, 3)
        .cell(harness::describe(result.best))
        .cell(static_cast<std::uint64_t>(result.evaluations));
  }
  bench::emit(table);
  std::cout << "\nReading guide: the search maximizes rejection with latency "
               "as tie-break, so a 0.00e+00 rejection row means no workload "
               "in "
            << search.budget
            << " evaluated candidates (including the theory's worst case) "
               "drew blood — the empirical face of a worst-case theorem.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  run();
  return 0;
}
