// Experiment E24 — self-healing repair under load.
//
// The cluster topology of E23 with the repair plane switched on: four
// rlbd-shaped backends behind a cluster::Router hosting a
// RepairCoordinator.  The run starts from a maximally skewed placement
// (initial PlacementDeltas hand every chunk a replica on one overloaded
// backend), then SIGKILLs a different backend mid-run while closed-loop
// clients keep driving.
//
// Measured:
//   * steps_to_safe — 10 ms samples of the live backends' backlog
//     estimates from the kill until check_safe_distribution (Definition
//     3.2) holds again: how long the loss keeps the cluster outside the
//     paper's safe envelope
//   * repair_ms / epochs — wall time and committed placement epochs until
//     every lost replica is re-replicated (chunks_pending back to zero)
//   * client-visible p99 during repair vs quiesced (after repair), the
//     tentpole claim: re-replication must not pause serving
//
// Flags: --requests <n> per phase (default 60000), --connections <c>
// (default 4), --concurrency <k> (default 32), --chunks <n> (default
// 2048), --repair-bytes-per-sec <n> (default 8 MiB/s), plus the shared
// --format/--json/--probes flags.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/router.hpp"
#include "common.hpp"
#include "core/placement.hpp"
#include "core/placement_epoch.hpp"
#include "core/safe_distribution.hpp"
#include "engine/engine.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "repair/migrate_agent.hpp"
#include "stats/histogram.hpp"
#include "stats/rng.hpp"

namespace {

using namespace rlb;
using Clock = std::chrono::steady_clock;

struct RunResult {
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
  std::uint64_t protocol_errors = 0;
  double elapsed_seconds = 0.0;
  stats::CountingHistogram latency_us{200000};
};

/// One rlbd-shaped backend with the repair agent installed.
class Backend {
 public:
  Backend(std::uint32_t backend_id, std::size_t max_connections) {
    engine::EngineConfig config;
    config.servers = 32;
    config.shards = 2;
    config.processing_rate = 4;
    config.seed = 7 + backend_id;
    config.backend_id = backend_id;
    net::ServerConfig net_config;
    net_config.max_connections = max_connections;
    server_ = std::make_unique<net::NetServer>(
        net_config,
        [this](std::uint64_t token, const net::RequestMsg& request) {
          if (!engine_->submit(token, request.request_id, request.key,
                               request.trace)) {
            net::ResponseMsg msg;
            msg.request_id = request.request_id;
            msg.status = net::Status::kError;
            server_->send_response(token, msg);
          }
        });
    engine_ = std::make_unique<engine::ServingEngine>(
        config, [this](const engine::EngineResponse& r) {
          net::ResponseMsg msg;
          msg.request_id = r.request_id;
          msg.status = static_cast<net::Status>(r.status);
          msg.server = static_cast<std::uint32_t>(r.server);
          msg.wait_steps = r.wait_steps;
          server_->send_response(r.conn_token, msg);
        });
    server_->set_stats_handler(
        [this](std::uint64_t token, const net::StatsRequestMsg& msg) {
          if (msg.epoch != 0) engine_->set_placement_epoch(msg.epoch);
          server_->send_stats(token, engine_->snapshot());
        });
    agent_ = std::make_unique<repair::MigrationAgent>(*server_);
    agent_->set_on_migration_in(
        [this](std::uint64_t bytes) { engine_->note_migration_in(bytes); });
    agent_->set_on_migration_out(
        [this](std::uint64_t bytes) { engine_->note_migration_out(bytes); });
    agent_->install();
    engine_->start();
    server_->start();
    agent_->start();
  }

  ~Backend() { stop(); }

  void stop() {
    if (stopped_) return;
    stopped_ = true;
    agent_->stop();
    engine_->stop();
    server_->stop();
  }

  /// SIGKILL-shaped loss: sockets first, so the router sees a drop.
  void kill() {
    if (stopped_) return;
    stopped_ = true;
    server_->stop(/*flush_timeout_ms=*/0);
    agent_->stop();
    engine_->stop();
  }

  std::uint16_t port() const { return server_->port(); }

 private:
  std::unique_ptr<net::NetServer> server_;
  std::unique_ptr<engine::ServingEngine> engine_;
  std::unique_ptr<repair::MigrationAgent> agent_;
  bool stopped_ = false;
};

void client_worker(std::uint16_t port, std::uint64_t quota,
                   std::uint64_t seed, std::size_t concurrency,
                   std::uint64_t id_base, RunResult& result) {
  net::Client client;
  try {
    client.connect("127.0.0.1", port);
  } catch (const std::exception& e) {
    std::cerr << "bench_repair: " << e.what() << "\n";
    result.errors += quota;
    return;
  }
  std::unordered_map<std::uint64_t, Clock::time_point> in_flight;
  stats::Rng rng(seed);
  std::uint64_t next_id = id_base;
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  auto send_one = [&] {
    const std::uint64_t id = next_id++;
    in_flight.emplace(id, Clock::now());
    client.send_request(id, rng.next());
    ++sent;
  };
  try {
    for (std::uint64_t i = 0; i < std::min<std::uint64_t>(concurrency, quota);
         ++i) {
      send_one();
    }
    client.flush();
    net::ResponseMsg response;
    while (completed < quota && client.read_response(response)) {
      const auto it = in_flight.find(response.request_id);
      if (it == in_flight.end()) {
        ++result.protocol_errors;
        break;
      }
      const std::uint64_t us = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                it->second)
              .count());
      in_flight.erase(it);
      ++completed;
      if (response.status == net::Status::kOk) {
        ++result.ok;
        result.latency_us.add(us);
      } else if (net::is_reject(response.status)) {
        ++result.rejected;
      } else {
        ++result.errors;
      }
      if (sent < quota) {
        send_one();
        client.flush();
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "bench_repair: " << e.what() << "\n";
    ++result.protocol_errors;
  }
  client.close();
}

RunResult drive(std::uint16_t port, std::uint64_t requests,
                std::size_t connections, std::size_t concurrency) {
  std::vector<RunResult> partials(connections);
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (std::size_t w = 0; w < connections; ++w) {
    const std::uint64_t quota =
        requests / connections + (w < requests % connections ? 1 : 0);
    threads.emplace_back([&, w, quota] {
      client_worker(port, quota, 100 + w, concurrency,
                    (static_cast<std::uint64_t>(w) << 40) + 1, partials[w]);
    });
  }
  for (auto& thread : threads) thread.join();
  RunResult total;
  total.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (const RunResult& partial : partials) {
    total.ok += partial.ok;
    total.rejected += partial.rejected;
    total.errors += partial.errors;
    total.protocol_errors += partial.protocol_errors;
    total.latency_us.merge(partial.latency_us);
  }
  return total;
}

bool wait_live(const cluster::Router& router, std::size_t want) {
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  while (Clock::now() < deadline) {
    if (router.membership().live_count() == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

/// Maximal skew over the base placement: every chunk that does not
/// already have a replica on `hot` gets its first replica remapped there,
/// one single-remap delta per chunk (epochs 1..k).
std::vector<core::PlacementDelta> skew_onto(const core::Placement& base,
                                            std::uint64_t chunks,
                                            core::ServerId hot) {
  std::vector<core::PlacementDelta> deltas;
  std::uint64_t epoch = 0;
  for (std::uint64_t chunk = 0; chunk < chunks; ++chunk) {
    const core::ChoiceList cl = base.choices(chunk);
    if (cl.contains(hot)) continue;
    core::ChunkRemap remap;
    remap.chunk = chunk;
    remap.from = cl[0];
    remap.to = hot;
    core::PlacementDelta delta;
    delta.epoch = ++epoch;
    delta.remaps.push_back(remap);
    deltas.push_back(delta);
  }
  return deltas;
}

/// Chunks whose skewed choice set contains `backend`: the repair workload
/// once that backend dies.
std::uint64_t chunks_on(const core::Placement& base,
                        const std::vector<core::PlacementDelta>& skew,
                        std::uint64_t chunks, core::ServerId backend) {
  std::uint64_t moved_off = 0;
  std::uint64_t count = 0;
  for (const core::PlacementDelta& delta : skew) {
    for (const core::ChunkRemap& remap : delta.remaps) {
      if (remap.from == backend) ++moved_off;
    }
  }
  for (std::uint64_t chunk = 0; chunk < chunks; ++chunk) {
    if (base.choices(chunk).contains(backend)) ++count;
  }
  return count - moved_off;
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  std::uint64_t requests = 60000;
  std::size_t connections = 4;
  std::size_t concurrency = 32;
  std::uint64_t chunks = 2048;
  std::uint64_t repair_bps = 8ull << 20;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--requests" && i + 1 < argc) {
      requests = std::stoull(argv[++i]);
    } else if (flag == "--connections" && i + 1 < argc) {
      connections = std::stoull(argv[++i]);
    } else if (flag == "--concurrency" && i + 1 < argc) {
      concurrency = std::stoull(argv[++i]);
    } else if (flag == "--chunks" && i + 1 < argc) {
      chunks = std::stoull(argv[++i]);
    } else if (flag == "--repair-bytes-per-sec" && i + 1 < argc) {
      repair_bps = std::stoull(argv[++i]);
    }
  }

  rlb::bench::print_banner(
      "E24 self-healing repair under load",
      "from a maximally skewed placement, a mid-run backend SIGKILL leaves "
      "every chunk on it under-replicated; the repair plane re-replicates "
      "live (throttled MIGRATE streams, versioned epoch commits) while "
      "closed-loop clients keep driving",
      "repair completes with zero client errors; p99 during repair stays "
      "within a small factor of the quiesced p99; the backlog distribution "
      "returns to the Definition-3.2 safe envelope without a restart");
  rlb::bench::json_value("requests", requests);
  rlb::bench::json_value("connections", static_cast<std::uint64_t>(connections));
  rlb::bench::json_value("concurrency", static_cast<std::uint64_t>(concurrency));
  rlb::bench::json_value("chunks", chunks);
  rlb::bench::json_value("repair_bytes_per_sec", repair_bps);

  constexpr std::size_t kBackends = 4;
  constexpr std::uint32_t kHot = 1;   // overloaded by the initial skew
  constexpr std::uint32_t kDead = 0;  // killed mid-run

  std::vector<std::unique_ptr<Backend>> backends;
  for (std::uint32_t i = 0; i < kBackends; ++i) {
    backends.push_back(std::make_unique<Backend>(i, connections + 8));
  }

  cluster::RouterConfig config;
  for (const auto& backend : backends) {
    config.backends.push_back({"127.0.0.1", backend->port()});
  }
  config.replication = 2;
  config.chunks = chunks;
  config.heartbeat_interval_ms = 10;
  config.heartbeat_timeout_ms = 50;
  config.max_connections = connections + 8;
  config.repair.enabled = true;
  config.repair.max_concurrent = 4;
  config.repair.bytes_per_sec = repair_bps;
  config.repair.bytes_per_chunk = 4096;
  config.repair.down_grace_ms = 100;
  config.repair.scan_interval_ms = 20;

  const core::Placement base(kBackends, config.replication, config.seed);
  const std::vector<core::PlacementDelta> skew =
      skew_onto(base, chunks, kHot);
  config.initial_deltas = skew;
  const std::uint64_t skew_epochs = skew.size();
  const std::uint64_t lost_replicas = chunks_on(base, skew, chunks, kDead);
  rlb::bench::json_value("skew_epochs", skew_epochs);
  rlb::bench::json_value("lost_replicas", lost_replicas);

  cluster::Router router(config);
  router.start();
  if (!wait_live(router, kBackends)) {
    std::cerr << "bench_repair: backends never became live\n";
    return 1;
  }

  // Backlog sampler: every 10 ms, Definition 3.2 over the live backends'
  // load estimates.  One sample = one "step" of the steps-to-safe metric.
  std::atomic<bool> sampling{true};
  std::atomic<std::uint64_t> kill_sample{0};
  std::atomic<std::uint64_t> safe_sample{0};  // first safe sample post-kill
  std::atomic<std::uint64_t> sample_count{0};
  std::thread sampler([&] {
    while (sampling.load(std::memory_order_relaxed)) {
      std::vector<std::uint32_t> backlogs;
      for (std::uint32_t id = 0; id < kBackends; ++id) {
        if (!router.membership().is_live(id)) continue;
        backlogs.push_back(static_cast<std::uint32_t>(
            std::min<std::uint64_t>(router.membership().view(id).load_estimate,
                                    0xFFFFFFFFull)));
      }
      const std::uint64_t n = sample_count.fetch_add(1) + 1;
      const core::SafetyReport report = core::check_safe_distribution(backlogs);
      if (report.safe && kill_sample.load() != 0 && safe_sample.load() == 0) {
        safe_sample.store(n);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  // Phase A: load through the kill and the whole repair window.
  std::atomic<double> repair_ms{0.0};
  std::thread chaos([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    kill_sample.store(std::max<std::uint64_t>(sample_count.load(), 1));
    const auto t_kill = Clock::now();
    backends[kDead]->kill();
    const auto deadline = Clock::now() + std::chrono::seconds(60);
    while (Clock::now() < deadline) {
      const net::RepairStats r = router.repair_stats();
      if (r.migrations_done >= lost_replicas && r.chunks_pending == 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    repair_ms.store(
        std::chrono::duration<double, std::milli>(Clock::now() - t_kill)
            .count());
  });
  const RunResult during =
      drive(router.port(), requests, connections, concurrency);
  chaos.join();

  // Phase B: quiesced baseline on the repaired cluster.
  const RunResult after =
      drive(router.port(), requests, connections, concurrency);

  sampling.store(false);
  sampler.join();

  const net::RepairStats repair = router.repair_stats();
  const std::uint64_t epochs_total = router.placement_epoch();
  const std::uint64_t steps_to_safe =
      safe_sample.load() != 0 ? safe_sample.load() - kill_sample.load() : 0;
  rlb::bench::json_value("migrations_done", repair.migrations_done);
  rlb::bench::json_value("migrations_failed", repair.migrations_failed);
  rlb::bench::json_value("repair_bytes", repair.bytes_sent);
  rlb::bench::json_value("repair_ms", repair_ms.load());
  rlb::bench::json_value("epochs_committed", epochs_total - skew_epochs);
  rlb::bench::json_value("steps_to_safe_10ms", steps_to_safe);
  rlb::bench::json_value("safe_regained",
                         static_cast<std::uint64_t>(safe_sample.load() != 0));

  report::Table table({"phase", "throughput_rps", "reject_rate", "p50_us",
                       "p95_us", "p99_us", "errors", "protocol_errors"});
  for (const auto& [phase, r] :
       {std::pair<const char*, const RunResult&>{"during-repair", during},
        std::pair<const char*, const RunResult&>{"quiesced", after}}) {
    const std::uint64_t answered = r.ok + r.rejected;
    const double throughput =
        r.elapsed_seconds > 0
            ? static_cast<double>(answered) / r.elapsed_seconds
            : 0.0;
    const double reject_rate =
        answered
            ? static_cast<double>(r.rejected) / static_cast<double>(answered)
            : 0.0;
    table.row()
        .cell(phase)
        .cell(throughput, 0)
        .cell_sci(reject_rate)
        .cell(r.latency_us.quantile(0.50))
        .cell(r.latency_us.quantile(0.95))
        .cell(r.latency_us.quantile(0.99))
        .cell(r.errors)
        .cell(r.protocol_errors);
  }
  rlb::bench::emit(table);

  router.stop();
  for (auto& backend : backends) backend->stop();
  return 0;
}
