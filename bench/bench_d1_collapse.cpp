// Experiment E3 — the d = 1 impossibility (Section 1, formalized in [34]).
//
// Without replication, the servers that receive more than g requests from
// the repeated set receive them EVERY step; their queues fill and stay
// full, so a constant fraction of requests is rejected — no matter how
// large the queues are.
//
// We sweep the queue length q over two orders of magnitude at fixed m and
// show the steady-state rejection rate does not improve; for contrast the
// same configuration with d = 2 (greedy) is clean, and d = 1 on FRESH
// traffic is also fine (the collapse needs reappearance).
#include <iostream>

#include "common.hpp"
#include "policies/greedy.hpp"
#include "report/table.hpp"
#include "workloads/fresh_uniform.hpp"
#include "workloads/repeated_set.hpp"

namespace {

using namespace rlb;

void run() {
  bench::print_banner(
      "E3 / bench_d1_collapse (Section 1 / Wang et al. [34])",
      "d = 1 on a repeated working set: rejection rate Omega(1) for ANY "
      "queue length q",
      "rejection rate flat (~constant) as q grows 4 -> 256; d = 2 row at "
      "q = 8 is ~zero; d = 1 on fresh traffic is near zero");

  constexpr std::size_t kM = 1024;
  constexpr unsigned kG = 2;
  constexpr std::size_t kSteps = 400;
  constexpr std::size_t kTrials = 8;

  core::SimConfig sim;
  sim.steps = kSteps;

  report::Table table({"workload", "d", "q", "rejection(pooled)",
                       "avg_latency", "mean_backlog", "max_backlog"});

  auto add_row = [&](const std::string& workload_name, unsigned d,
                     std::size_t q, bool fresh) {
    const bench::BalancerFactory make_balancer = [=](std::uint64_t seed) {
      policies::SingleQueueConfig config;
      config.servers = kM;
      config.replication = d;
      config.processing_rate = kG;
      config.queue_capacity = q;
      config.seed = seed;
      config.overflow = policies::OverflowPolicy::kRejectArrival;
      return std::make_unique<policies::GreedyBalancer>(config);
    };
    const bench::WorkloadFactory make_workload =
        [=](std::uint64_t seed) -> std::unique_ptr<core::Workload> {
      if (fresh) return std::make_unique<workloads::FreshUniformWorkload>(kM);
      return std::make_unique<workloads::RepeatedSetWorkload>(
          kM, 1ULL << 40, stats::derive_seed(seed, 3));
    };
    const bench::TrialAggregate agg = bench::run_trials(
        kTrials, 3000 + q + d, make_balancer, make_workload, sim);
    table.row()
        .cell(workload_name)
        .cell(d)
        .cell(static_cast<std::uint64_t>(q))
        .cell_sci(agg.pooled_rejection_rate())
        .cell(agg.average_latency.mean())
        .cell(agg.mean_backlog.mean())
        .cell(agg.max_backlog.mean(), 1);
  };

  for (const std::size_t q : {4u, 16u, 64u, 256u}) {
    add_row("repeated", 1, q, /*fresh=*/false);
  }
  add_row("repeated", 2, 8, /*fresh=*/false);   // greedy d=2 contrast
  add_row("fresh", 1, 16, /*fresh=*/true);      // fresh-traffic contrast

  bench::emit(table);
  std::cout << "\nReading guide: growing q only moves WHERE the overloaded "
               "queues saturate, not WHETHER they do — the rejection rate "
               "plateau is the [34] impossibility.  The avg latency grows "
               "with q because surviving requests sit in ever-longer queues.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rlb::bench::init_output(argc, argv);
  run();
  return 0;
}
