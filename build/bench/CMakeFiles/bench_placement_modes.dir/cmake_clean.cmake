file(REMOVE_RECURSE
  "CMakeFiles/bench_placement_modes.dir/bench_placement_modes.cpp.o"
  "CMakeFiles/bench_placement_modes.dir/bench_placement_modes.cpp.o.d"
  "bench_placement_modes"
  "bench_placement_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_placement_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
