# Empty dependencies file for bench_placement_modes.
# This may be replaced when dependencies are built.
