# Empty dependencies file for rlb_bench_common.
# This may be replaced when dependencies are built.
