file(REMOVE_RECURSE
  "CMakeFiles/rlb_bench_common.dir/common.cpp.o"
  "CMakeFiles/rlb_bench_common.dir/common.cpp.o.d"
  "librlb_bench_common.a"
  "librlb_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlb_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
