file(REMOVE_RECURSE
  "librlb_bench_common.a"
)
