# Empty dependencies file for bench_p_queue_tail.
# This may be replaced when dependencies are built.
