file(REMOVE_RECURSE
  "CMakeFiles/bench_p_queue_tail.dir/bench_p_queue_tail.cpp.o"
  "CMakeFiles/bench_p_queue_tail.dir/bench_p_queue_tail.cpp.o.d"
  "bench_p_queue_tail"
  "bench_p_queue_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p_queue_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
