file(REMOVE_RECURSE
  "CMakeFiles/bench_delayed_cuckoo.dir/bench_delayed_cuckoo.cpp.o"
  "CMakeFiles/bench_delayed_cuckoo.dir/bench_delayed_cuckoo.cpp.o.d"
  "bench_delayed_cuckoo"
  "bench_delayed_cuckoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delayed_cuckoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
