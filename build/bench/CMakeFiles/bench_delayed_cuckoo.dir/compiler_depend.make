# Empty compiler generated dependencies file for bench_delayed_cuckoo.
# This may be replaced when dependencies are built.
