file(REMOVE_RECURSE
  "CMakeFiles/bench_safe_distribution.dir/bench_safe_distribution.cpp.o"
  "CMakeFiles/bench_safe_distribution.dir/bench_safe_distribution.cpp.o.d"
  "bench_safe_distribution"
  "bench_safe_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_safe_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
