# Empty dependencies file for bench_safe_distribution.
# This may be replaced when dependencies are built.
