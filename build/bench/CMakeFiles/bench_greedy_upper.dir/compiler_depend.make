# Empty compiler generated dependencies file for bench_greedy_upper.
# This may be replaced when dependencies are built.
