file(REMOVE_RECURSE
  "CMakeFiles/bench_greedy_upper.dir/bench_greedy_upper.cpp.o"
  "CMakeFiles/bench_greedy_upper.dir/bench_greedy_upper.cpp.o.d"
  "bench_greedy_upper"
  "bench_greedy_upper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_greedy_upper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
