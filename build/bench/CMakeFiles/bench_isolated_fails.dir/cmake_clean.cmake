file(REMOVE_RECURSE
  "CMakeFiles/bench_isolated_fails.dir/bench_isolated_fails.cpp.o"
  "CMakeFiles/bench_isolated_fails.dir/bench_isolated_fails.cpp.o.d"
  "bench_isolated_fails"
  "bench_isolated_fails.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_isolated_fails.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
