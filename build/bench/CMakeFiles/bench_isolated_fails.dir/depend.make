# Empty dependencies file for bench_isolated_fails.
# This may be replaced when dependencies are built.
