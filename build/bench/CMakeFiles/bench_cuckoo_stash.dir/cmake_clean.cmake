file(REMOVE_RECURSE
  "CMakeFiles/bench_cuckoo_stash.dir/bench_cuckoo_stash.cpp.o"
  "CMakeFiles/bench_cuckoo_stash.dir/bench_cuckoo_stash.cpp.o.d"
  "bench_cuckoo_stash"
  "bench_cuckoo_stash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cuckoo_stash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
