# Empty compiler generated dependencies file for bench_cuckoo_stash.
# This may be replaced when dependencies are built.
