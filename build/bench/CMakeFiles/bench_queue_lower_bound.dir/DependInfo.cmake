
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_queue_lower_bound.cpp" "bench/CMakeFiles/bench_queue_lower_bound.dir/bench_queue_lower_bound.cpp.o" "gcc" "bench/CMakeFiles/bench_queue_lower_bound.dir/bench_queue_lower_bound.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/rlb_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/rlb_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/rlb_report.dir/DependInfo.cmake"
  "/root/repo/build/src/ballsbins/CMakeFiles/rlb_ballsbins.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rlb_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/rlb_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rlb_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/cuckoo/CMakeFiles/rlb_cuckoo.dir/DependInfo.cmake"
  "/root/repo/build/src/supermarket/CMakeFiles/rlb_supermarket.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/rlb_store.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rlb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/rlb_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rlb_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
