file(REMOVE_RECURSE
  "CMakeFiles/bench_d1_collapse.dir/bench_d1_collapse.cpp.o"
  "CMakeFiles/bench_d1_collapse.dir/bench_d1_collapse.cpp.o.d"
  "bench_d1_collapse"
  "bench_d1_collapse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_d1_collapse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
