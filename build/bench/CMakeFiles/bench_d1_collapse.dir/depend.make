# Empty dependencies file for bench_d1_collapse.
# This may be replaced when dependencies are built.
