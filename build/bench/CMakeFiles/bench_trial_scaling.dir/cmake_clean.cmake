file(REMOVE_RECURSE
  "CMakeFiles/bench_trial_scaling.dir/bench_trial_scaling.cpp.o"
  "CMakeFiles/bench_trial_scaling.dir/bench_trial_scaling.cpp.o.d"
  "bench_trial_scaling"
  "bench_trial_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trial_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
