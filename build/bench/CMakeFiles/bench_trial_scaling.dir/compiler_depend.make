# Empty compiler generated dependencies file for bench_trial_scaling.
# This may be replaced when dependencies are built.
