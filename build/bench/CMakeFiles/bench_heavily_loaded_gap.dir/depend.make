# Empty dependencies file for bench_heavily_loaded_gap.
# This may be replaced when dependencies are built.
