file(REMOVE_RECURSE
  "CMakeFiles/bench_heavily_loaded_gap.dir/bench_heavily_loaded_gap.cpp.o"
  "CMakeFiles/bench_heavily_loaded_gap.dir/bench_heavily_loaded_gap.cpp.o.d"
  "bench_heavily_loaded_gap"
  "bench_heavily_loaded_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heavily_loaded_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
