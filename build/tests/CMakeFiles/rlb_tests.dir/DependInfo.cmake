
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ablations_and_extras.cpp" "tests/CMakeFiles/rlb_tests.dir/test_ablations_and_extras.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_ablations_and_extras.cpp.o.d"
  "/root/repo/tests/test_adversary_search.cpp" "tests/CMakeFiles/rlb_tests.dir/test_adversary_search.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_adversary_search.cpp.o.d"
  "/root/repo/tests/test_allocator.cpp" "tests/CMakeFiles/rlb_tests.dir/test_allocator.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_allocator.cpp.o.d"
  "/root/repo/tests/test_ballsbins.cpp" "tests/CMakeFiles/rlb_tests.dir/test_ballsbins.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_ballsbins.cpp.o.d"
  "/root/repo/tests/test_batched_and_timeseries.cpp" "tests/CMakeFiles/rlb_tests.dir/test_batched_and_timeseries.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_batched_and_timeseries.cpp.o.d"
  "/root/repo/tests/test_batched_ballsbins.cpp" "tests/CMakeFiles/rlb_tests.dir/test_batched_ballsbins.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_batched_ballsbins.cpp.o.d"
  "/root/repo/tests/test_capacitated.cpp" "tests/CMakeFiles/rlb_tests.dir/test_capacitated.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_capacitated.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/rlb_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_cross_policy_properties.cpp" "tests/CMakeFiles/rlb_tests.dir/test_cross_policy_properties.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_cross_policy_properties.cpp.o.d"
  "/root/repo/tests/test_cuckoo_table.cpp" "tests/CMakeFiles/rlb_tests.dir/test_cuckoo_table.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_cuckoo_table.cpp.o.d"
  "/root/repo/tests/test_dary_cuckoo.cpp" "tests/CMakeFiles/rlb_tests.dir/test_dary_cuckoo.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_dary_cuckoo.cpp.o.d"
  "/root/repo/tests/test_delayed_cuckoo.cpp" "tests/CMakeFiles/rlb_tests.dir/test_delayed_cuckoo.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_delayed_cuckoo.cpp.o.d"
  "/root/repo/tests/test_delayed_cuckoo_differential.cpp" "tests/CMakeFiles/rlb_tests.dir/test_delayed_cuckoo_differential.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_delayed_cuckoo_differential.cpp.o.d"
  "/root/repo/tests/test_differential.cpp" "tests/CMakeFiles/rlb_tests.dir/test_differential.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_differential.cpp.o.d"
  "/root/repo/tests/test_distributions.cpp" "tests/CMakeFiles/rlb_tests.dir/test_distributions.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_distributions.cpp.o.d"
  "/root/repo/tests/test_factory.cpp" "tests/CMakeFiles/rlb_tests.dir/test_factory.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_factory.cpp.o.d"
  "/root/repo/tests/test_fit.cpp" "tests/CMakeFiles/rlb_tests.dir/test_fit.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_fit.cpp.o.d"
  "/root/repo/tests/test_greedy.cpp" "tests/CMakeFiles/rlb_tests.dir/test_greedy.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_greedy.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/rlb_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_hash.cpp" "tests/CMakeFiles/rlb_tests.dir/test_hash.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_hash.cpp.o.d"
  "/root/repo/tests/test_heavily_loaded.cpp" "tests/CMakeFiles/rlb_tests.dir/test_heavily_loaded.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_heavily_loaded.cpp.o.d"
  "/root/repo/tests/test_histogram.cpp" "tests/CMakeFiles/rlb_tests.dir/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_histogram.cpp.o.d"
  "/root/repo/tests/test_isolated_and_baselines.cpp" "tests/CMakeFiles/rlb_tests.dir/test_isolated_and_baselines.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_isolated_and_baselines.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/rlb_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_migrating.cpp" "tests/CMakeFiles/rlb_tests.dir/test_migrating.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_migrating.cpp.o.d"
  "/root/repo/tests/test_new_policies.cpp" "tests/CMakeFiles/rlb_tests.dir/test_new_policies.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_new_policies.cpp.o.d"
  "/root/repo/tests/test_offline_assignment.cpp" "tests/CMakeFiles/rlb_tests.dir/test_offline_assignment.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_offline_assignment.cpp.o.d"
  "/root/repo/tests/test_placement.cpp" "tests/CMakeFiles/rlb_tests.dir/test_placement.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_placement.cpp.o.d"
  "/root/repo/tests/test_placement_graph.cpp" "tests/CMakeFiles/rlb_tests.dir/test_placement_graph.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_placement_graph.cpp.o.d"
  "/root/repo/tests/test_reappearance_profile.cpp" "tests/CMakeFiles/rlb_tests.dir/test_reappearance_profile.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_reappearance_profile.cpp.o.d"
  "/root/repo/tests/test_ring_and_sliding.cpp" "tests/CMakeFiles/rlb_tests.dir/test_ring_and_sliding.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_ring_and_sliding.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/rlb_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_safe_distribution.cpp" "tests/CMakeFiles/rlb_tests.dir/test_safe_distribution.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_safe_distribution.cpp.o.d"
  "/root/repo/tests/test_server_queue.cpp" "tests/CMakeFiles/rlb_tests.dir/test_server_queue.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_server_queue.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/rlb_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_sticky.cpp" "tests/CMakeFiles/rlb_tests.dir/test_sticky.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_sticky.cpp.o.d"
  "/root/repo/tests/test_store.cpp" "tests/CMakeFiles/rlb_tests.dir/test_store.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_store.cpp.o.d"
  "/root/repo/tests/test_summary.cpp" "tests/CMakeFiles/rlb_tests.dir/test_summary.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_summary.cpp.o.d"
  "/root/repo/tests/test_supermarket.cpp" "tests/CMakeFiles/rlb_tests.dir/test_supermarket.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_supermarket.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/rlb_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_theorem_shapes.cpp" "tests/CMakeFiles/rlb_tests.dir/test_theorem_shapes.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_theorem_shapes.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/rlb_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_trace_persistence.cpp" "tests/CMakeFiles/rlb_tests.dir/test_trace_persistence.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_trace_persistence.cpp.o.d"
  "/root/repo/tests/test_umbrella_header.cpp" "tests/CMakeFiles/rlb_tests.dir/test_umbrella_header.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_umbrella_header.cpp.o.d"
  "/root/repo/tests/test_varying_load.cpp" "tests/CMakeFiles/rlb_tests.dir/test_varying_load.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_varying_load.cpp.o.d"
  "/root/repo/tests/test_weighted_ballsbins.cpp" "tests/CMakeFiles/rlb_tests.dir/test_weighted_ballsbins.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_weighted_ballsbins.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/rlb_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/rlb_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/rlb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/rlb_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rlb_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/rlb_report.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rlb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ballsbins/CMakeFiles/rlb_ballsbins.dir/DependInfo.cmake"
  "/root/repo/build/src/cuckoo/CMakeFiles/rlb_cuckoo.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rlb_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/rlb_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/supermarket/CMakeFiles/rlb_supermarket.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/rlb_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/rlb_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
