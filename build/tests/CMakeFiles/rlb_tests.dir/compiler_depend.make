# Empty compiler generated dependencies file for rlb_tests.
# This may be replaced when dependencies are built.
