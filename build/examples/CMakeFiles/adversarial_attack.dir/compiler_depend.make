# Empty compiler generated dependencies file for adversarial_attack.
# This may be replaced when dependencies are built.
