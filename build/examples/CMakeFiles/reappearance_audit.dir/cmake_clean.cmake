file(REMOVE_RECURSE
  "CMakeFiles/reappearance_audit.dir/reappearance_audit.cpp.o"
  "CMakeFiles/reappearance_audit.dir/reappearance_audit.cpp.o.d"
  "reappearance_audit"
  "reappearance_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reappearance_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
