# Empty compiler generated dependencies file for reappearance_audit.
# This may be replaced when dependencies are built.
