file(REMOVE_RECURSE
  "CMakeFiles/kvstore_tailsim.dir/kvstore_tailsim.cpp.o"
  "CMakeFiles/kvstore_tailsim.dir/kvstore_tailsim.cpp.o.d"
  "kvstore_tailsim"
  "kvstore_tailsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_tailsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
