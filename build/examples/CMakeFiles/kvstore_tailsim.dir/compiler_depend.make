# Empty compiler generated dependencies file for kvstore_tailsim.
# This may be replaced when dependencies are built.
