# Empty dependencies file for rlb_stats.
# This may be replaced when dependencies are built.
