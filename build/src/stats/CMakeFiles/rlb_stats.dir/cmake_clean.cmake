file(REMOVE_RECURSE
  "CMakeFiles/rlb_stats.dir/distributions.cpp.o"
  "CMakeFiles/rlb_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/rlb_stats.dir/fit.cpp.o"
  "CMakeFiles/rlb_stats.dir/fit.cpp.o.d"
  "CMakeFiles/rlb_stats.dir/histogram.cpp.o"
  "CMakeFiles/rlb_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/rlb_stats.dir/rng.cpp.o"
  "CMakeFiles/rlb_stats.dir/rng.cpp.o.d"
  "CMakeFiles/rlb_stats.dir/summary.cpp.o"
  "CMakeFiles/rlb_stats.dir/summary.cpp.o.d"
  "librlb_stats.a"
  "librlb_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlb_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
