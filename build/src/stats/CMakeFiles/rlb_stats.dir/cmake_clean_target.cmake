file(REMOVE_RECURSE
  "librlb_stats.a"
)
