file(REMOVE_RECURSE
  "librlb_store.a"
)
