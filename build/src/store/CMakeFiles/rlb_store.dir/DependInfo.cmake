
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/key_mapper.cpp" "src/store/CMakeFiles/rlb_store.dir/key_mapper.cpp.o" "gcc" "src/store/CMakeFiles/rlb_store.dir/key_mapper.cpp.o.d"
  "/root/repo/src/store/key_workload_adapter.cpp" "src/store/CMakeFiles/rlb_store.dir/key_workload_adapter.cpp.o" "gcc" "src/store/CMakeFiles/rlb_store.dir/key_workload_adapter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rlb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/rlb_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rlb_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
