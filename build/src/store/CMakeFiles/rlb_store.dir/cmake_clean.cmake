file(REMOVE_RECURSE
  "CMakeFiles/rlb_store.dir/key_mapper.cpp.o"
  "CMakeFiles/rlb_store.dir/key_mapper.cpp.o.d"
  "CMakeFiles/rlb_store.dir/key_workload_adapter.cpp.o"
  "CMakeFiles/rlb_store.dir/key_workload_adapter.cpp.o.d"
  "librlb_store.a"
  "librlb_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlb_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
