# Empty dependencies file for rlb_store.
# This may be replaced when dependencies are built.
