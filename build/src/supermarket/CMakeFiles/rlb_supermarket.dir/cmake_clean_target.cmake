file(REMOVE_RECURSE
  "librlb_supermarket.a"
)
