file(REMOVE_RECURSE
  "CMakeFiles/rlb_supermarket.dir/event_sim.cpp.o"
  "CMakeFiles/rlb_supermarket.dir/event_sim.cpp.o.d"
  "librlb_supermarket.a"
  "librlb_supermarket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlb_supermarket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
