# Empty compiler generated dependencies file for rlb_supermarket.
# This may be replaced when dependencies are built.
