file(REMOVE_RECURSE
  "CMakeFiles/rlb_cuckoo.dir/allocator.cpp.o"
  "CMakeFiles/rlb_cuckoo.dir/allocator.cpp.o.d"
  "CMakeFiles/rlb_cuckoo.dir/capacitated.cpp.o"
  "CMakeFiles/rlb_cuckoo.dir/capacitated.cpp.o.d"
  "CMakeFiles/rlb_cuckoo.dir/cuckoo_table.cpp.o"
  "CMakeFiles/rlb_cuckoo.dir/cuckoo_table.cpp.o.d"
  "CMakeFiles/rlb_cuckoo.dir/dary_table.cpp.o"
  "CMakeFiles/rlb_cuckoo.dir/dary_table.cpp.o.d"
  "CMakeFiles/rlb_cuckoo.dir/offline_assignment.cpp.o"
  "CMakeFiles/rlb_cuckoo.dir/offline_assignment.cpp.o.d"
  "librlb_cuckoo.a"
  "librlb_cuckoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlb_cuckoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
