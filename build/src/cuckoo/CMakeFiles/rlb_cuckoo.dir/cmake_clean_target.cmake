file(REMOVE_RECURSE
  "librlb_cuckoo.a"
)
