# Empty compiler generated dependencies file for rlb_cuckoo.
# This may be replaced when dependencies are built.
