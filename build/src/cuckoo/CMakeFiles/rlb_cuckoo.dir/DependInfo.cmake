
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cuckoo/allocator.cpp" "src/cuckoo/CMakeFiles/rlb_cuckoo.dir/allocator.cpp.o" "gcc" "src/cuckoo/CMakeFiles/rlb_cuckoo.dir/allocator.cpp.o.d"
  "/root/repo/src/cuckoo/capacitated.cpp" "src/cuckoo/CMakeFiles/rlb_cuckoo.dir/capacitated.cpp.o" "gcc" "src/cuckoo/CMakeFiles/rlb_cuckoo.dir/capacitated.cpp.o.d"
  "/root/repo/src/cuckoo/cuckoo_table.cpp" "src/cuckoo/CMakeFiles/rlb_cuckoo.dir/cuckoo_table.cpp.o" "gcc" "src/cuckoo/CMakeFiles/rlb_cuckoo.dir/cuckoo_table.cpp.o.d"
  "/root/repo/src/cuckoo/dary_table.cpp" "src/cuckoo/CMakeFiles/rlb_cuckoo.dir/dary_table.cpp.o" "gcc" "src/cuckoo/CMakeFiles/rlb_cuckoo.dir/dary_table.cpp.o.d"
  "/root/repo/src/cuckoo/offline_assignment.cpp" "src/cuckoo/CMakeFiles/rlb_cuckoo.dir/offline_assignment.cpp.o" "gcc" "src/cuckoo/CMakeFiles/rlb_cuckoo.dir/offline_assignment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/rlb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/rlb_hashing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
