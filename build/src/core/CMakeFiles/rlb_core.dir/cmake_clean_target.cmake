file(REMOVE_RECURSE
  "librlb_core.a"
)
