file(REMOVE_RECURSE
  "CMakeFiles/rlb_core.dir/balancer.cpp.o"
  "CMakeFiles/rlb_core.dir/balancer.cpp.o.d"
  "CMakeFiles/rlb_core.dir/cluster.cpp.o"
  "CMakeFiles/rlb_core.dir/cluster.cpp.o.d"
  "CMakeFiles/rlb_core.dir/metrics.cpp.o"
  "CMakeFiles/rlb_core.dir/metrics.cpp.o.d"
  "CMakeFiles/rlb_core.dir/placement.cpp.o"
  "CMakeFiles/rlb_core.dir/placement.cpp.o.d"
  "CMakeFiles/rlb_core.dir/placement_graph.cpp.o"
  "CMakeFiles/rlb_core.dir/placement_graph.cpp.o.d"
  "CMakeFiles/rlb_core.dir/safe_distribution.cpp.o"
  "CMakeFiles/rlb_core.dir/safe_distribution.cpp.o.d"
  "CMakeFiles/rlb_core.dir/server_queue.cpp.o"
  "CMakeFiles/rlb_core.dir/server_queue.cpp.o.d"
  "CMakeFiles/rlb_core.dir/simulator.cpp.o"
  "CMakeFiles/rlb_core.dir/simulator.cpp.o.d"
  "CMakeFiles/rlb_core.dir/timeseries.cpp.o"
  "CMakeFiles/rlb_core.dir/timeseries.cpp.o.d"
  "librlb_core.a"
  "librlb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
