# Empty dependencies file for rlb_core.
# This may be replaced when dependencies are built.
