
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/balancer.cpp" "src/core/CMakeFiles/rlb_core.dir/balancer.cpp.o" "gcc" "src/core/CMakeFiles/rlb_core.dir/balancer.cpp.o.d"
  "/root/repo/src/core/cluster.cpp" "src/core/CMakeFiles/rlb_core.dir/cluster.cpp.o" "gcc" "src/core/CMakeFiles/rlb_core.dir/cluster.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/rlb_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/rlb_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/rlb_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/rlb_core.dir/placement.cpp.o.d"
  "/root/repo/src/core/placement_graph.cpp" "src/core/CMakeFiles/rlb_core.dir/placement_graph.cpp.o" "gcc" "src/core/CMakeFiles/rlb_core.dir/placement_graph.cpp.o.d"
  "/root/repo/src/core/safe_distribution.cpp" "src/core/CMakeFiles/rlb_core.dir/safe_distribution.cpp.o" "gcc" "src/core/CMakeFiles/rlb_core.dir/safe_distribution.cpp.o.d"
  "/root/repo/src/core/server_queue.cpp" "src/core/CMakeFiles/rlb_core.dir/server_queue.cpp.o" "gcc" "src/core/CMakeFiles/rlb_core.dir/server_queue.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/core/CMakeFiles/rlb_core.dir/simulator.cpp.o" "gcc" "src/core/CMakeFiles/rlb_core.dir/simulator.cpp.o.d"
  "/root/repo/src/core/timeseries.cpp" "src/core/CMakeFiles/rlb_core.dir/timeseries.cpp.o" "gcc" "src/core/CMakeFiles/rlb_core.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/rlb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/rlb_hashing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
