# Empty compiler generated dependencies file for rlb_hashing.
# This may be replaced when dependencies are built.
