file(REMOVE_RECURSE
  "librlb_hashing.a"
)
