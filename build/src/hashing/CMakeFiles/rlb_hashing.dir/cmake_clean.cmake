file(REMOVE_RECURSE
  "CMakeFiles/rlb_hashing.dir/hash.cpp.o"
  "CMakeFiles/rlb_hashing.dir/hash.cpp.o.d"
  "CMakeFiles/rlb_hashing.dir/tabulation.cpp.o"
  "CMakeFiles/rlb_hashing.dir/tabulation.cpp.o.d"
  "librlb_hashing.a"
  "librlb_hashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlb_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
