
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policies/batched_greedy.cpp" "src/policies/CMakeFiles/rlb_policies.dir/batched_greedy.cpp.o" "gcc" "src/policies/CMakeFiles/rlb_policies.dir/batched_greedy.cpp.o.d"
  "/root/repo/src/policies/delayed_cuckoo.cpp" "src/policies/CMakeFiles/rlb_policies.dir/delayed_cuckoo.cpp.o" "gcc" "src/policies/CMakeFiles/rlb_policies.dir/delayed_cuckoo.cpp.o.d"
  "/root/repo/src/policies/factory.cpp" "src/policies/CMakeFiles/rlb_policies.dir/factory.cpp.o" "gcc" "src/policies/CMakeFiles/rlb_policies.dir/factory.cpp.o.d"
  "/root/repo/src/policies/greedy.cpp" "src/policies/CMakeFiles/rlb_policies.dir/greedy.cpp.o" "gcc" "src/policies/CMakeFiles/rlb_policies.dir/greedy.cpp.o.d"
  "/root/repo/src/policies/left_greedy.cpp" "src/policies/CMakeFiles/rlb_policies.dir/left_greedy.cpp.o" "gcc" "src/policies/CMakeFiles/rlb_policies.dir/left_greedy.cpp.o.d"
  "/root/repo/src/policies/memory.cpp" "src/policies/CMakeFiles/rlb_policies.dir/memory.cpp.o" "gcc" "src/policies/CMakeFiles/rlb_policies.dir/memory.cpp.o.d"
  "/root/repo/src/policies/migrating.cpp" "src/policies/CMakeFiles/rlb_policies.dir/migrating.cpp.o" "gcc" "src/policies/CMakeFiles/rlb_policies.dir/migrating.cpp.o.d"
  "/root/repo/src/policies/round_robin.cpp" "src/policies/CMakeFiles/rlb_policies.dir/round_robin.cpp.o" "gcc" "src/policies/CMakeFiles/rlb_policies.dir/round_robin.cpp.o.d"
  "/root/repo/src/policies/single_queue_base.cpp" "src/policies/CMakeFiles/rlb_policies.dir/single_queue_base.cpp.o" "gcc" "src/policies/CMakeFiles/rlb_policies.dir/single_queue_base.cpp.o.d"
  "/root/repo/src/policies/threshold.cpp" "src/policies/CMakeFiles/rlb_policies.dir/threshold.cpp.o" "gcc" "src/policies/CMakeFiles/rlb_policies.dir/threshold.cpp.o.d"
  "/root/repo/src/policies/time_step_isolated.cpp" "src/policies/CMakeFiles/rlb_policies.dir/time_step_isolated.cpp.o" "gcc" "src/policies/CMakeFiles/rlb_policies.dir/time_step_isolated.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rlb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cuckoo/CMakeFiles/rlb_cuckoo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rlb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rlb_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/rlb_hashing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
