# Empty compiler generated dependencies file for rlb_policies.
# This may be replaced when dependencies are built.
