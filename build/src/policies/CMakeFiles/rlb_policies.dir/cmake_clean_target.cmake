file(REMOVE_RECURSE
  "librlb_policies.a"
)
