file(REMOVE_RECURSE
  "CMakeFiles/rlb_policies.dir/batched_greedy.cpp.o"
  "CMakeFiles/rlb_policies.dir/batched_greedy.cpp.o.d"
  "CMakeFiles/rlb_policies.dir/delayed_cuckoo.cpp.o"
  "CMakeFiles/rlb_policies.dir/delayed_cuckoo.cpp.o.d"
  "CMakeFiles/rlb_policies.dir/factory.cpp.o"
  "CMakeFiles/rlb_policies.dir/factory.cpp.o.d"
  "CMakeFiles/rlb_policies.dir/greedy.cpp.o"
  "CMakeFiles/rlb_policies.dir/greedy.cpp.o.d"
  "CMakeFiles/rlb_policies.dir/left_greedy.cpp.o"
  "CMakeFiles/rlb_policies.dir/left_greedy.cpp.o.d"
  "CMakeFiles/rlb_policies.dir/memory.cpp.o"
  "CMakeFiles/rlb_policies.dir/memory.cpp.o.d"
  "CMakeFiles/rlb_policies.dir/migrating.cpp.o"
  "CMakeFiles/rlb_policies.dir/migrating.cpp.o.d"
  "CMakeFiles/rlb_policies.dir/round_robin.cpp.o"
  "CMakeFiles/rlb_policies.dir/round_robin.cpp.o.d"
  "CMakeFiles/rlb_policies.dir/single_queue_base.cpp.o"
  "CMakeFiles/rlb_policies.dir/single_queue_base.cpp.o.d"
  "CMakeFiles/rlb_policies.dir/threshold.cpp.o"
  "CMakeFiles/rlb_policies.dir/threshold.cpp.o.d"
  "CMakeFiles/rlb_policies.dir/time_step_isolated.cpp.o"
  "CMakeFiles/rlb_policies.dir/time_step_isolated.cpp.o.d"
  "librlb_policies.a"
  "librlb_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlb_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
