file(REMOVE_RECURSE
  "CMakeFiles/rlb_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/rlb_parallel.dir/thread_pool.cpp.o.d"
  "CMakeFiles/rlb_parallel.dir/trial_runner.cpp.o"
  "CMakeFiles/rlb_parallel.dir/trial_runner.cpp.o.d"
  "librlb_parallel.a"
  "librlb_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlb_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
