file(REMOVE_RECURSE
  "librlb_parallel.a"
)
