# Empty dependencies file for rlb_parallel.
# This may be replaced when dependencies are built.
