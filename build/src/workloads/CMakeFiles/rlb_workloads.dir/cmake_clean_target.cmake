file(REMOVE_RECURSE
  "librlb_workloads.a"
)
