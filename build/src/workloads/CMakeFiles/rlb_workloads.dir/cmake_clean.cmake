file(REMOVE_RECURSE
  "CMakeFiles/rlb_workloads.dir/bursty.cpp.o"
  "CMakeFiles/rlb_workloads.dir/bursty.cpp.o.d"
  "CMakeFiles/rlb_workloads.dir/fresh_uniform.cpp.o"
  "CMakeFiles/rlb_workloads.dir/fresh_uniform.cpp.o.d"
  "CMakeFiles/rlb_workloads.dir/mixed.cpp.o"
  "CMakeFiles/rlb_workloads.dir/mixed.cpp.o.d"
  "CMakeFiles/rlb_workloads.dir/phased_churn.cpp.o"
  "CMakeFiles/rlb_workloads.dir/phased_churn.cpp.o.d"
  "CMakeFiles/rlb_workloads.dir/reappearance_profile.cpp.o"
  "CMakeFiles/rlb_workloads.dir/reappearance_profile.cpp.o.d"
  "CMakeFiles/rlb_workloads.dir/repeated_set.cpp.o"
  "CMakeFiles/rlb_workloads.dir/repeated_set.cpp.o.d"
  "CMakeFiles/rlb_workloads.dir/sliding_window.cpp.o"
  "CMakeFiles/rlb_workloads.dir/sliding_window.cpp.o.d"
  "CMakeFiles/rlb_workloads.dir/trace.cpp.o"
  "CMakeFiles/rlb_workloads.dir/trace.cpp.o.d"
  "CMakeFiles/rlb_workloads.dir/zipf_workload.cpp.o"
  "CMakeFiles/rlb_workloads.dir/zipf_workload.cpp.o.d"
  "librlb_workloads.a"
  "librlb_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlb_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
