# Empty dependencies file for rlb_workloads.
# This may be replaced when dependencies are built.
