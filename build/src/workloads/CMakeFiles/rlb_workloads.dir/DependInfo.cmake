
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bursty.cpp" "src/workloads/CMakeFiles/rlb_workloads.dir/bursty.cpp.o" "gcc" "src/workloads/CMakeFiles/rlb_workloads.dir/bursty.cpp.o.d"
  "/root/repo/src/workloads/fresh_uniform.cpp" "src/workloads/CMakeFiles/rlb_workloads.dir/fresh_uniform.cpp.o" "gcc" "src/workloads/CMakeFiles/rlb_workloads.dir/fresh_uniform.cpp.o.d"
  "/root/repo/src/workloads/mixed.cpp" "src/workloads/CMakeFiles/rlb_workloads.dir/mixed.cpp.o" "gcc" "src/workloads/CMakeFiles/rlb_workloads.dir/mixed.cpp.o.d"
  "/root/repo/src/workloads/phased_churn.cpp" "src/workloads/CMakeFiles/rlb_workloads.dir/phased_churn.cpp.o" "gcc" "src/workloads/CMakeFiles/rlb_workloads.dir/phased_churn.cpp.o.d"
  "/root/repo/src/workloads/reappearance_profile.cpp" "src/workloads/CMakeFiles/rlb_workloads.dir/reappearance_profile.cpp.o" "gcc" "src/workloads/CMakeFiles/rlb_workloads.dir/reappearance_profile.cpp.o.d"
  "/root/repo/src/workloads/repeated_set.cpp" "src/workloads/CMakeFiles/rlb_workloads.dir/repeated_set.cpp.o" "gcc" "src/workloads/CMakeFiles/rlb_workloads.dir/repeated_set.cpp.o.d"
  "/root/repo/src/workloads/sliding_window.cpp" "src/workloads/CMakeFiles/rlb_workloads.dir/sliding_window.cpp.o" "gcc" "src/workloads/CMakeFiles/rlb_workloads.dir/sliding_window.cpp.o.d"
  "/root/repo/src/workloads/trace.cpp" "src/workloads/CMakeFiles/rlb_workloads.dir/trace.cpp.o" "gcc" "src/workloads/CMakeFiles/rlb_workloads.dir/trace.cpp.o.d"
  "/root/repo/src/workloads/zipf_workload.cpp" "src/workloads/CMakeFiles/rlb_workloads.dir/zipf_workload.cpp.o" "gcc" "src/workloads/CMakeFiles/rlb_workloads.dir/zipf_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rlb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rlb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/rlb_hashing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
