# Empty compiler generated dependencies file for rlb_ballsbins.
# This may be replaced when dependencies are built.
