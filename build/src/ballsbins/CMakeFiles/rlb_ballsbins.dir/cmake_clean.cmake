file(REMOVE_RECURSE
  "CMakeFiles/rlb_ballsbins.dir/heavily_loaded.cpp.o"
  "CMakeFiles/rlb_ballsbins.dir/heavily_loaded.cpp.o.d"
  "CMakeFiles/rlb_ballsbins.dir/strategies.cpp.o"
  "CMakeFiles/rlb_ballsbins.dir/strategies.cpp.o.d"
  "librlb_ballsbins.a"
  "librlb_ballsbins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlb_ballsbins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
