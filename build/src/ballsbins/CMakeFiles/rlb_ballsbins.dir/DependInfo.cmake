
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ballsbins/heavily_loaded.cpp" "src/ballsbins/CMakeFiles/rlb_ballsbins.dir/heavily_loaded.cpp.o" "gcc" "src/ballsbins/CMakeFiles/rlb_ballsbins.dir/heavily_loaded.cpp.o.d"
  "/root/repo/src/ballsbins/strategies.cpp" "src/ballsbins/CMakeFiles/rlb_ballsbins.dir/strategies.cpp.o" "gcc" "src/ballsbins/CMakeFiles/rlb_ballsbins.dir/strategies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/rlb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/rlb_hashing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
