file(REMOVE_RECURSE
  "librlb_ballsbins.a"
)
