file(REMOVE_RECURSE
  "CMakeFiles/rlb_report.dir/table.cpp.o"
  "CMakeFiles/rlb_report.dir/table.cpp.o.d"
  "librlb_report.a"
  "librlb_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlb_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
