# Empty dependencies file for rlb_report.
# This may be replaced when dependencies are built.
