file(REMOVE_RECURSE
  "librlb_report.a"
)
