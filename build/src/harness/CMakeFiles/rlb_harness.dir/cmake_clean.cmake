file(REMOVE_RECURSE
  "CMakeFiles/rlb_harness.dir/adversary_search.cpp.o"
  "CMakeFiles/rlb_harness.dir/adversary_search.cpp.o.d"
  "CMakeFiles/rlb_harness.dir/experiment.cpp.o"
  "CMakeFiles/rlb_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/rlb_harness.dir/output.cpp.o"
  "CMakeFiles/rlb_harness.dir/output.cpp.o.d"
  "librlb_harness.a"
  "librlb_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlb_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
