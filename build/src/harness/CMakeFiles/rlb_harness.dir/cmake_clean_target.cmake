file(REMOVE_RECURSE
  "librlb_harness.a"
)
