# Empty compiler generated dependencies file for rlb_harness.
# This may be replaced when dependencies are built.
